"""Tests for the exception hierarchy — every library error is catchable
as ReproError, and layer-specific bases partition cleanly."""

import pytest

from repro import errors


ENGINE_ERRORS = [
    errors.SchemaError,
    errors.TypeMismatchError,
    errors.UnknownColumnError,
    errors.CatalogError,
    errors.StorageError,
    errors.PageFullError,
    errors.BufferPoolError,
    errors.IndexError_,
    errors.PlanningError,
    errors.ParseError,
    errors.TransactionError,
    errors.LockError,
    errors.DeadlockError,
]

PMV_ERRORS = [
    errors.ConditionError,
    errors.DiscretizationError,
    errors.ViewDefinitionError,
    errors.ViewCapacityError,
    errors.MaintenanceError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ENGINE_ERRORS)
    def test_engine_errors_under_engine_base(self, exc):
        assert issubclass(exc, errors.EngineError)
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize("exc", PMV_ERRORS)
    def test_pmv_errors_under_pmv_base(self, exc):
        assert issubclass(exc, errors.PMVError)
        assert issubclass(exc, errors.ReproError)

    def test_workload_error_is_repro_error(self):
        assert issubclass(errors.WorkloadError, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.TypeMismatchError, errors.SchemaError)
        assert issubclass(errors.PageFullError, errors.StorageError)
        assert issubclass(errors.DeadlockError, errors.LockError)
        assert issubclass(errors.LockError, errors.TransactionError)

    def test_layers_do_not_overlap(self):
        for exc in ENGINE_ERRORS:
            assert not issubclass(exc, errors.PMVError)
        for exc in PMV_ERRORS:
            assert not issubclass(exc, errors.EngineError)

    def test_library_failures_catchable_at_top(self):
        from repro.engine import Column, Database, INTEGER

        db = Database()
        db.create_relation("t", [Column("x", INTEGER, nullable=False)])
        with pytest.raises(errors.ReproError):
            db.insert("t", ("not-an-int",))
        with pytest.raises(errors.ReproError):
            db.catalog.relation("ghost")

    def test_index_error_does_not_shadow_builtin(self):
        assert errors.IndexError_ is not IndexError
        assert not issubclass(errors.IndexError_, IndexError)
