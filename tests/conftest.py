"""Shared fixtures: a small two-relation database with the Eqt template
(Figure 1 of the paper) and a mini TPC-R environment."""

from __future__ import annotations

import pytest

from repro.core import Discretization, PartialMaterializedView, PMVExecutor
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.workload import TPCRConfig, load_tpcr


@pytest.fixture
def db() -> Database:
    """An empty database with default settings."""
    return Database()


@pytest.fixture
def eqt_db() -> Database:
    """The Figure 1 schema: r(id, c, f, a) join s(d, g, e) on r.c = s.d,
    with indexes on every selection/join attribute, loaded with a small
    deterministic data set."""
    database = Database()
    database.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    database.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    database.create_index("r_f", "r", ["f"])
    database.create_index("r_c", "r", ["c"])
    database.create_index("s_d", "s", ["d"])
    database.create_index("s_g", "s", ["g"])
    for i in range(120):
        database.insert("r", (i, i % 12, i % 6, f"a{i}"))
    for j in range(60):
        database.insert("s", (j % 12, j % 5, f"e{j}"))
    return database


@pytest.fixture
def eqt(eqt_db: Database) -> QueryTemplate:
    """The Eqt template registered against :func:`eqt_db`."""
    template = QueryTemplate(
        name="Eqt",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )
    eqt_db.register_template(template)
    return template


@pytest.fixture
def eqt_pmv(eqt_db: Database, eqt: QueryTemplate) -> PartialMaterializedView:
    """A CLOCK-managed PMV on Eqt with F=2 and room for 16 bcps."""
    return PartialMaterializedView(
        eqt,
        Discretization(eqt),
        tuples_per_entry=2,
        max_entries=16,
        aux_index_columns=("r.a", "s.e"),
    )


@pytest.fixture
def eqt_executor(eqt_db: Database, eqt_pmv: PartialMaterializedView) -> PMVExecutor:
    return PMVExecutor(eqt_db, eqt_pmv)


def eqt_query(template: QueryTemplate, fs, gs):
    """Bind an Eqt query selecting the given f and g values."""
    return template.bind(
        [EqualityDisjunction("r.f", list(fs)), EqualityDisjunction("s.g", list(gs))]
    )


@pytest.fixture
def tiny_tpcr() -> Database:
    """A very small TPC-R database (downscale ×5000) with indexes."""
    database = Database(buffer_pool_pages=128)
    load_tpcr(
        database,
        TPCRConfig(
            scale_factor=1.0,
            downscale=5000,
            seed=7,
            distinct_order_dates=20,
            suppliers=8,
            nations=4,
        ),
    )
    return database


def brute_force_eqt(database: Database, fs, gs) -> list[tuple]:
    """Oracle: the Eqt query answer computed by nested loops over the
    base relations, as (a, e, f, g) tuples in Ls' order."""
    r_rows = list(database.catalog.relation("r").scan_rows())
    s_rows = list(database.catalog.relation("s").scan_rows())
    return sorted(
        (r["a"], s["e"], r["f"], s["g"])
        for r in r_rows
        for s in s_rows
        if r["c"] == s["d"] and r["f"] in fs and s["g"] in gs
    )
