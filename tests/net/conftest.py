"""Fixtures for the network tier: a WAL-backed single node and a
semi-sync replicated cluster, each behind a real TCP socket server."""

from __future__ import annotations

import pytest

from repro.core import Discretization
from repro.core.manager import PMVManager
from repro.engine import (
    Column,
    Database,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.engine.wal import WriteAheadLog
from repro.net import ClusterFrontEnd, NetServer, PMVClient
from repro.net.client import RetryPolicy
from repro.qos.gate import ServingGate
from repro.replication import FailoverCoordinator, PrimaryNode, ReplicaNode


def make_template(name: str = "Eqt") -> QueryTemplate:
    return QueryTemplate(
        name=name,
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def make_database() -> Database:
    """The Figure 1 schema on a WAL-backed database (idempotency keys
    ride in WAL payloads, so the net tests always attach one)."""
    database = Database(wal=WriteAheadLog())
    database.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    database.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    database.create_index("r_f", "r", ["f"])
    database.create_index("r_c", "r", ["c"])
    database.create_index("s_d", "s", ["d"])
    database.create_index("s_g", "s", ["g"])
    for i in range(48):
        database.insert("r", (i, i % 12, i % 6, f"a{i}"))
    for j in range(24):
        database.insert("s", (j % 12, j % 5, f"e{j}"))
    return database


class SingleNode:
    """One WAL-backed node behind a socket server."""

    def __init__(self):
        self.db = make_database()
        self.template = make_template()
        self.db.register_template(self.template)
        self.manager = PMVManager(self.db)
        self.manager.create_view(
            self.template,
            Discretization(self.template),
            tuples_per_entry=2,
            max_entries=16,
            aux_index_columns=("r.a", "s.e"),
        )
        self.gate = ServingGate(self.manager)
        self.front_end = ClusterFrontEnd(self.gate)
        self.server = NetServer(self.front_end)
        self.host, self.port = self.server.start()

    def client(self, client_id: str = "t", **kwargs) -> PMVClient:
        kwargs.setdefault("retry", RetryPolicy(attempts=6, base_delay=0.005))
        return PMVClient(self.host, self.port, client_id, **kwargs)


class ClusterWorld:
    """Primary + two standbys + coordinator on a fake clock, behind a
    socket server — the netload topology at test size."""

    def __init__(self):
        self.db = make_database()
        self.template = make_template()
        self.db.register_template(self.template)
        self.manager = PMVManager(self.db)
        self.manager.create_view(
            self.template,
            Discretization(self.template),
            tuples_per_entry=2,
            max_entries=16,
            aux_index_columns=("r.a", "s.e"),
        )
        self.primary = PrimaryNode(self.db, manager=self.manager)
        self.replicas = [ReplicaNode(f"replica-{n}") for n in (1, 2)]
        for replica in self.replicas:
            self.primary.attach_replica(replica)
        self.primary.ship()
        for replica in self.replicas:
            replica.mirror_views(self.manager)
        self.clock = [0.0]
        self.gate = ServingGate(self.manager)
        self.coordinator = FailoverCoordinator(
            self.primary,
            self.replicas,
            gate=self.gate,
            heartbeat_interval=1.0,
            missed_heartbeats=3,
            clock=lambda: self.clock[0],
        )
        self.front_end = ClusterFrontEnd(
            self.gate, coordinator=self.coordinator, staleness_bound=4
        )
        self.server = NetServer(self.front_end)
        self.host, self.port = self.server.start()

    def client(self, client_id: str = "t", **kwargs) -> PMVClient:
        kwargs.setdefault("retry", RetryPolicy(attempts=8, base_delay=0.005))
        return PMVClient(self.host, self.port, client_id, **kwargs)

    def fail_over(self):
        self.clock[0] += 10.0
        promoted = self.coordinator.tick()
        assert promoted is not None
        return promoted


@pytest.fixture
def single_node():
    world = SingleNode()
    yield world
    world.server.stop()


@pytest.fixture
def cluster_world():
    world = ClusterWorld()
    yield world
    world.server.stop()
