"""Retry discipline: seeded full jitter, typed timeouts, stable
idempotency keys across mixed failures, and exhaustion chaining."""

import random
import socket
import threading

import pytest

from repro.errors import (
    NetError,
    NetTimeoutError,
    OverloadError,
    RetryExhaustedError,
)
from repro.net.client import PMVClient, RetryPolicy, _Connection
from repro.net.cluster import classify_error

from .conftest import SingleNode


class TestJitter:
    def test_zero_jitter_is_deterministic_ceiling(self):
        policy = RetryPolicy(base_delay=0.02, factor=2.0, max_delay=0.5, jitter=0)
        rng = random.Random(1)
        assert policy.delay(0, rng=rng) == pytest.approx(0.02)
        assert policy.delay(1, rng=rng) == pytest.approx(0.04)
        assert policy.delay(10, rng=rng) == pytest.approx(0.5)  # capped

    def test_no_rng_is_deterministic_ceiling(self):
        policy = RetryPolicy(base_delay=0.02)
        assert policy.delay(2) == pytest.approx(0.08)

    def test_full_jitter_within_bounds(self):
        policy = RetryPolicy(base_delay=0.02, factor=2.0, max_delay=0.5)
        rng = random.Random(7)
        for attempt in range(12):
            ceiling = min(0.5, 0.02 * 2.0 ** attempt)
            delay = policy.delay(attempt, rng=rng)
            assert 0.0 <= delay <= ceiling

    def test_lockstep_regression_two_clients_diverge(self):
        """Pre-jitter, every client slept the identical schedule and the
        thundering herd re-collided after each heal.  Seeded full jitter
        breaks the lockstep while staying replayable per client id."""
        policy = RetryPolicy(base_delay=0.02)
        schedule_a = [
            policy.delay(i, rng=random.Random("retry:a")) for i in range(6)
        ]
        schedule_b = [
            policy.delay(i, rng=random.Random("retry:b")) for i in range(6)
        ]
        assert schedule_a != schedule_b  # no lockstep
        replay_a = [
            policy.delay(i, rng=random.Random("retry:a")) for i in range(6)
        ]
        assert schedule_a == replay_a  # but replayable

    def test_partial_jitter_fraction(self):
        policy = RetryPolicy(base_delay=0.1, factor=1.0, max_delay=1.0, jitter=0.5)
        rng = random.Random(3)
        for _ in range(20):
            delay = policy.delay(0, rng=rng)
            assert 0.05 <= delay <= 0.1  # half fixed, half jittered


class TestTimeouts:
    def test_socket_timeout_becomes_typed_retryable_error(self):
        """A server that accepts but never answers: the client's socket
        timeout surfaces as NetTimeoutError, counted and chained."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        host, port = listener.getsockname()[:2]
        held = []

        def hold():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                held.append(conn)  # accept, say nothing

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        client = PMVClient(
            "127.0.0.1",
            port,
            "t",
            retry=RetryPolicy(attempts=2, base_delay=0.001),
            socket_timeout=0.05,
        )
        try:
            with pytest.raises(RetryExhaustedError) as excinfo:
                client.ping()
        finally:
            client.close()
            listener.close()
            for conn in held:
                conn.close()
        assert client.timeouts >= 2
        assert isinstance(excinfo.value.cause, NetTimeoutError)
        assert isinstance(excinfo.value.__cause__, NetTimeoutError)
        assert isinstance(excinfo.value.__cause__.__cause__, socket.timeout)

    def test_classify_error_marks_timeout_retryable(self):
        envelope = classify_error(NetTimeoutError("socket timed out"))
        assert envelope["retryable"] is True
        assert envelope["shed"] is False
        assert envelope["error_type"] == "NetTimeoutError"


class TestExhaustion:
    def test_exhaustion_reports_attempts_and_chains_last_error(self):
        client = PMVClient(
            "127.0.0.1",
            1,  # nothing listens on port 1
            "t",
            retry=RetryPolicy(attempts=3, base_delay=0.001),
            connect_timeout=0.05,
        )
        try:
            with pytest.raises(RetryExhaustedError) as excinfo:
                client.ping()
        finally:
            client.close()
        error = excinfo.value
        assert error.attempts == 3
        assert error.cause is not None
        assert error.__cause__ is error.cause
        assert isinstance(error.cause, OSError)


class TestIdempotencyKeyStability:
    def test_same_seq_across_mixed_drop_and_timeout_retries(self, monkeypatch):
        """The idempotency key is fixed before the first send: whatever
        mix of connection drops and timeouts the retries hit, every
        attempt presents the same ``seq`` — at-most-once by dedup."""
        node = SingleNode()
        seqs = []
        failures = iter([socket.timeout("slow"), OSError("reset")])
        real_request = _Connection.request

        def flaky_request(self, message):
            if message.get("op") == "insert":
                seqs.append(message["seq"])
                try:
                    raise next(failures)
                except StopIteration:
                    pass
            return real_request(self, message)

        monkeypatch.setattr(_Connection, "request", flaky_request)
        client = node.client(retry=RetryPolicy(attempts=5, base_delay=0.001))
        try:
            ack = client.insert("r", [900, 1, 1, "x"])
        finally:
            client.close()
            node.server.stop()
        assert len(seqs) == 3  # timeout, reset, success
        assert len(set(seqs)) == 1  # one key, three presentations
        assert not ack.duplicate  # never applied before the final try
        rows = [
            r["id"]
            for r in node.db.catalog.relation("r").scan_rows()
            if r["id"] == 900
        ]
        assert rows == [900]  # applied exactly once

    def test_applied_but_unacked_retry_acks_as_duplicate(self):
        """The poisonous window end to end: the response is dropped
        after the insert applied; the retry must dedup, not re-apply."""
        dropped = {"armed": True}

        def drop(op, request):
            if op == "insert" and dropped["armed"]:
                dropped["armed"] = False
                return True
            return False

        node = SingleNode()
        node.server.drop_before_respond = drop
        client = node.client(retry=RetryPolicy(attempts=5, base_delay=0.001))
        try:
            ack = client.insert("r", [901, 1, 1, "y"])
        finally:
            client.close()
            node.server.stop()
        assert ack.duplicate  # the retry hit the dedup table
        rows = [
            r["id"]
            for r in node.db.catalog.relation("r").scan_rows()
            if r["id"] == 901
        ]
        assert rows == [901]


class TestShedNotRetried:
    def test_shed_surfaces_as_overload_immediately(self, monkeypatch):
        node = SingleNode()
        real_request = _Connection.request

        def shedding_request(self, message):
            if message.get("op") == "ping":
                return {
                    "ok": False,
                    "shed": True,
                    "error": "load shed",
                    "reason": "brownout",
                    "id": message.get("id", 0) if isinstance(message, dict) else 0,
                }
            return real_request(self, message)

        monkeypatch.setattr(_Connection, "request", shedding_request)
        client = node.client(retry=RetryPolicy(attempts=5, base_delay=0.001))
        try:
            with pytest.raises(OverloadError):
                client.ping()
            assert client.retries == 0  # sheds are policy, not retries
        finally:
            client.close()
            node.server.stop()
