"""Cluster front-end behavior over the socket: bounded-staleness
replica reads, semi-sync acked writes, and the client-visible failover
contract (retryable blip, dedup table rebuilt from the promoted WAL)."""

from __future__ import annotations

import pytest

from repro.engine import EqualityDisjunction
from repro.errors import OverloadError, WALFencedError
from repro.net.cluster import IdempotencyTable, classify_error


def bind(template, fs, gs):
    return template.bind(
        [EqualityDisjunction("r.f", list(fs)), EqualityDisjunction("s.g", list(gs))]
    )


class TestIdempotencyTable:
    def test_record_and_seen(self):
        table = IdempotencyTable()
        assert table.seen("c:1") is None
        table.record("c:1", 17)
        assert table.seen("c:1") == 17 and len(table) == 1

    def test_rebuild_replaces_the_timeline(self):
        table = IdempotencyTable()
        table.record("old:1", 3)
        assert table.rebuild({"new:1": 5, "new:2": 9}) == 2
        assert table.seen("old:1") is None
        assert table.seen("new:2") == 9


class TestClassifyError:
    def test_shed_is_retryable_and_marked(self):
        envelope = classify_error(OverloadError("full", reason="queue-full"))
        assert envelope["retryable"] and envelope["shed"]
        assert envelope["reason"] == "queue-full"

    def test_fenced_primary_is_retryable(self):
        envelope = classify_error(WALFencedError("fenced at epoch 2"))
        assert envelope["retryable"] and not envelope["shed"]

    def test_engine_bugs_are_not_retryable(self):
        envelope = classify_error(ValueError("boom"))
        assert not envelope["retryable"]


class TestReplicaReads:
    def test_fresh_replica_serves_with_staleness_stamp(self, cluster_world):
        client = cluster_world.client()
        try:
            # One acked write first, so ship_on_write proves the
            # standbys are caught up before we route to them.
            client.insert("r", [9100, 1, 1, "warm"])
            answer = client.query(
                bind(cluster_world.template, [1], [2]),
                budget=5.0,
                prefer_replica=True,
            )
            assert answer.served_by.startswith("replica-")
            assert answer.replica_lag == 0
        finally:
            client.close()

    def test_lagged_replica_falls_back_to_primary(self, cluster_world):
        client = cluster_world.client()
        try:
            # Mutate the primary behind the replicas' backs (no ship).
            cluster_world.db.insert("r", (9101, 1, 1, "hidden"))
            answer = client.query(
                bind(cluster_world.template, [1], [2]),
                budget=5.0,
                staleness_bound=0,
                prefer_replica=True,
            )
            # The primary answered (no lag stamp), and it saw the row.
            assert answer.replica_lag is None
            stats = client.stats()
            assert stats["net_replica_fallbacks"] >= 1
        finally:
            client.close()


class TestSemiSyncWrites:
    def test_acked_write_is_on_a_standby(self, cluster_world):
        client = cluster_world.client()
        try:
            ack = client.insert("r", [9102, 2, 2, "durable"])
            assert cluster_world.primary.acked_lsn >= ack.lsn
            best = max(r.applied_lsn for r in cluster_world.replicas)
            assert best >= ack.lsn
        finally:
            client.close()


class TestFailoverContract:
    def test_dedup_survives_promotion(self, cluster_world):
        """An acked write's key must answer ``duplicate`` even when the
        retry lands on the *promoted* primary — the table is rebuilt
        from the WAL that the semi-sync rule guarantees contains it."""
        client = cluster_world.client("survivor")
        try:
            first = client._request(
                {"op": "insert", "relation": "r", "values": [9103, 1, 1, "x"], "seq": 1}
            )
            assert first["ok"] and not first["duplicate"]
            promoted = cluster_world.fail_over()
            assert cluster_world.front_end.epoch == promoted.epoch
            retry = client._request(
                {"op": "insert", "relation": "r", "values": [9103, 1, 1, "x"], "seq": 1}
            )
            assert retry["ok"] and retry["duplicate"]
            assert retry["lsn"] == first["lsn"]
            promoted_db = cluster_world.coordinator.primary.database
            count = sum(
                1
                for row in promoted_db.catalog.relation("r").scan_rows()
                if row["id"] == 9103
            )
            assert count == 1
            stats = client.stats()
            assert stats["net_dedup_rebuilds"] >= 1
        finally:
            client.close()

    def test_new_writes_land_on_the_promoted_primary(self, cluster_world):
        client = cluster_world.client("mover")
        try:
            old_db = cluster_world.db
            cluster_world.fail_over()
            ack = client.insert("r", [9104, 3, 3, "fresh"])
            assert not ack.duplicate
            promoted_db = cluster_world.coordinator.primary.database
            assert promoted_db is not old_db
            count = sum(
                1
                for row in promoted_db.catalog.relation("r").scan_rows()
                if row["id"] == 9104
            )
            assert count == 1
            # ... and never on the fenced timeline.
            fenced = sum(
                1
                for row in old_db.catalog.relation("r").scan_rows()
                if row["id"] == 9104
            )
            assert fenced == 0
        finally:
            client.close()

    def test_queries_ride_through_the_blip(self, cluster_world):
        client = cluster_world.client()
        try:
            before = client.query(bind(cluster_world.template, [1], [2]), budget=5.0)
            cluster_world.fail_over()
            after = client.query(bind(cluster_world.template, [1], [2]), budget=5.0)
            assert sorted(after.rows) == sorted(before.rows)
        finally:
            client.close()
