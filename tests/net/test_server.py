"""Socket server + client driver over a real TCP connection: truth
against ``db.run``, deadline propagation, idempotency-keyed DML, and
the retry-after-dropped-response window."""

from __future__ import annotations

import pytest

from repro.engine import EqualityDisjunction
from repro.errors import NetError, RetryExhaustedError
from repro.net.client import RetryPolicy


def bind(template, fs, gs):
    return template.bind(
        [EqualityDisjunction("r.f", list(fs)), EqualityDisjunction("s.g", list(gs))]
    )


def truth_rows(db, template, fs, gs):
    return sorted(
        (row["r.a"], row["s.e"]) for row in db.run(bind(template, fs, gs))
    )


class TestQueriesOverTheWire:
    def test_answer_matches_engine_truth(self, single_node):
        client = single_node.client()
        try:
            answer = client.query(bind(single_node.template, [1], [2]), budget=5.0)
            assert answer.complete
            assert answer.columns == ["r.a", "s.e"]
            assert sorted(answer.rows) == truth_rows(
                single_node.db, single_node.template, [1], [2]
            )
        finally:
            client.close()

    def test_zero_budget_degrades_honestly(self, single_node):
        """A spent deadline crosses the wire as an explicit partial
        answer, never an error and never a silent full scan."""
        client = single_node.client()
        try:
            answer = client.query(bind(single_node.template, [1], [2]), budget=0.0)
            assert answer.complete is False
            assert answer.degraded_reason == "deadline-skip"
        finally:
            client.close()

    def test_unknown_op_is_nonretryable_error(self, single_node):
        client = single_node.client()
        try:
            with pytest.raises(NetError, match="unknown op"):
                client._request({"op": "frobnicate"})
        finally:
            client.close()

    def test_stats_include_net_counters(self, single_node):
        client = single_node.client()
        try:
            client.ping()
            stats = client.stats()
            assert stats["net_requests"] >= 2
            assert stats["net_connections_opened"] >= 1
            assert stats["net_requests_by_op"]["ping"] >= 1
            assert stats["epoch"] == 0
        finally:
            client.close()


class TestKeyedDML:
    def test_insert_then_delete_roundtrip(self, single_node):
        client = single_node.client()
        try:
            ack = client.insert("r", [9000, 1, 1, "net"])
            assert not ack.duplicate and ack.lsn > 0
            assert truth_rows(single_node.db, single_node.template, [1], [2])
            gone = client.delete_eq("r", "id", 9000)
            assert gone.deleted == 1 and not gone.duplicate
            rows = [
                row
                for row in single_node.db.catalog.relation("r").scan_rows()
                if row["id"] == 9000
            ]
            assert rows == []
        finally:
            client.close()

    def test_idem_key_rides_in_the_wal(self, single_node):
        client = single_node.client("walrider")
        try:
            client.insert("r", [9001, 1, 1, "net"])
            keyed = [
                record.payload.get("idem")
                for record in single_node.db.wal.records()
                if record.payload.get("idem")
            ]
            assert keyed == ["walrider:1"]
        finally:
            client.close()

    def test_same_seq_applies_once(self, single_node):
        client = single_node.client("dup")
        try:
            first = client._request(
                {"op": "insert", "relation": "r", "values": [9002, 2, 2, "x"], "seq": 5}
            )
            second = client._request(
                {"op": "insert", "relation": "r", "values": [9002, 2, 2, "x"], "seq": 5}
            )
            assert not first["duplicate"] and second["duplicate"]
            assert first["lsn"] == second["lsn"]
            count = sum(
                1
                for row in single_node.db.catalog.relation("r").scan_rows()
                if row["id"] == 9002
            )
            assert count == 1
        finally:
            client.close()

    def test_seq_without_hello_rejected(self, single_node):
        """The dedup key needs an identity; the protocol refuses to
        guess one."""
        import socket as socket_module

        from repro.net import protocol

        sock = socket_module.create_connection(
            (single_node.host, single_node.port), timeout=5.0
        )
        try:
            protocol.send_frame(
                sock,
                {
                    "id": 1,
                    "op": "insert",
                    "relation": "r",
                    "values": [9003, 1, 1, "x"],
                    "seq": 1,
                },
            )
            response = protocol.recv_frame(sock)
            assert response["ok"] is False
            assert "hello" in response["error"]
            assert response["retryable"] is False
        finally:
            sock.close()


class TestRetryAfterDrop:
    def test_dropped_response_applies_at_most_once(self, single_node):
        """The window the whole mechanism exists for: the server
        applies the write, the connection dies before the ack, the
        client retries the same key, and the data changes once."""
        drops = {"armed": True}

        def drop(op, request):
            if op == "insert" and drops["armed"]:
                drops["armed"] = False
                return True
            return False

        single_node.server.drop_before_respond = drop
        client = single_node.client("dropper")
        try:
            ack = client.insert("r", [9004, 3, 3, "once"])
            assert ack.duplicate  # the retry was answered from the dedup table
            assert client.retries >= 1
            count = sum(
                1
                for row in single_node.db.catalog.relation("r").scan_rows()
                if row["id"] == 9004
            )
            assert count == 1
            stats = client.stats()
            assert stats["net_dedup_hits"] >= 1
        finally:
            single_node.server.drop_before_respond = None
            client.close()

    def test_every_response_dropped_exhausts_retries(self, single_node):
        single_node.server.drop_before_respond = lambda op, request: op == "insert"
        client = single_node.client(
            "doomed", retry=RetryPolicy(attempts=3, base_delay=0.001)
        )
        try:
            with pytest.raises(RetryExhaustedError) as excinfo:
                client.insert("r", [9005, 1, 1, "x"])
            assert excinfo.value.attempts == 3
            # ... but even the doomed retries only ever applied once.
            count = sum(
                1
                for row in single_node.db.catalog.relation("r").scan_rows()
                if row["id"] == 9005
            )
            assert count == 1
        finally:
            single_node.server.drop_before_respond = None
            client.close()

    def test_pool_reuses_connections(self, single_node):
        client = single_node.client("pooled")
        try:
            for _ in range(5):
                client.ping()
            assert client.reconnects == 1
        finally:
            client.close()
