"""Protocol v2: the session monotonic-read token end to end.

The client remembers the highest ``applied_lsn`` it observed (scoped
to the serving epoch) and stamps it into every query; a replica whose
watermark trails the token falls back to the primary instead of
showing the session an older database state.  A failover resets the
token — the promoted timeline starts fresh.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.engine import EqualityDisjunction
from repro.errors import NetProtocolError
from repro.net import protocol

from .conftest import ClusterWorld


def bind(world, f=1, g=2):
    return world.template.bind(
        [EqualityDisjunction("r.f", [f]), EqualityDisjunction("s.g", [g])]
    )


@pytest.fixture
def world():
    cluster = ClusterWorld()
    yield cluster
    cluster.server.stop()


class TestVersionAcceptance:
    def test_both_supported_versions_accepted(self):
        left, right = socket.socketpair()
        try:
            for version in sorted(protocol.SUPPORTED_VERSIONS):
                body = b'{"op":"ping"}'
                payload = bytes([version]) + body
                left.sendall(struct.pack(">I", len(payload)) + payload)
                assert protocol.recv_frame(right) == {"op": "ping"}
        finally:
            left.close()
            right.close()

    def test_v2_is_current(self):
        assert protocol.PROTOCOL_VERSION == 2
        assert protocol.SUPPORTED_VERSIONS == frozenset({1, 2})

    def test_v3_rejected(self):
        left, right = socket.socketpair()
        try:
            payload = bytes([3]) + b'{"op":"ping"}'
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(NetProtocolError, match="unsupported"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_routing_stamp_overrides_result_field(self):
        class FakeResult:
            complete = True
            degraded_reason = None
            completeness_estimate = None
            staleness = None
            applied_lsn = None

            class query:
                class template:
                    select_list = ("a",)

            @staticmethod
            def user_rows():
                return []

        envelope = protocol.encode_result(FakeResult, epoch=2, applied_lsn=17)
        assert envelope["applied_lsn"] == 17
        assert envelope["epoch"] == 2


class TestSessionToken:
    def test_token_ratchets_from_response_stamps(self, world):
        client = world.client("s1")
        try:
            assert client.session_token() == (None, 0)
            ack = client.insert("r", [900, 1, 1, "x"])
            epoch, lsn = client.session_token()
            assert epoch == ack.epoch == 1
            assert lsn == ack.lsn
            answer = client.query(bind(world), budget=5.0)
            assert answer.epoch == 1
            assert answer.applied_lsn is not None
            assert client.session_token()[1] >= ack.lsn
        finally:
            client.close()

    def test_lagging_replica_falls_back_to_primary(self, world):
        client = world.client("s2")
        try:
            client.insert("r", [901, 1, 1, "x"])
            # Freeze one replica's link: the write still acks through
            # the other, but this replica now lags the session token.
            world.primary.links[1].partitioned = True
            client.insert("r", [902, 1, 1, "y"])
            world.front_end._rr = 0  # next round-robin pick: the laggard
            before = world.front_end.metrics.snapshot()["net_monotonic_fallbacks"]
            answer = client.query(
                bind(world), budget=5.0, staleness_bound=1000, prefer_replica=True
            )
            after = world.front_end.metrics.snapshot()["net_monotonic_fallbacks"]
            assert after == before + 1
            assert answer.replica_lag is None  # the primary served it
            assert answer.applied_lsn >= client.session_token()[1]
        finally:
            world.primary.links[1].heal()
            client.close()

    def test_fresh_replica_serves_with_token(self, world):
        client = world.client("s3")
        try:
            client.insert("r", [903, 1, 1, "x"])
            world.primary.ship()  # replicas fully caught up
            answer = client.query(
                bind(world), budget=5.0, staleness_bound=1000, prefer_replica=True
            )
            assert answer.replica_lag is not None  # replica-served
            assert answer.applied_lsn >= client.session_token()[1]
        finally:
            client.close()

    def test_token_resets_on_epoch_change(self, world):
        client = world.client("s4")
        try:
            client.insert("r", [904, 1, 1, "x"])
            old_epoch, old_lsn = client.session_token()
            assert old_epoch == 1 and old_lsn > 0
            world.fail_over()
            answer = client.query(bind(world), budget=5.0)
            assert answer.epoch == 2
            new_epoch, new_lsn = client.session_token()
            assert new_epoch == 2
            # Reset then re-ratcheted from the post-failover answer.
            assert new_lsn == answer.applied_lsn
        finally:
            client.close()

    def test_stale_token_epoch_ignored_by_router(self, world):
        """A pre-failover LSN floor is meaningless against the promoted
        timeline: the router drops it rather than forcing fallbacks."""
        routed = world.front_end.execute_query(
            bind(world),
            prefer_replica=True,
            staleness_bound=1000,
            min_lsn=10**9,  # absurd floor...
            token_epoch=world.front_end.epoch + 1,  # ...from another epoch
        )
        assert routed["replica_lag"] is not None  # replica still served
