"""Wire-protocol unit tests: framing, versioning, query round-trips."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.engine.datatypes import MINUS_INFINITY, PLUS_INFINITY
from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
)
from repro.engine import (
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
)
from repro.errors import NetProtocolError
from repro.net import protocol

from tests.net.conftest import make_database, make_template


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip(self, pair):
        left, right = pair
        message = {"op": "ping", "id": 7, "nested": {"rows": [[1, "a"], [2, None]]}}
        protocol.send_frame(left, message)
        assert protocol.recv_frame(right) == message

    def test_multiple_frames_in_sequence(self, pair):
        left, right = pair
        for n in range(3):
            protocol.send_frame(left, {"id": n})
        assert [protocol.recv_frame(right)["id"] for _ in range(3)] == [0, 1, 2]

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert protocol.recv_frame(right) is None

    def test_eof_mid_frame_is_protocol_error(self, pair):
        left, right = pair
        frame = protocol.encode_frame({"op": "ping"})
        left.sendall(frame[: len(frame) - 2])
        left.close()
        with pytest.raises(NetProtocolError, match="mid-frame"):
            protocol.recv_frame(right)

    def test_zero_length_rejected(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", 0))
        with pytest.raises(NetProtocolError, match="invalid frame length"):
            protocol.recv_frame(right)

    def test_hostile_length_rejected_before_allocation(self, pair):
        left, right = pair
        left.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(NetProtocolError, match="invalid frame length"):
            protocol.recv_frame(right)

    def test_future_version_rejected(self, pair):
        left, right = pair
        body = b'{"op":"ping"}'
        payload = bytes([protocol.PROTOCOL_VERSION + 1]) + body
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(NetProtocolError, match="unsupported protocol version"):
            protocol.recv_frame(right)

    def test_garbage_body_rejected(self, pair):
        left, right = pair
        payload = bytes([protocol.PROTOCOL_VERSION]) + b"not json"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(NetProtocolError, match="unparseable"):
            protocol.recv_frame(right)

    def test_non_object_body_rejected(self, pair):
        left, right = pair
        payload = bytes([protocol.PROTOCOL_VERSION]) + b"[1,2]"
        left.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(NetProtocolError, match="JSON object"):
            protocol.recv_frame(right)

    def test_oversize_frame_refused_on_send(self):
        with pytest.raises(NetProtocolError, match="exceeds the cap"):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})


class TestQuerySerialization:
    def test_equality_roundtrip(self):
        db = make_database()
        template = make_template()
        db.register_template(template)
        query = template.bind(
            [EqualityDisjunction("r.f", [1, 3]), EqualityDisjunction("s.g", [2])]
        )
        payload = protocol.encode_query(query)
        assert payload["template"] == "Eqt"
        decoded = protocol.decode_query(db.catalog, payload)
        # Re-encoding the decoded query must be byte-identical: the wire
        # form is canonical.
        assert protocol.encode_query(decoded) == payload

    def test_interval_roundtrip_with_infinities(self):
        db = make_database()
        template = QueryTemplate(
            name="Ivt",
            relations=("r", "s"),
            select_list=("r.a", "s.e"),
            joins=(JoinEquality("r", "c", "s", "d"),),
            slots=(
                SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                SelectionSlot("s", "s.g", SlotForm.INTERVAL),
            ),
        )
        db.register_template(template)
        query = template.bind(
            [
                EqualityDisjunction("r.f", [0]),
                IntervalDisjunction(
                    "s.g",
                    [
                        Interval(MINUS_INFINITY, 1, False, True),
                        Interval(3, PLUS_INFINITY, True, False),
                    ],
                ),
            ]
        )
        payload = protocol.encode_query(query)
        bounds = payload["conditions"][1]["intervals"]
        assert bounds[0][0] == {"inf": "-"} and bounds[1][1] == {"inf": "+"}
        decoded = protocol.decode_query(db.catalog, payload)
        assert protocol.encode_query(decoded) == payload
        low, high = decoded.cselect.conditions[1].intervals
        assert low.low is MINUS_INFINITY and high.high is PLUS_INFINITY

    def test_unknown_template_rejected(self):
        db = make_database()
        with pytest.raises(Exception):
            protocol.decode_query(db.catalog, {"template": "ghost", "conditions": []})

    def test_condition_without_values_or_intervals_rejected(self):
        db = make_database()
        template = make_template()
        db.register_template(template)
        with pytest.raises(NetProtocolError, match="neither values nor intervals"):
            protocol.decode_query(
                db.catalog,
                {"template": "Eqt", "conditions": [{"column": "r.f"}]},
            )

    def test_decode_validates_through_bind(self):
        """Malformed remote queries die in bind exactly like local ones."""
        db = make_database()
        template = make_template()
        db.register_template(template)
        with pytest.raises(Exception):
            protocol.decode_query(
                db.catalog,
                {
                    "template": "Eqt",
                    "conditions": [{"column": "r.f", "values": [1]}],  # slot count
                },
            )
