"""Property-based test: a lossy replication link still converges.

Any schedule of drop / duplicate / reorder / partition faults on the
ship path, against any interleaving of inserts, deletes, and updates,
must leave the replica *identical* to the primary once the link is
healed and the pump has drained — same contents, same physical row
addresses, same local log.  Retransmission is watermark-based, so the
convergence loop is exactly the production one: heal, pump, repeat.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import Column, Database, INTEGER, TEXT, WriteAheadLog
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultMode, FaultPlan, FaultSpec
from repro.replication import PrimaryNode, ReplicaNode, SHIP_SITE

link_faults = st.lists(
    st.tuples(
        st.integers(1, 60),
        st.sampled_from(
            [
                FaultMode.DROP,
                FaultMode.DUPLICATE,
                FaultMode.REORDER,
                FaultMode.PARTITION,
            ]
        ),
    ),
    min_size=0,
    max_size=12,
    unique_by=lambda pair: pair[0],
)

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 40),
            st.text(alphabet="abc", min_size=0, max_size=8),
        ),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just("")),
        st.tuples(
            st.just("update"),
            st.integers(0, 30),
            st.text(alphabet="xy", min_size=0, max_size=8),
        ),
    ),
    min_size=1,
    max_size=30,
)


def table_state(db):
    relation = db.catalog.relation("t")
    return {rid: row.values for rid, row in relation.scan()}


@given(link_faults, ops, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_lossy_link_converges_after_heal_and_pump(faults, trace, pump_every):
    wal = WriteAheadLog()
    db = Database(wal=wal)
    db.create_relation(
        "t", [Column("k", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_k", "t", ["k"])
    primary = PrimaryNode(db)
    replica = ReplicaNode()
    injector = FaultInjector(
        FaultPlan([FaultSpec(SHIP_SITE, occ, mode) for occ, mode in faults])
    )
    link = primary.attach_replica(replica, injector=injector)

    live: list = []
    for step, (op, arg, text) in enumerate(trace):
        if op == "insert":
            live.append(db.insert("t", (arg, text)))
        elif op == "delete" and live:
            db.delete("t", live.pop(arg % len(live)))
        elif op == "update" and live:
            target = live[arg % len(live)]
            _, _, new_id = db.update("t", target, v=text)
            live[live.index(target)] = new_id
        if step % pump_every == 0:
            link.heal()
            primary.ship()

    # Drain: each heal+pump consumes scheduled fault occurrences, so a
    # finite plan always runs dry and a clean pump delivers the rest.
    max_occurrence = max((occ for occ, _ in faults), default=0)
    for _ in range(max_occurrence + 2):
        if replica.applied_lsn == wal.last_lsn and not link.partitioned:
            break
        link.heal()
        primary.ship()

    assert replica.applied_lsn == wal.last_lsn
    assert replica.lag == 0
    assert not replica.pending
    assert table_state(replica.database) == table_state(db)
    # The replica's local log is a verbatim copy, record for record.
    assert [r.to_json() for r in replica.database.wal.records()] == [
        r.to_json() for r in wal.records()
    ]
