"""Property-based round-trip test for the SQL parser.

Random equality-form queries are rendered to the paper's SQL syntax and
parsed back; the reparsed query must bind identically.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.parser import parse_query, parse_template

EQT_SQL = "select r.a, s.e from r, s where r.c = s.d and r.f = ? and s.g = ?"
TEMPLATE = parse_template("Eqt", EQT_SQL)

value_lists = st.lists(
    st.integers(-20, 20), min_size=1, max_size=4, unique=True
)


def render(fs, gs):
    def disjunction(column, values):
        body = " or ".join(f"{column} = {v}" for v in values)
        return f"({body})" if len(values) > 1 else body

    return (
        "select r.a, s.e from r, s where r.c = s.d "
        f"and {disjunction('r.f', fs)} and {disjunction('s.g', gs)}"
    )


@given(value_lists, value_lists)
@settings(max_examples=120, deadline=None)
def test_roundtrip_equality_queries(fs, gs):
    query = parse_query(TEMPLATE, render(fs, gs))
    assert query.cselect.conditions[0].values == tuple(fs)
    assert query.cselect.conditions[1].values == tuple(gs)
    assert query.combination_factor == len(fs) * len(gs)


@given(value_lists, value_lists)
@settings(max_examples=60, deadline=None)
def test_roundtrip_is_idempotent(fs, gs):
    first = parse_query(TEMPLATE, render(fs, gs))
    # Rendering the parsed conditions again parses to the same binding.
    again = parse_query(
        TEMPLATE,
        render(list(first.cselect.conditions[0].values),
               list(first.cselect.conditions[1].values)),
    )
    assert again.cselect.conditions[0].values == first.cselect.conditions[0].values
    assert again.cselect.conditions[1].values == first.cselect.conditions[1].values


string_values = st.lists(
    st.text(alphabet="abc xyz", min_size=1, max_size=8).filter(
        lambda s: "'" not in s
    ),
    min_size=1,
    max_size=3,
    unique=True,
)


@given(string_values)
@settings(max_examples=60, deadline=None)
def test_roundtrip_string_literals(values):
    body = " or ".join(f"r.f = '{v}'" for v in values)
    clause = f"({body})" if len(values) > 1 else body
    query = parse_query(
        TEMPLATE,
        f"select r.a, s.e from r, s where r.c = s.d and {clause} and s.g = 1",
    )
    assert query.cselect.conditions[0].values == tuple(values)
