"""Property-based QoS: degraded answers are always explicit subsets.

Hypothesis draws an interleaving seed and a stream of per-query
deadline budgets (from instantly-spent to effectively-unbounded) and
runs concurrent PMV clients against concurrent writers under the
deterministic :class:`~repro.faults.InterleavingScheduler`.  The
serialization op log (changes + every answer's latched ``on_o3``
point) is replayed single-threaded, and for every answer:

- ``complete=True``  -> the rows must equal the reference answer
  **row for row** (multiset equality) — a deadline must never make an
  answer silently incomplete;
- ``complete=False`` -> the rows must be a **multiset subset** of the
  reference answer — a degraded answer may miss rows, never invent,
  duplicate, or serve stale ones.

This is the paper's partial-answer promise carried into overload mode:
whatever the deadline does, every delivered tuple is a true result.
"""

import random
import threading

from hypothesis import given, settings, strategies as st

from repro.bench.stress import _attach_pmv, _bind_query, _build_database, _rows_key
from repro.errors import LockError
from repro.faults import InterleavingScheduler
from repro.qos import Deadline

_JOIN_TIMEOUT = 60.0

# From always-expired through plausibly-mid-scan to never-expiring.
_BUDGETS = (0.0, 0.0002, 0.001, 0.005, 60.0)


def _multiset(keys):
    counts = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    return counts


def _is_multisubset(got, want):
    have = _multiset(want)
    return all(count <= have.get(key, 0) for key, count in _multiset(got).items())


def _run_session(seed: int, budgets: list[float], clients: int = 2, writers: int = 1):
    """One scheduled concurrent session; returns (oplog, queries, results,
    errors) with results[qid] = (rows_key, complete)."""
    database = _build_database()
    manager, template = _attach_pmv(database, seed)
    sched = InterleavingScheduler(seed)
    database.install_scheduler(sched)

    oplog: list[tuple] = []
    queries: dict[str, object] = {}
    results: dict[str, tuple] = {}
    errors: list[str] = []

    def log_change(change, txn):
        oplog.append(
            (
                "change",
                change.kind.value,
                change.relation,
                tuple(change.old_row.values) if change.old_row is not None else None,
                tuple(change.new_row.values) if change.new_row is not None else None,
            )
        )

    database.add_change_listener(log_change)

    def client_body(index: int) -> None:
        rng = random.Random(seed * 7919 + 101 * index)
        try:
            for k, budget in enumerate(budgets):
                query = _bind_query(template, rng)
                qid = f"c{index}.{k}"

                def at_o3(_query, qid=qid):
                    oplog.append(("query", qid))

                answer = manager.execute(
                    query, on_o3=at_o3, deadline=Deadline.after(budget)
                )
                queries[qid] = query
                results[qid] = (_rows_key(answer.all_rows()), answer.complete)
        except BaseException as exc:
            errors.append(f"c{index}: {type(exc).__name__}: {exc}")

    def writer_body(index: int) -> None:
        rng = random.Random(seed * 104_729 + 307 * index)
        next_id = 200_000 * (index + 1)
        owned = {}
        try:
            for _ in range(6):
                try:
                    if rng.random() < 0.6 or not owned:
                        owned[next_id] = database.insert(
                            "r",
                            (next_id, rng.randrange(6), rng.randrange(4),
                             f"pw{index}a{next_id}", "fresh"),
                        )
                        next_id += 1
                    else:
                        victim = rng.choice(sorted(owned))
                        database.delete("r", owned.pop(victim))
                except LockError:
                    # The maintainer's clean abort under reader bursts.
                    continue
        except BaseException as exc:
            errors.append(f"w{index}: {type(exc).__name__}: {exc}")

    threads = [sched.spawn(f"c{i}", client_body, i) for i in range(clients)] + [
        sched.spawn(f"w{i}", writer_body, i) for i in range(writers)
    ]
    for thread in threads:
        thread.start()
    sched.launch()
    for thread in threads:
        thread.join(_JOIN_TIMEOUT)
    hung = [t.name for t in threads if t.is_alive()]
    database.install_scheduler(None)
    database.remove_change_listener(log_change)
    if hung:
        errors.append(f"hang: {','.join(hung)}")
    return oplog, queries, results, errors


def _replay_subset_check(oplog, queries, results):
    """Replay the op log; returns a list of violation descriptions."""
    reference = _build_database()
    violations = []
    for entry in oplog:
        if entry[0] == "change":
            _, kind, relation, old_values, new_values = entry
            if kind == "insert":
                reference.insert(relation, new_values)
            else:
                row_key = old_values[0]
                deleted = reference.delete_where(
                    relation, lambda row: row["id"] == row_key
                )
                if len(deleted) != 1:
                    violations.append(f"replay-delete id {row_key}")
            continue
        qid = entry[1]
        if qid not in results:
            continue  # client died after on_o3; captured in errors
        got, complete = results[qid]
        want = _rows_key(reference.run(queries[qid]))
        if complete:
            if got != want:
                violations.append(
                    f"{qid}: complete answer diverges "
                    f"({len(got)} rows != {len(want)})"
                )
        elif not _is_multisubset(got, want):
            violations.append(f"{qid}: degraded answer is not a subset")
    return violations


@given(
    seed=st.integers(0, 7),
    budgets=st.lists(st.sampled_from(_BUDGETS), min_size=2, max_size=4),
)
@settings(max_examples=12, deadline=None)
def test_degraded_answers_are_subsets_under_concurrent_writers(seed, budgets):
    """The tentpole property: whatever the deadline and the
    interleaving do, a degraded answer is a true subset of the full
    answer at its serialization point, and a complete answer is exact."""
    oplog, queries, results, errors = _run_session(seed, budgets)
    assert not errors, errors
    violations = _replay_subset_check(oplog, queries, results)
    assert not violations, violations


@given(seed=st.integers(0, 31))
@settings(max_examples=16, deadline=None)
def test_zero_budget_answer_is_explicitly_partial(seed):
    """A spent budget must always yield complete=False and only cached
    (true) tuples — never a silently truncated 'complete' answer."""
    database = _build_database()
    manager, template = _attach_pmv(database, seed)
    rng = random.Random(seed)
    query = _bind_query(template, rng)
    # Warm the PMV so the degraded answer has cached rows to serve.
    manager.execute(query)
    answer = manager.execute(query, deadline=Deadline.after(0.0))
    assert answer.complete is False
    assert answer.degraded_reason in ("deadline-skip", "deadline-abandon")
    full = _rows_key(database.run(query))
    assert _is_multisubset(_rows_key(answer.all_rows()), full)
    view = manager.view(template.name)
    assert view.metrics.snapshot()["qos_partial_answers"] >= 1


@given(seed=st.integers(0, 15))
@settings(max_examples=10, deadline=None)
def test_unbounded_budget_answers_stay_exact(seed):
    """A generous deadline changes nothing: the PMV-mediated answer
    still equals plain blocking execution row for row."""
    database = _build_database()
    manager, template = _attach_pmv(database, seed)
    rng = random.Random(seed ^ 0xBEEF)
    for _ in range(3):
        query = _bind_query(template, rng)
        answer = manager.execute(query, deadline=Deadline.after(60.0))
        assert answer.complete is True
        assert answer.degraded_reason is None
        assert _rows_key(answer.all_rows()) == _rows_key(database.run(query))
