"""Property-based tests for Operation O1 decomposition.

Three invariants the paper's correctness rests on, checked on random
queries over a random discretization grid:

1. **Partition** — the condition parts are pairwise non-overlapping and
   their union is exactly the query's ``Cselect`` (every value
   combination satisfying Cselect lies in exactly one part);
2. **Containment** — each part is contained in its containing bcp;
3. **Consistency** — ``bcp_of_row`` assigns a satisfying tuple to the
   same containing bcp as the part that matches it.
"""

from hypothesis import given, settings, strategies as st

from repro.core.decompose import bcp_of_row, decompose
from repro.core.discretize import BasicIntervals, Discretization
from repro.engine.datatypes import INTEGER
from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
)
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.engine.template import QueryTemplate, SelectionSlot, SlotForm


def make_template():
    return QueryTemplate(
        "qt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.INTERVAL),
        ),
    )


TEMPLATE = make_template()


def probe_schema():
    schema = Schema(
        [Column("a", INTEGER), Column("e", INTEGER), Column("f", INTEGER), Column("g", INTEGER)]
    )
    schema._positions["r.a"] = 0
    schema._positions["s.e"] = 1
    schema._positions["r.f"] = 2
    schema._positions["s.g"] = 3
    return schema


SCHEMA = probe_schema()


@st.composite
def grids(draw):
    cuts = draw(
        st.lists(st.integers(0, 100), min_size=1, max_size=6, unique=True).map(sorted)
    )
    return BasicIntervals(cuts)


@st.composite
def queries(draw, grid):
    f_values = draw(st.lists(st.integers(0, 5), min_size=1, max_size=3, unique=True))
    # Disjoint intervals over 0..100: pick sorted distinct endpoints and
    # pair them up.
    n_intervals = draw(st.integers(1, 2))
    endpoints = draw(
        st.lists(
            st.integers(-5, 105),
            min_size=2 * n_intervals,
            max_size=2 * n_intervals,
            unique=True,
        ).map(sorted)
    )
    intervals = []
    for i in range(n_intervals):
        low, high = endpoints[2 * i], endpoints[2 * i + 1]
        low_inc = draw(st.booleans())
        high_inc = draw(st.booleans())
        if i > 0 and endpoints[2 * i - 1] == low:
            low_inc = False  # keep the disjunction's intervals disjoint
        intervals.append(Interval(low, high, low_inc, high_inc))
    return TEMPLATE.bind(
        [
            EqualityDisjunction("r.f", f_values),
            IntervalDisjunction("s.g", intervals),
        ]
    )


@st.composite
def grid_and_query(draw):
    grid = draw(grids())
    return grid, draw(queries(grid))


probe_values = st.tuples(st.integers(0, 5), st.integers(-5, 105))


@given(grid_and_query(), st.lists(probe_values, max_size=40))
@settings(max_examples=100, deadline=None)
def test_parts_partition_cselect(gq, probes):
    grid, query = gq
    disc = Discretization(TEMPLATE, {"s.g": grid})
    parts = decompose(query, disc)
    for f, g in probes:
        row = Row((0, 0, f, g), SCHEMA)
        satisfies = query.cselect.matches(row)
        owners = [p for p in parts if p.matches(row)]
        assert len(owners) == (1 if satisfies else 0)


@given(grid_and_query())
@settings(max_examples=100, deadline=None)
def test_parts_contained_in_their_bcp(gq):
    grid, query = gq
    disc = Discretization(TEMPLATE, {"s.g": grid})
    for part in decompose(query, disc):
        assert part.contained_in(part.containing)
        if part.is_basic:
            # A basic part's dims coincide with the bcp's.
            for dim, basic_dim in zip(part.dims, part.containing.dims):
                assert dim == basic_dim


@given(grid_and_query(), st.lists(probe_values, max_size=40))
@settings(max_examples=100, deadline=None)
def test_bcp_of_row_agrees_with_owning_part(gq, probes):
    grid, query = gq
    disc = Discretization(TEMPLATE, {"s.g": grid})
    parts = decompose(query, disc)
    for f, g in probes:
        row = Row((0, 0, f, g), SCHEMA)
        if not query.cselect.matches(row):
            continue
        owner = next(p for p in parts if p.matches(row))
        recovered = bcp_of_row(row, query, disc)
        assert recovered.key == owner.containing.key
        assert recovered.matches(row)


@given(grid_and_query())
@settings(max_examples=100, deadline=None)
def test_part_count_bounds(gq):
    grid, query = gq
    disc = Discretization(TEMPLATE, {"s.g": grid})
    parts = decompose(query, disc)
    f_count = len(query.cselect.conditions[0].values)
    interval_count = len(query.cselect.conditions[1].intervals)
    assert len(parts) >= f_count * interval_count
    assert len(parts) <= f_count * interval_count * grid.count
