"""Property-based tests for interval algebra (hypothesis).

The O1 decomposition's correctness rests on interval algebra:
overlap/containment/intersection must behave like their set-theoretic
definitions over the rationals.  We model each interval by membership
of probe points and check the operations against that model.
"""

from hypothesis import given, strategies as st

from repro.engine.datatypes import MINUS_INFINITY, PLUS_INFINITY
from repro.engine.predicate import Interval
from repro.errors import ConditionError

values = st.integers(min_value=-50, max_value=50)


@st.composite
def intervals(draw):
    """Random (possibly unbounded, possibly closed) non-empty intervals."""
    unbounded_low = draw(st.booleans())
    unbounded_high = draw(st.booleans())
    low = MINUS_INFINITY if unbounded_low else draw(values)
    high = PLUS_INFINITY if unbounded_high else draw(values)
    low_inc = draw(st.booleans())
    high_inc = draw(st.booleans())
    try:
        return Interval(low, high, low_inc, high_inc)
    except ConditionError:
        # Empty combination drawn; retry with a guaranteed-valid one.
        base = draw(values)
        return Interval(base, base + draw(st.integers(1, 10)), low_inc, high_inc)


probe_points = st.lists(
    st.one_of(values, st.floats(min_value=-51, max_value=51, allow_nan=False)),
    min_size=0,
    max_size=30,
)


@given(intervals(), intervals(), probe_points)
def test_overlap_agrees_with_membership(a, b, points):
    """If any probe point is in both intervals, they must overlap."""
    both = [p for p in points if a.contains_value(p) and b.contains_value(p)]
    if both:
        assert a.overlaps(b)
        assert b.overlaps(a)


@given(intervals(), intervals())
def test_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(intervals(), intervals(), probe_points)
def test_intersection_is_conjunction_of_membership(a, b, points):
    inter = a.intersect(b)
    for p in points:
        in_both = a.contains_value(p) and b.contains_value(p)
        in_inter = inter is not None and inter.contains_value(p)
        assert in_both == in_inter


@given(intervals(), intervals())
def test_intersection_symmetric(a, b):
    ab = a.intersect(b)
    ba = b.intersect(a)
    assert ab == ba


@given(intervals(), intervals(), probe_points)
def test_containment_implies_membership_subset(a, b, points):
    if a.contains_interval(b):
        for p in points:
            if b.contains_value(p):
                assert a.contains_value(p)


@given(intervals())
def test_interval_contains_itself(a):
    assert a.contains_interval(a)
    assert a.overlaps(a)
    assert a.intersect(a) == a


@given(intervals(), intervals(), intervals())
def test_containment_transitive(a, b, c):
    if a.contains_interval(b) and b.contains_interval(c):
        assert a.contains_interval(c)


@given(intervals())
def test_everything_contains_all(a):
    assert Interval.everything().contains_interval(a)


@given(intervals(), intervals())
def test_disjoint_intervals_have_no_common_point(a, b):
    if not a.overlaps(b):
        inter = a.intersect(b)
        assert inter is None
