"""Property: the columnar pipeline is observationally identical to the
row pipeline under adversarial workloads.

Two identical worlds — same data, same template, same view shape, one
executor per pipeline — are driven through random interleavings of
queries and base-table churn (applied to both worlds in lockstep).
After every query the two pipelines must agree on the partial rows
(exactly, in delivery order), the full answer (as a multiset, equal to
the brute-force join), and the completeness flags; both views must keep
their structural invariants.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    Discretization,
    MaintenanceStrategy,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
)
from repro.core.discretize import BasicIntervals
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)

F_VALUES = st.sampled_from([1, 2, 3])

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("query"),
            st.lists(st.integers(0, 4), min_size=1, max_size=3, unique=True),
            st.lists(st.integers(0, 3), min_size=1, max_size=2, unique=True),
        ),
        st.tuples(st.just("insert"), st.integers(0, 7), st.integers(0, 4)),
        st.tuples(st.just("delete"), st.integers(0, 30), st.integers(0, 0)),
        st.tuples(st.just("update"), st.integers(0, 30), st.integers(0, 4)),
    ),
    min_size=3,
    max_size=20,
)

interval_operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("query"),
            st.lists(st.integers(0, 4), min_size=1, max_size=2, unique=True),
            st.tuples(st.integers(0, 3), st.integers(1, 3)),  # (low, span)
        ),
        st.tuples(st.just("insert"), st.integers(0, 7), st.integers(0, 4)),
    ),
    min_size=3,
    max_size=15,
)


def make_template(interval_slot):
    return QueryTemplate(
        "Ivt" if interval_slot else "Eqt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot(
                "s", "s.g", SlotForm.INTERVAL if interval_slot else SlotForm.EQUALITY
            ),
        ),
    )


def build_world(columnar, F, interval_slot=False):
    db = Database()
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    db.create_index("r_f", "r", ["f"])
    db.create_index("r_c", "r", ["c"])
    db.create_index("s_d", "s", ["d"])
    db.create_index("s_g", "s", ["g"])
    for i in range(32):
        db.insert("r", (i, i % 8, i % 5, f"a{i}"))
    for j in range(20):
        db.insert("s", (j % 8, j % 4, f"e{j}"))
    template = make_template(interval_slot)
    db.register_template(template)
    grids = {"s.g": BasicIntervals([2, 4])} if interval_slot else None
    view = PartialMaterializedView(
        template,
        Discretization(template, grids),
        tuples_per_entry=F,
        max_entries=6,
        aux_index_columns=("r.a", "s.e"),
    )
    executor = PMVExecutor(db, view, columnar=columnar)
    PMVMaintainer(db, view, strategy=MaintenanceStrategy.DELTA_JOIN).attach()
    return db, template, view, executor


def brute_force(db, fs, g_test):
    r_rows = list(db.catalog.relation("r").scan_rows())
    s_rows = list(db.catalog.relation("s").scan_rows())
    return sorted(
        (r["a"], s["e"], r["f"], s["g"])
        for r in r_rows
        for s in s_rows
        if r["c"] == s["d"] and r["f"] in fs and g_test(s["g"])
    )


def apply_churn(db, op, x, y, next_id):
    if op == "insert":
        db.insert("r", (next_id, x, y, f"new{next_id}"))
    elif op == "delete":
        live = list(db.catalog.relation("r").scan())
        if live:
            row_id, _ = live[x % len(live)]
            db.delete("r", row_id)
    elif op == "update":
        live = list(db.catalog.relation("r").scan())
        if live:
            row_id, _ = live[x % len(live)]
            db.update("r", row_id, f=y)


def assert_pipelines_agree(col, row, full):
    got_col = sorted(tuple(r.values) for r in col.all_rows())
    got_row = sorted(tuple(r.values) for r in row.all_rows())
    assert got_col == full
    assert got_row == full
    assert [tuple(r.values) for r in col.partial_rows] == [
        tuple(r.values) for r in row.partial_rows
    ]
    assert col.complete and row.complete


@given(F_VALUES, operations)
@settings(max_examples=25, deadline=None)
def test_columnar_matches_row_pipeline_under_churn(F, trace):
    col_db, col_t, col_view, col_ex = build_world(True, F)
    row_db, row_t, row_view, row_ex = build_world(False, F)
    next_id = 1000
    for op, x, y in trace:
        if op == "query":
            fs, gs = x, y
            binds = [EqualityDisjunction("r.f", fs), EqualityDisjunction("s.g", gs)]
            col = col_ex.execute(col_t.bind(list(binds)))
            row = row_ex.execute(row_t.bind(list(binds)))
            assert_pipelines_agree(
                col, row, brute_force(col_db, set(fs), lambda g: g in set(gs))
            )
            col_view.check_invariants()
            row_view.check_invariants()
        else:
            apply_churn(col_db, op, x, y, next_id)
            apply_churn(row_db, op, x, y, next_id)
            next_id += 1
    col_view.check_invariants()
    row_view.check_invariants()


@given(F_VALUES, interval_operations)
@settings(max_examples=25, deadline=None)
def test_columnar_matches_row_pipeline_on_interval_slots(F, trace):
    """Interval-form s.g: random sub-intervals produce non-basic parts,
    so resident probes run the compiled tuple-position matchers."""
    col_db, col_t, col_view, col_ex = build_world(True, F, interval_slot=True)
    row_db, row_t, row_view, row_ex = build_world(False, F, interval_slot=True)
    next_id = 2000
    for op, x, y in trace:
        if op == "query":
            fs, (low, span) = x, y
            interval = Interval(low, low + span, low_inclusive=True)
            binds = [
                EqualityDisjunction("r.f", fs),
                IntervalDisjunction("s.g", [interval]),
            ]
            col = col_ex.execute(col_t.bind(list(binds)))
            row = row_ex.execute(row_t.bind(list(binds)))
            assert_pipelines_agree(
                col,
                row,
                brute_force(col_db, set(fs), lambda g: low <= g < low + span),
            )
            col_view.check_invariants()
            row_view.check_invariants()
        else:
            apply_churn(col_db, op, x, y, next_id)
            apply_churn(row_db, op, x, y, next_id)
            next_id += 1
