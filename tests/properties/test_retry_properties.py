"""Property-based retry backoff: jitter always lands inside the
deterministic ceiling, never goes negative, and replays exactly.

The invariants the thundering-herd fix rests on:

- for every (policy, attempt, rng draw): ``0 <= delay <= ceiling``
  where ``ceiling = min(max_delay, base * factor**attempt)`` — jitter
  may only *shrink* a wait, never extend the worst case;
- ``jitter=0`` (or no rng) reproduces the exact pre-jitter schedule —
  the escape hatch really is the old behaviour;
- the same seed draws the same schedule — a replayed nemesis seed
  retries at the same instants.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.net.client import RetryPolicy

policies = st.builds(
    RetryPolicy,
    attempts=st.integers(min_value=1, max_value=10),
    base_delay=st.floats(min_value=1e-4, max_value=1.0),
    factor=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=1e-4, max_value=10.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
)


@settings(max_examples=200, deadline=None)
@given(policy=policies, attempt=st.integers(min_value=0, max_value=30), seed=st.integers())
def test_jitter_bounded_by_deterministic_ceiling(policy, attempt, seed):
    ceiling = min(policy.max_delay, policy.base_delay * policy.factor ** attempt)
    delay = policy.delay(attempt, rng=random.Random(seed))
    assert 0.0 <= delay <= ceiling + 1e-12


@settings(max_examples=100, deadline=None)
@given(
    base=st.floats(min_value=1e-4, max_value=1.0),
    factor=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.floats(min_value=1e-4, max_value=10.0),
    attempt=st.integers(min_value=0, max_value=30),
    seed=st.integers(),
)
def test_zero_jitter_is_exactly_the_ceiling(base, factor, max_delay, attempt, seed):
    policy = RetryPolicy(base_delay=base, factor=factor, max_delay=max_delay, jitter=0)
    expected = min(max_delay, base * factor ** attempt)
    assert policy.delay(attempt, rng=random.Random(seed)) == expected
    assert policy.delay(attempt) == expected  # no rng: same escape hatch


@settings(max_examples=100, deadline=None)
@given(policy=policies, seed=st.integers())
def test_same_seed_replays_identical_schedule(policy, seed):
    first = [policy.delay(i, rng=random.Random(seed)) for i in range(8)]
    second = [policy.delay(i, rng=random.Random(seed)) for i in range(8)]
    assert first == second
