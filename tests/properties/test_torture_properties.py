"""Property-based torture: random (workload seed, fault point) pairs.

Hypothesis draws a workload seed and a single :class:`FaultSpec`
(site, occurrence, mode) and runs one full torture point — workload,
simulated crash, recovery, invariant battery.  Any failure shrinks
toward the minimal failing schedule (smallest seed, earliest
occurrence, first site/mode in sort order), and the assertion message
carries the exact ``--replay`` handle.

Also pins down the harness's own contracts: spec/plan serialization
round-trips, invalid schedules are rejected, and a point replays
deterministically (same seed + same spec -> same outcome), which is
what makes every reported divergence reproducible.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.torture import run_point
from repro.faults import FaultMode, FaultPlan, FaultSpec, SITES, modes_for_site

_OPS = 24

_SITES = sorted(SITES)


@st.composite
def fault_specs(draw, max_occurrence=40):
    site = draw(st.sampled_from(_SITES))
    occurrence = draw(st.integers(1, max_occurrence))
    mode = draw(st.sampled_from(list(modes_for_site(site))))
    return FaultSpec(site, occurrence, mode)


@given(seed=st.integers(0, 7), spec=fault_specs())
@settings(max_examples=25, deadline=None)
def test_any_single_fault_point_recovers(seed, spec):
    """The tentpole property: crash (or fail) anywhere, recover to a
    state the invariant checker accepts.  An occurrence beyond what the
    workload reaches degenerates to a fault-free run, whose final-state
    checks must hold too."""
    result = run_point(seed, spec, ops=_OPS)
    assert result.ok, (
        f"divergence — replay with: "
        f"python -m repro.bench.torture --ops {_OPS} --replay {result.replay} "
        f"({result.error})"
    )


@given(seed=st.integers(0, 3), spec=fault_specs(max_occurrence=12))
@settings(max_examples=8, deadline=None)
def test_points_replay_deterministically(seed, spec):
    """Same seed + same spec -> bit-identical outcome.  Without this,
    the printed replay handle would be worthless."""
    first = run_point(seed, spec, ops=_OPS)
    second = run_point(seed, spec, ops=_OPS)
    assert (first.ok, first.status, first.stage, first.ops_acked, first.error) == (
        second.ok, second.status, second.stage, second.ops_acked, second.error
    )


@given(spec=fault_specs())
def test_spec_describe_parse_roundtrip(spec):
    assert FaultSpec.parse(spec.describe()) == spec


@given(specs=st.lists(fault_specs(), max_size=4))
def test_plan_json_roundtrip(specs):
    seen = set()
    unique = []
    for spec in specs:
        if (spec.site, spec.occurrence) not in seen:
            seen.add((spec.site, spec.occurrence))
            unique.append(spec)
    plan = FaultPlan(unique)
    assert FaultPlan.from_json(plan.to_json()).describe() == plan.describe()


@given(site=st.sampled_from(_SITES), occurrence=st.integers(-3, 0))
def test_nonpositive_occurrences_rejected(site, occurrence):
    try:
        FaultSpec(site, occurrence, modes_for_site(site)[0])
    except ValueError:
        return
    raise AssertionError("occurrence must be 1-based")


def test_wal_append_error_mode_rejected():
    try:
        FaultSpec("wal.append", 1, FaultMode.ERROR)
    except ValueError:
        return
    raise AssertionError("force-at-append failure must be modeled as a crash")
