"""Property-based end-to-end test of the PMV method.

Random interleavings of template queries, inserts, deletes, and updates
are executed through the PMV; after every query the answer must equal
the brute-force join (the transactional-consistency guarantee), and the
PMV's structural invariants must hold.  This is the strongest statement
of the paper's correctness claim, checked under adversarial workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Discretization,
    MaintenanceStrategy,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
)
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)

F_VALUES = st.sampled_from([1, 2, 3])
POLICIES = st.sampled_from(["clock", "2q", "lru"])
STRATEGIES = st.sampled_from(
    [MaintenanceStrategy.DELTA_JOIN, MaintenanceStrategy.AUX_INDEX]
)

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("query"),
            st.lists(st.integers(0, 4), min_size=1, max_size=3, unique=True),
            st.lists(st.integers(0, 3), min_size=1, max_size=2, unique=True),
        ),
        st.tuples(st.just("insert"), st.integers(0, 7), st.integers(0, 4)),
        st.tuples(st.just("delete"), st.integers(0, 30), st.integers(0, 0)),
        st.tuples(st.just("update"), st.integers(0, 30), st.integers(0, 4)),
    ),
    min_size=3,
    max_size=25,
)


def build_world(policy, F, strategy):
    db = Database()
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    db.create_index("r_f", "r", ["f"])
    db.create_index("r_c", "r", ["c"])
    db.create_index("s_d", "s", ["d"])
    db.create_index("s_g", "s", ["g"])
    for i in range(40):
        db.insert("r", (i, i % 8, i % 5, f"a{i}"))
    for j in range(24):
        db.insert("s", (j % 8, j % 4, f"e{j}"))
    template = QueryTemplate(
        "Eqt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )
    view = PartialMaterializedView(
        template,
        Discretization(template),
        tuples_per_entry=F,
        max_entries=6,
        policy=policy,
        aux_index_columns=("r.a", "s.e"),
    )
    executor = PMVExecutor(db, view)
    PMVMaintainer(db, view, strategy=strategy).attach()
    return db, template, view, executor


def brute_force(db, fs, gs):
    r_rows = list(db.catalog.relation("r").scan_rows())
    s_rows = list(db.catalog.relation("s").scan_rows())
    return sorted(
        (r["a"], s["e"], r["f"], s["g"])
        for r in r_rows
        for s in s_rows
        if r["c"] == s["d"] and r["f"] in fs and s["g"] in gs
    )


@given(POLICIES, F_VALUES, STRATEGIES, operations)
@settings(max_examples=30, deadline=None)
def test_pmv_answers_stay_consistent_under_churn(policy, F, strategy, trace):
    db, template, view, executor = build_world(policy, F, strategy)
    next_id = 1000
    for op, x, y in trace:
        if op == "query":
            fs, gs = x, y
            query = template.bind(
                [EqualityDisjunction("r.f", fs), EqualityDisjunction("s.g", gs)]
            )
            result = executor.execute(query)
            got = sorted(tuple(row.values) for row in result.all_rows())
            assert got == brute_force(db, set(fs), set(gs))
            view.check_invariants()
        elif op == "insert":
            db.insert("r", (next_id, x, y, f"new{next_id}"))
            next_id += 1
        elif op == "delete":
            live = list(db.catalog.relation("r").scan())
            if live:
                row_id, _ = live[x % len(live)]
                db.delete("r", row_id)
        elif op == "update":
            live = list(db.catalog.relation("r").scan())
            if live:
                row_id, _ = live[x % len(live)]
                db.update("r", row_id, f=y)
    view.check_invariants()


@given(POLICIES, F_VALUES, operations)
@settings(max_examples=20, deadline=None)
def test_stored_tuples_never_exceed_f_times_entries(policy, F, trace):
    db, template, view, executor = build_world(
        policy, F, MaintenanceStrategy.DELTA_JOIN
    )
    for op, x, y in trace:
        if op == "query":
            query = template.bind(
                [EqualityDisjunction("r.f", x), EqualityDisjunction("s.g", y)]
            )
            executor.execute(query)
            assert view.stored_tuple_count <= F * view.max_entries
            assert view.entry_count <= view.max_entries


@given(F_VALUES, operations)
@settings(max_examples=20, deadline=None)
def test_partial_plus_remaining_is_exact_multiset(F, trace):
    """No tuple is ever delivered twice and none is lost, even with
    duplicate join results."""
    db, template, view, executor = build_world("clock", F, MaintenanceStrategy.DELTA_JOIN)
    # Duplicate some r rows to force duplicate result tuples.
    for i in range(5):
        db.insert("r", (2000 + i, i % 8, i % 5, f"a{i}"))
    for op, x, y in trace:
        if op != "query":
            continue
        query = template.bind(
            [EqualityDisjunction("r.f", x), EqualityDisjunction("s.g", y)]
        )
        result = executor.execute(query)
        got = sorted(tuple(row.values) for row in result.all_rows())
        assert got == brute_force(db, set(x), set(y))
