"""Property-based test: the heap relation against a dict reference model.

Random insert/delete/update traces must leave the heap's visible
contents identical to a plain in-memory model, regardless of page
spills, tombstone reuse, or record relocation.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.bufferpool import BufferPool
from repro.engine.datatypes import INTEGER, TEXT
from repro.engine.disk import DiskManager
from repro.engine.heap import HeapRelation
from repro.engine.schema import Column, Schema


def fresh_heap(pool_pages=4, page_size=512):
    disk = DiskManager(page_size=page_size)
    pool = BufferPool(disk, capacity=pool_pages)
    schema = Schema(
        [Column("k", INTEGER, nullable=False), Column("v", TEXT)], relation_name="t"
    )
    return HeapRelation("t", schema, pool)


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 99),
            st.text(alphabet="abc", min_size=0, max_size=40),
        ),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just("")),
        st.tuples(
            st.just("update"),
            st.integers(0, 30),
            st.text(alphabet="xyz", min_size=0, max_size=60),
        ),
    ),
    min_size=1,
    max_size=120,
)


@given(ops)
@settings(max_examples=50, deadline=None)
def test_heap_matches_dict_model(trace):
    heap = fresh_heap()
    model: dict = {}  # row_id -> (k, v)
    live_ids: list = []
    for op, arg, text in trace:
        if op == "insert":
            row_id = heap.insert((arg, text))
            assert row_id not in model
            model[row_id] = (arg, text)
            live_ids.append(row_id)
        elif op == "delete" and live_ids:
            victim = live_ids[arg % len(live_ids)]
            deleted = heap.delete(victim)
            assert deleted.values == model.pop(victim)
            live_ids.remove(victim)
        elif op == "update" and live_ids:
            target = live_ids[arg % len(live_ids)]
            old_values = model[target]
            old, new, new_id = heap.update(target, v=text)
            assert old.values == old_values
            del model[target]
            live_ids.remove(target)
            model[new_id] = (old_values[0], text)
            live_ids.append(new_id)
        # Invariants after every operation:
        assert heap.row_count == len(model)
    scanned = {row_id: row.values for row_id, row in heap.scan()}
    assert scanned == {row_id: values for row_id, values in model.items()}


@given(ops)
@settings(max_examples=25, deadline=None)
def test_heap_correct_under_tiny_buffer_pool(trace):
    """Same model check with a 2-page pool: every operation faults pages
    in and out, exercising eviction + dirty write-back."""
    heap = fresh_heap(pool_pages=2, page_size=256)
    model: dict = {}
    live_ids: list = []
    for op, arg, text in trace:
        if op == "insert":
            row_id = heap.insert((arg, text))
            model[row_id] = (arg, text)
            live_ids.append(row_id)
        elif op == "delete" and live_ids:
            victim = live_ids[arg % len(live_ids)]
            heap.delete(victim)
            del model[victim]
            live_ids.remove(victim)
        elif op == "update" and live_ids:
            target = live_ids[arg % len(live_ids)]
            old_values = model.pop(target)
            live_ids.remove(target)
            _, _, new_id = heap.update(target, v=text)
            model[new_id] = (old_values[0], text)
            live_ids.append(new_id)
    assert {rid: row.values for rid, row in heap.scan()} == model
