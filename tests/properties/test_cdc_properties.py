"""Property: async maintenance is a bounded-stale refinement of eager.

Two identical worlds receive the same DML stream in lockstep: world A
maintains its PMV asynchronously (the outbox feed, drained at
trace-controlled points), world E eagerly at write time.  Three
properties must hold at every query:

- **convergence equivalence** — whenever A's feed is fully drained,
  A's answer equals E's answer equals the brute-force truth, exactly;
- **no lost tuples** — mid-flight (feed not drained), every tuple of
  the *current* truth appears in A's answer with at least its true
  multiplicity;
- **the staleness stamp is a true upper bound** — every tuple A serves
  was a true result in some history state no older than the stamp
  claims: answer ⊆ ∪ truth(L) for L in [applied_lsn, now], where the
  stamp is ``now − applied_lsn``.

History states are exact base-table snapshots taken after every DML
op, so the bound check replays real states, not an approximation.
"""

from hypothesis import given, settings, strategies as st

from repro.cdc import HeavyLightSplitter
from repro.core import (
    Discretization,
    MaintenanceStrategy,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
)
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("query"),
            st.lists(st.integers(0, 4), min_size=1, max_size=3, unique=True),
            st.lists(st.integers(0, 3), min_size=1, max_size=2, unique=True),
        ),
        st.tuples(st.just("insert"), st.integers(0, 7), st.integers(0, 4)),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just(0)),
        st.tuples(st.just("update"), st.integers(0, 30), st.integers(0, 4)),
        st.tuples(st.just("drain"), st.integers(1, 6), st.just(0)),
        st.tuples(st.just("converge"), st.just(0), st.just(0)),
    ),
    min_size=4,
    max_size=22,
)


def make_template():
    return QueryTemplate(
        "Eqt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def build_db():
    db = Database()
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    db.create_index("r_f", "r", ["f"])
    db.create_index("r_c", "r", ["c"])
    db.create_index("s_d", "s", ["d"])
    db.create_index("s_g", "s", ["g"])
    for i in range(24):
        db.insert("r", (i, i % 6, i % 5, f"a{i}"))
    for j in range(16):
        db.insert("s", (j % 6, j % 4, f"e{j}"))
    return db


def build_async_world():
    db = build_db()
    template = make_template()
    db.register_template(template)
    view = PartialMaterializedView(
        template,
        Discretization(template),
        tuples_per_entry=2,
        max_entries=6,
        aux_index_columns=("r.a", "s.e"),
    )
    executor = PMVExecutor(db, view)
    pmv_maintainer = PMVMaintainer(
        db, view, strategy=MaintenanceStrategy.DELTA_JOIN
    ).attach()
    from repro.cdc import AsyncMaintainer

    drain = AsyncMaintainer(db, splitter=HeavyLightSplitter({"r.f": {0, 1}}))
    drain.register(pmv_maintainer)
    return db, template, view, executor, drain


def build_eager_world():
    db = build_db()
    template = make_template()
    db.register_template(template)
    view = PartialMaterializedView(
        template,
        Discretization(template),
        tuples_per_entry=2,
        max_entries=6,
        aux_index_columns=("r.a", "s.e"),
    )
    executor = PMVExecutor(db, view)
    PMVMaintainer(db, view, strategy=MaintenanceStrategy.DELTA_JOIN).attach()
    return db, template, view, executor


def snapshot(db):
    return (
        tuple(tuple(r.values) for r in db.catalog.relation("r").scan_rows()),
        tuple(tuple(r.values) for r in db.catalog.relation("s").scan_rows()),
    )


def truth_of(snap, fs, gs):
    """Brute-force counting multiset for the bindings on one snapshot.

    Tuples carry the expanded select list ``Ls'`` (user columns plus
    the slot columns), matching what ``all_rows`` delivers.
    """
    r_rows, s_rows = snap
    counts = {}
    for rid, c, f, a in r_rows:
        if f not in fs:
            continue
        for d, g, e in s_rows:
            if c == d and g in gs:
                item = (a, e, f, g)
                counts[item] = counts.get(item, 0) + 1
    return counts


def as_counts(rows):
    counts = {}
    for item in rows:
        counts[item] = counts.get(item, 0) + 1
    return counts


def apply_dml(db, op, x, y, next_id):
    """One deterministic single-row DML (targets rows by id value so
    both worlds pick the identical victim)."""
    if op == "insert":
        db.insert("r", (next_id, x % 6, y, f"new{next_id}"))
        return True
    live = list(db.catalog.relation("r").scan())
    if not live:
        return False
    row_id, row = sorted(live, key=lambda pair: pair[1]["id"])[x % len(live)]
    if op == "delete":
        db.delete("r", row_id)
    else:
        db.update("r", row_id, f=y)
    return True


@given(operations)
@settings(max_examples=20, deadline=None)
def test_async_world_is_bounded_stale_refinement_of_eager(trace):
    a_db, a_t, a_view, a_ex, drain = build_async_world()
    e_db, e_t, e_view, e_ex = build_eager_world()
    history = [snapshot(a_db)]  # history[lsn] = state after that LSN
    next_id = 1000
    for op, x, y in trace:
        if op == "drain":
            drain.drain(max_records=x)
        elif op == "converge":
            drain.drain_to_convergence()
        elif op == "query":
            fs, gs = set(x), set(y)
            binds = [
                EqualityDisjunction("r.f", sorted(fs)),
                EqualityDisjunction("s.g", sorted(gs)),
            ]
            a_result = a_ex.execute(a_t.bind(list(binds)))
            got = as_counts(tuple(r.values) for r in a_result.all_rows())
            assert a_result.complete
            now = a_db.current_lsn()
            stamp = a_result.staleness
            assert stamp == now - a_result.applied_lsn
            assert stamp <= now - a_view.applied_lsn or stamp == 0
            # No lost tuples: current truth ⊆ answer.
            current = truth_of(history[-1], fs, gs)
            for item, count in current.items():
                assert got.get(item, 0) >= count, (
                    f"lost current tuple {item!r}"
                )
            # Stamp is a true upper bound: everything served was true
            # in some state no older than the stamp claims.
            window = {}
            for lsn in range(a_result.applied_lsn, now + 1):
                for item, count in truth_of(history[lsn], fs, gs).items():
                    window[item] = max(window.get(item, 0), count)
            for item, count in got.items():
                assert count <= window.get(item, 0), (
                    f"served {item!r} x{count} never true within the "
                    f"stamped window (stamp {stamp})"
                )
            # Convergence equivalence against the eager twin.
            if stamp == 0:
                e_result = e_ex.execute(e_t.bind(list(binds)))
                assert got == as_counts(
                    tuple(r.values) for r in e_result.all_rows()
                )
            a_view.check_invariants()
            e_view.check_invariants()
        else:
            if apply_dml(a_db, op, x, y, next_id):
                apply_dml(e_db, op, x, y, next_id)
                history.append(snapshot(a_db))
            if op == "insert":
                next_id += 1
    # Final convergence: the two worlds collapse to the same answers.
    drain.drain_to_convergence()
    assert drain.lag(a_view) == 0
    binds = [
        EqualityDisjunction("r.f", [0, 1, 2, 3, 4]),
        EqualityDisjunction("s.g", [0, 1, 2, 3]),
    ]
    a_final = a_ex.execute(a_t.bind(list(binds)))
    e_final = e_ex.execute(e_t.bind(list(binds)))
    assert as_counts(tuple(r.values) for r in a_final.all_rows()) == as_counts(
        tuple(r.values) for r in e_final.all_rows()
    )
    assert a_final.staleness == 0


@given(operations)
@settings(max_examples=15, deadline=None)
def test_freshness_bound_never_serves_beyond_it(trace):
    """With a freshness bound set, every non-bypassed answer's stamp is
    within the bound, and bypassed answers are exact."""
    a_db, a_t, a_view, a_ex, drain = build_async_world()
    a_ex.freshness_bound = 2
    history = [snapshot(a_db)]
    next_id = 2000
    for op, x, y in trace:
        if op == "drain":
            drain.drain(max_records=x)
        elif op == "converge":
            drain.drain_to_convergence()
        elif op == "query":
            fs, gs = set(x), set(y)
            binds = [
                EqualityDisjunction("r.f", sorted(fs)),
                EqualityDisjunction("s.g", sorted(gs)),
            ]
            result = a_ex.execute(a_t.bind(list(binds)))
            if result.metrics.bypassed_stale:
                assert result.staleness == 0
                got = as_counts(tuple(r.values) for r in result.all_rows())
                assert got == truth_of(history[-1], fs, gs)
            else:
                assert result.staleness <= 2
        else:
            if apply_dml(a_db, op, x, y, next_id):
                history.append(snapshot(a_db))
            if op == "insert":
                next_id += 1
