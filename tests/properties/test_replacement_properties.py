"""Property-based tests for the replacement policies.

Each policy is driven with random reference/discard traces and checked
against universal cache invariants, plus per-policy reference models
(LRU against an OrderedDict model, FIFO against a queue model).
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.core.replacement import make_policy

POLICY_NAMES = ["clock", "2q", "lru", "fifo"]

keys = st.integers(min_value=0, max_value=40)
ops = st.lists(
    st.tuples(st.sampled_from(["ref", "discard"]), keys), min_size=1, max_size=300
)
capacities = st.integers(min_value=1, max_value=12)


@given(st.sampled_from(POLICY_NAMES), capacities, ops)
@settings(max_examples=60)
def test_capacity_never_exceeded(name, capacity, trace):
    policy = make_policy(name, capacity)
    for op, key in trace:
        if op == "ref":
            policy.reference(key)
        else:
            policy.discard(key)
        assert len(policy) <= capacity


@given(st.sampled_from(POLICY_NAMES), capacities, ops)
@settings(max_examples=60)
def test_contains_agrees_with_resident_keys(name, capacity, trace):
    policy = make_policy(name, capacity)
    for op, key in trace:
        if op == "ref":
            policy.reference(key)
        else:
            policy.discard(key)
    resident = set(policy.resident_keys())
    assert len(resident) == len(policy)
    for key in range(41):
        assert policy.contains(key) == (key in resident)


@given(st.sampled_from(POLICY_NAMES), capacities, ops)
@settings(max_examples=60)
def test_reference_result_is_consistent(name, capacity, trace):
    policy = make_policy(name, capacity)
    for op, key in trace:
        if op == "discard":
            policy.discard(key)
            continue
        was_resident = policy.contains(key)
        result = policy.reference(key)
        assert result.resident_before == was_resident
        assert result.admitted == policy.contains(key)
        for victim in result.evicted:
            assert not policy.contains(victim) or victim == key


@given(st.sampled_from(POLICY_NAMES), capacities, ops)
@settings(max_examples=60)
def test_evicted_keys_were_resident(name, capacity, trace):
    policy = make_policy(name, capacity)
    resident: set = set()
    for op, key in trace:
        if op == "discard":
            if policy.discard(key):
                resident.discard(key)
            continue
        result = policy.reference(key)
        for victim in result.evicted:
            assert victim in resident
            resident.discard(victim)
        if result.admitted:
            resident.add(key)
    assert resident == set(policy.resident_keys())


@given(capacities, st.lists(keys, min_size=1, max_size=300))
@settings(max_examples=60)
def test_lru_matches_reference_model(capacity, trace):
    policy = make_policy("lru", capacity)
    model: OrderedDict = OrderedDict()
    for key in trace:
        result = policy.reference(key)
        if key in model:
            assert result.resident_before
            model.move_to_end(key)
        else:
            assert not result.resident_before
            if len(model) >= capacity:
                victim, _ = model.popitem(last=False)
                assert result.evicted == (victim,)
            model[key] = None
        assert list(policy.resident_keys()) == list(model)


@given(capacities, st.lists(keys, min_size=1, max_size=300))
@settings(max_examples=60)
def test_fifo_matches_reference_model(capacity, trace):
    policy = make_policy("fifo", capacity)
    queue: list = []
    for key in trace:
        result = policy.reference(key)
        if key in queue:
            assert result.resident_before
            assert result.evicted == ()
        else:
            if len(queue) >= capacity:
                assert result.evicted == (queue[0],)
                queue.pop(0)
            queue.append(key)
        assert set(policy.resident_keys()) == set(queue)


@given(capacities, st.lists(keys, min_size=1, max_size=200))
@settings(max_examples=60)
def test_2q_admission_requires_two_sightings(capacity, trace):
    policy = make_policy("2q", capacity)
    ever_seen: set = set()
    for key in trace:
        result = policy.reference(key)
        if key not in ever_seen:
            # A first-ever sighting can never be admitted directly.
            assert not result.admitted
        ever_seen.add(key)
