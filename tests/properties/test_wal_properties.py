"""Property-based test: crash recovery reproduces the database exactly.

Any interleaving of inserts, deletes, and updates, when replayed from
the write-ahead log into a fresh instance, must yield identical table
contents, identical physical row addressing, and identical index state.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import Column, Database, INTEGER, TEXT, WriteAheadLog, recover

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 50),
            st.text(alphabet="abcde", min_size=0, max_size=12),
        ),
        st.tuples(st.just("delete"), st.integers(0, 30), st.just("")),
        st.tuples(
            st.just("update"),
            st.integers(0, 30),
            st.text(alphabet="xyz", min_size=0, max_size=12),
        ),
    ),
    min_size=1,
    max_size=80,
)


@given(ops)
@settings(max_examples=40, deadline=None)
def test_recovery_reproduces_arbitrary_histories(trace):
    wal = WriteAheadLog()
    db = Database(wal=wal)
    db.create_relation(
        "t", [Column("k", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_k", "t", ["k"])
    live: list = []
    for op, arg, text in trace:
        if op == "insert":
            live.append(db.insert("t", (arg, text)))
        elif op == "delete" and live:
            victim = live.pop(arg % len(live))
            db.delete("t", victim)
        elif op == "update" and live:
            target = live[arg % len(live)]
            _, _, new_id = db.update("t", target, v=text)
            live[live.index(target)] = new_id

    recovered = recover(wal)
    original = {rid: row.values for rid, row in db.catalog.relation("t").scan()}
    replayed = {rid: row.values for rid, row in recovered.catalog.relation("t").scan()}
    assert replayed == original
    # Index state matches: same keys, same posting sizes.
    orig_index = db.catalog.index("t_k")
    rec_index = recovered.catalog.index("t_k")
    assert rec_index.entry_count == orig_index.entry_count
    for key in set(row.values[0] for row in db.catalog.relation("t").scan_rows()):
        assert sorted(rec_index.probe(key)) == sorted(orig_index.probe(key))


@given(ops, st.integers(0, 79))
@settings(max_examples=30, deadline=None)
def test_checkpoint_recovery_from_any_point(trace, cut):
    """Snapshot mid-history, keep writing, recover from the snapshot +
    log tail: the result must equal the live database, wherever the
    checkpoint fell."""
    from repro.engine.snapshot import checkpoint, recover_from_snapshot

    wal = WriteAheadLog()
    db = Database(wal=wal)
    db.create_relation(
        "t", [Column("k", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_k", "t", ["k"])
    live: list = []
    snap = None
    for step, (op, arg, text) in enumerate(trace):
        if step == cut % max(len(trace), 1):
            snap = checkpoint(db)
        if op == "insert":
            live.append(db.insert("t", (arg, text)))
        elif op == "delete" and live:
            db.delete("t", live.pop(arg % len(live)))
        elif op == "update" and live:
            target = live[arg % len(live)]
            _, _, new_id = db.update("t", target, v=text)
            live[live.index(target)] = new_id
    if snap is None:
        snap = checkpoint(db)
    recovered = recover_from_snapshot(snap, wal)
    original = {rid: row.values for rid, row in db.catalog.relation("t").scan()}
    replayed = {rid: row.values for rid, row in recovered.catalog.relation("t").scan()}
    assert replayed == original
