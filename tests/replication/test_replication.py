"""Unit tests for WAL-shipping replication: the wire format, the lossy
link, epoch fencing, bounded-staleness serving, snapshot bootstrap, and
the failover coordinator."""

import json

import pytest

from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
    WriteAheadLog,
)
from repro.engine.snapshot import checkpoint, snapshot_to_json
from repro.errors import (
    ReplicaLagError,
    ReplicationError,
    SnapshotCorruptionError,
    StaleEpochError,
    WALChecksumError,
    WALFencedError,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultMode, FaultPlan, FaultSpec
from repro.core.manager import PMVManager
from repro.qos import ServingGate
from repro.replication import (
    FailoverCoordinator,
    PrimaryNode,
    ReplicaNode,
    ReplicationLink,
    SHIP_SITE,
    ShippedRecord,
)


def build_primary(epoch: int = 1) -> PrimaryNode:
    db = Database(wal=WriteAheadLog())
    db.create_relation(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_id", "t", ["id"])
    return PrimaryNode(db, epoch=epoch)


def contents(db: Database, name: str = "t"):
    return sorted(tuple(r.values) for r in db.catalog.relation(name).scan_rows())


def physical(db: Database, name: str = "t"):
    return {rid: row.values for rid, row in db.catalog.relation(name).scan()}


def ship_plan(*specs) -> FaultInjector:
    return FaultInjector(
        FaultPlan([FaultSpec(SHIP_SITE, occ, mode) for occ, mode in specs])
    )


class TestWireFormat:
    def test_roundtrip(self):
        msg = ShippedRecord(epoch=3, watermark=17, line='{"x":1}')
        assert ShippedRecord.from_wire(msg.to_wire()) == msg

    def test_malformed_wire_rejected(self):
        with pytest.raises(ReplicationError):
            ShippedRecord.from_wire("not json")
        with pytest.raises(ReplicationError):
            ShippedRecord.from_wire('{"epoch": 1}')  # missing fields

    def test_tampered_record_fails_checksum_on_decode(self):
        primary = build_primary()
        primary.database.insert("t", (1, "a"))
        line = primary.database.wal.records(after_lsn=2).__next__().to_json()
        data = json.loads(line)
        data["payload"]["values"] = [999, "tampered"]
        msg = ShippedRecord(epoch=1, watermark=3, line=json.dumps(data))
        with pytest.raises(WALChecksumError):
            msg.decode()


class TestShipping:
    def test_ship_converges_and_lsns_align(self):
        primary = build_primary()
        replica = ReplicaNode()
        primary.attach_replica(replica)
        for i in range(10):
            primary.database.insert("t", (i, f"v{i}"))
        primary.ship()
        assert contents(replica.database) == contents(primary.database)
        assert physical(replica.database) == physical(primary.database)
        # The replica's local log is a verbatim continuation: same LSNs.
        assert replica.applied_lsn == primary.database.wal.last_lsn
        assert replica.database.wal.last_lsn == primary.database.wal.last_lsn
        assert primary.acked_lsn == primary.database.wal.last_lsn
        assert replica.lag == 0

    def test_checkpoint_marker_keeps_lsns_aligned(self):
        primary = build_primary()
        replica = ReplicaNode()
        primary.attach_replica(replica)
        primary.database.insert("t", (1, "a"))
        checkpoint(primary.database)
        primary.database.insert("t", (2, "b"))
        primary.ship()
        assert replica.applied_lsn == primary.database.wal.last_lsn
        assert contents(replica.database) == contents(primary.database)

    def test_drop_is_retransmitted_on_next_pump(self):
        primary = build_primary()
        replica = ReplicaNode()
        link = primary.attach_replica(replica, injector=ship_plan((4, FaultMode.DROP)))
        primary.database.insert("t", (1, "a"))
        primary.database.insert("t", (2, "b"))
        primary.ship()  # occurrence 4 (2 DDL + 2 inserts) is dropped
        assert link.dropped == 1
        assert replica.applied_lsn == primary.database.wal.last_lsn - 1
        primary.ship()  # re-ships from the acked watermark
        assert contents(replica.database) == contents(primary.database)
        assert replica.applied_lsn == primary.database.wal.last_lsn

    def test_duplicate_delivery_ignored(self):
        primary = build_primary()
        replica = ReplicaNode()
        link = primary.attach_replica(
            replica, injector=ship_plan((3, FaultMode.DUPLICATE))
        )
        primary.database.insert("t", (1, "a"))
        primary.ship()
        assert link.duplicated == 1
        assert replica.duplicates_ignored == 1
        assert contents(replica.database) == [(1, "a")]

    def test_reorder_buffered_until_gap_fills(self):
        primary = build_primary()
        replica = ReplicaNode()
        link = primary.attach_replica(
            replica, injector=ship_plan((1, FaultMode.REORDER))
        )
        primary.database.insert("t", (1, "a"))
        primary.ship()  # first send held back, rides behind the second
        assert link.reordered == 1
        assert contents(replica.database) == contents(primary.database)
        assert replica.applied_lsn == primary.database.wal.last_lsn
        assert not replica.pending

    def test_partition_heals_and_converges(self):
        primary = build_primary()
        replica = ReplicaNode()
        link = primary.attach_replica(
            replica, injector=ship_plan((2, FaultMode.PARTITION))
        )
        primary.database.insert("t", (1, "a"))
        primary.ship()  # second send partitions the link
        assert link.partitioned
        behind = replica.applied_lsn
        primary.database.insert("t", (2, "b"))
        assert primary.ship() == 0  # nothing flows on a down link
        assert replica.applied_lsn == behind
        link.heal()
        primary.ship()
        assert contents(replica.database) == contents(primary.database)
        assert replica.applied_lsn == primary.database.wal.last_lsn


class TestEpochFencing:
    def test_fenced_wal_refuses_appends(self):
        primary = build_primary()
        row_id = primary.database.insert("t", (1, "a"))
        primary.database.wal.fence(2)
        with pytest.raises(WALFencedError):
            primary.database.insert("t", (2, "b"))
        with pytest.raises(WALFencedError):
            primary.database.delete("t", row_id)
        with pytest.raises(WALFencedError):
            primary.database.update("t", row_id, v="c")
        # Fenced reads are still fine: the zombie is read-only, not dead.
        assert contents(primary.database) == [(1, "a")]

    def test_stale_epoch_ship_rejected_and_counted(self):
        primary = build_primary(epoch=1)
        replica = ReplicaNode()
        link = primary.attach_replica(replica)
        primary.database.insert("t", (1, "a"))
        primary.ship()
        replica.observe_epoch(2)  # a newer primary was promoted elsewhere
        record = list(primary.database.wal.records())[-1]
        msg = ShippedRecord(
            epoch=1, watermark=primary.database.wal.last_lsn, line=record.to_json()
        )
        with pytest.raises(StaleEpochError):
            replica.receive(msg.to_wire())
        link.send(msg.to_wire())  # the link swallows it into a counter
        assert link.stale_epoch_rejects == 1

    def test_newer_epoch_adopted(self):
        replica = ReplicaNode()
        assert replica.epoch == 0
        replica.observe_epoch(5)
        replica.observe_epoch(3)
        assert replica.epoch == 5


def build_pmv_primary():
    """An r/s primary with a managed PMV on a joining template."""
    db = Database(wal=WriteAheadLog())
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    db.create_index("r_f", "r", ["f"])
    db.create_index("r_c", "r", ["c"])
    db.create_index("s_d", "s", ["d"])
    db.create_index("s_g", "s", ["g"])
    for i in range(24):
        db.insert("r", (i, i % 6, i % 4, f"a{i}"))
    for j in range(12):
        db.insert("s", (j % 6, j % 3, f"e{j}"))
    template = QueryTemplate(
        name="tq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )
    manager = PMVManager(db)
    manager.create_view(
        template,
        tuples_per_entry=3,
        max_entries=8,
        aux_index_columns=("r.a", "s.e"),
        upper_bound_bytes=4096,
    )
    return PrimaryNode(db, manager=manager), template


def bind(template, f, g):
    return template.bind(
        [EqualityDisjunction("r.f", [f]), EqualityDisjunction("s.g", [g])]
    )


class TestWarmStandbyServing:
    def test_mirrored_views_give_identical_answers(self):
        primary, template = build_pmv_primary()
        replica = ReplicaNode()
        primary.attach_replica(replica)
        primary.ship()
        replica.mirror_views(primary.manager)
        query = bind(template, 1, 2)
        want = sorted(
            tuple(r.values) for r in primary.manager.execute(query).all_rows()
        )
        got = replica.serve(query)
        assert sorted(tuple(r.values) for r in got.all_rows()) == want
        assert got.complete

    def test_lagged_answer_flagged_not_passed_off_as_current(self):
        primary, template = build_pmv_primary()
        replica = ReplicaNode()
        primary.attach_replica(replica)
        primary.ship()
        replica.mirror_views(primary.manager)
        primary.database.insert("r", (100, 1, 1, "new"))  # not shipped yet
        replica.note_watermark(primary.database.wal.last_lsn)
        assert replica.lag == 1
        result = replica.serve(bind(template, 1, 2), staleness_bound=3)
        assert result.complete is False
        assert result.degraded_reason == "replica_lag"

    def test_read_beyond_staleness_bound_refused(self):
        primary, template = build_pmv_primary()
        replica = ReplicaNode()
        primary.attach_replica(replica)
        primary.ship()
        replica.mirror_views(primary.manager)
        for i in range(5):
            primary.database.insert("r", (200 + i, 1, 1, "x"))
        replica.note_watermark(primary.database.wal.last_lsn)
        with pytest.raises(ReplicaLagError) as excinfo:
            replica.serve(bind(template, 1, 2), staleness_bound=2)
        assert excinfo.value.lag == 5
        assert excinfo.value.bound == 2

    def test_applied_deltas_keep_standby_cache_warm(self):
        primary, template = build_pmv_primary()
        replica = ReplicaNode()
        primary.attach_replica(replica)
        primary.ship()
        replica.mirror_views(primary.manager)
        query = bind(template, 1, 2)
        replica.serve(query)  # faults the entry in
        warm = replica.serve(query)
        assert warm.had_partial_results
        # A shipped delta maintains the mirrored view, not just the heap.
        primary.database.insert("r", (300, 2, 1, "a300"))
        primary.ship()
        after = replica.serve(query)
        want = sorted(
            tuple(r.values) for r in primary.manager.execute(query).all_rows()
        )
        assert sorted(tuple(r.values) for r in after.all_rows()) == want


class TestSnapshotBootstrap:
    def test_join_at_checkpoint_then_catch_up(self):
        primary = build_primary()
        for i in range(8):
            primary.database.insert("t", (i, f"v{i}"))
        snap = checkpoint(primary.database)
        primary.database.insert("t", (100, "tail"))
        replica = ReplicaNode.from_snapshot(snapshot_to_json(snap), name="boot")
        assert replica.applied_lsn == snap["checkpoint_lsn"]
        primary.attach_replica(replica)
        primary.ship()  # only the post-checkpoint tail is shipped
        assert contents(replica.database) == contents(primary.database)
        assert physical(replica.database) == physical(primary.database)
        assert replica.applied_lsn == primary.database.wal.last_lsn

    def test_corrupt_snapshot_refused(self):
        primary = build_primary()
        primary.database.insert("t", (1, "a"))
        text = snapshot_to_json(checkpoint(primary.database))
        tampered = text.replace('"v0"', '"vX"', 1).replace('"a"', '"b"', 1)
        with pytest.raises(SnapshotCorruptionError):
            ReplicaNode.from_snapshot(tampered)

    def test_bootstrapped_heap_places_future_rows_like_the_primary(self):
        """Regression: a restored heap must keep the open-page set in
        sync with the open-page list, or the first delete after restore
        re-appends an already-open page and later physically-addressed
        records land on the wrong rows."""
        wal = WriteAheadLog()
        db = Database(wal=wal, page_size=256, buffer_pool_pages=8)
        db.create_relation(
            "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
        )
        ids = [db.insert("t", (i, "x" * 24)) for i in range(20)]
        primary = PrimaryNode(db)
        snap = checkpoint(db)
        replica = ReplicaNode.from_snapshot(
            snapshot_to_json(snap), buffer_pool_pages=8
        )
        primary.attach_replica(replica)
        # Delete from an early (closed) page and from the current open
        # page, then insert: page choice must match the primary's.
        db.delete("t", ids[0])
        db.delete("t", ids[-1])
        db.insert("t", (777, "y" * 24))
        db.update("t", ids[3], v="z" * 24)
        primary.ship()
        assert physical(replica.database) == physical(db)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def build_cluster():
    primary = build_primary()
    fast = ReplicaNode(name="fast")
    slow = ReplicaNode(name="slow")
    fast_link = primary.attach_replica(fast)
    slow_link = primary.attach_replica(slow)
    clock = FakeClock()
    coordinator = FailoverCoordinator(
        primary,
        [fast, slow],
        heartbeat_interval=1.0,
        missed_heartbeats=3,
        clock=clock,
    )
    return primary, fast, slow, fast_link, slow_link, clock, coordinator


class TestFailoverCoordinator:
    def test_needs_replicas(self):
        primary = build_primary()
        with pytest.raises(ReplicationError):
            FailoverCoordinator(primary, [])

    def test_heartbeats_keep_primary_alive(self):
        primary, *_, clock, coordinator = build_cluster()
        clock.now = 2.5
        primary.heartbeat(coordinator)
        clock.now = 4.0
        assert not coordinator.primary_suspected()
        assert coordinator.tick() is None

    def test_silence_promotes_most_caught_up_replica(self):
        primary, fast, slow, fast_link, slow_link, clock, coordinator = (
            build_cluster()
        )
        primary.database.insert("t", (1, "a"))
        primary.ship()
        slow_link.partitioned = True  # slow stops hearing anything
        primary.database.insert("t", (2, "b"))
        primary.ship()
        assert fast.applied_lsn > slow.applied_lsn
        clock.now = 10.0
        new_primary = coordinator.tick()
        assert new_primary is not None
        assert new_primary.name == "fast"
        assert new_primary.epoch == 2
        assert coordinator.primary is new_primary
        assert fast.promoted
        # Every acknowledged write survived: the winner holds them all.
        assert new_primary.database.wal.last_lsn >= primary.acked_lsn
        assert contents(new_primary.database) == contents(primary.database)

    def test_old_primary_is_fenced(self):
        primary, *_, clock, coordinator = build_cluster()
        clock.now = 10.0
        coordinator.tick()
        assert primary.database.wal.fenced_by_epoch == 2
        with pytest.raises(WALFencedError):
            primary.database.insert("t", (9, "zombie"))

    def test_survivors_rechain_to_new_primary(self):
        primary, fast, slow, fast_link, slow_link, clock, coordinator = (
            build_cluster()
        )
        primary.database.insert("t", (1, "a"))
        primary.ship()
        clock.now = 10.0
        new_primary = coordinator.tick()
        survivor = coordinator.replicas
        assert len(survivor) == 1
        # Era-2 writes flow through the new chain end to end.
        new_primary.database.insert("t", (2, "era2"))
        new_primary.ship()
        assert contents(survivor[0].database) == contents(new_primary.database)
        assert survivor[0].epoch == 2
        assert coordinator.epoch_history == [1, 2]

    def test_gate_rebinds_to_promoted_fleet(self):
        primary, template = build_pmv_primary()
        replica = ReplicaNode(name="standby")
        primary.attach_replica(replica)
        primary.ship()
        replica.mirror_views(primary.manager)
        clock = FakeClock()
        gate = ServingGate(primary.manager, clock=clock)
        coordinator = FailoverCoordinator(
            primary, [replica], gate=gate, clock=clock
        )
        clock.now = 10.0
        new_primary = coordinator.tick()
        assert gate.manager is new_primary.manager
        result = gate.execute(bind(template, 1, 2))
        want = sorted(
            tuple(r.values)
            for r in new_primary.manager.execute(bind(template, 1, 2)).all_rows()
        )
        assert sorted(tuple(r.values) for r in result.all_rows()) == want

    def test_double_promotion_refused(self):
        replica = ReplicaNode()
        replica.promote(2)
        with pytest.raises(ReplicationError):
            replica.promote(2)


class TestLinkConstruction:
    def test_replica_needs_a_wal(self):
        with pytest.raises(ReplicationError):
            ReplicaNode(database=Database())

    def test_primary_needs_a_wal(self):
        with pytest.raises(ReplicationError):
            PrimaryNode(Database())

    def test_link_stats_shape(self):
        primary = build_primary()
        replica = ReplicaNode()
        link = primary.attach_replica(replica)
        primary.database.insert("t", (1, "a"))
        primary.ship()
        stats = link.stats()
        assert stats["delivered"] == 3
        assert stats["acked_lsn"] == primary.database.wal.last_lsn
        report = primary.stats()
        assert report["acked_lsn"] == primary.database.wal.last_lsn
        assert primary.lag_report() == {"replica": 0}
