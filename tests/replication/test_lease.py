"""Lease-gated promotion, suspicion hysteresis, and ISOLATED mode.

The partition story in unit-sized pieces: the coordinator refuses to
promote while the old lease could still be honoured (and while the
best candidate's watermark trails the acked LSN); the primary
self-isolates when its lease expires; the control link models the
directed coordinator↔primary channel the nemesis cuts.
"""

import pytest

from repro.engine import Column, Database, INTEGER, TEXT, WriteAheadLog
from repro.errors import NodeIsolatedError, ReplicationError
from repro.replication import (
    ControlLink,
    FailoverCoordinator,
    Lease,
    PrimaryNode,
    ReplicaNode,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def build_primary(clock, epoch: int = 1) -> PrimaryNode:
    db = Database(wal=WriteAheadLog())
    db.create_relation(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_id", "t", ["id"])
    return PrimaryNode(db, epoch=epoch, clock=clock)


def build_cluster(lease_ttl=4.0, **kwargs):
    clock = FakeClock()
    primary = build_primary(clock)
    replicas = [ReplicaNode(name="fast"), ReplicaNode(name="slow")]
    for replica in replicas:
        primary.attach_replica(replica)
    coordinator = FailoverCoordinator(
        primary,
        replicas,
        heartbeat_interval=1.0,
        lease_ttl=lease_ttl,
        clock=clock,
        **kwargs,
    )
    return clock, primary, replicas, coordinator


class TestLease:
    def test_validity_window(self):
        lease = Lease(epoch=1, granted_at=0.0, expires_at=4.0)
        assert lease.valid_at(0.0)
        assert lease.valid_at(3.999)
        assert not lease.valid_at(4.0)

    def test_heartbeat_renews_lease(self):
        clock, primary, _, coordinator = build_cluster()
        first = primary.lease
        clock.now = 2.0
        primary.heartbeat(coordinator)
        assert primary.lease.expires_at == pytest.approx(6.0)
        assert primary.lease.expires_at > first.expires_at

    def test_lease_ttl_none_is_legacy_mode(self):
        clock, primary, _, coordinator = build_cluster(lease_ttl=None)
        assert primary.lease is None
        primary.heartbeat(coordinator)
        assert primary.lease is None  # nothing comes back, nothing adopted
        assert not primary.is_isolated()
        assert primary.mode == "ACTIVE"


class TestSuspicionHysteresis:
    def test_threshold_validated(self):
        clock = FakeClock()
        primary = build_primary(clock)
        replica = ReplicaNode(name="r")
        primary.attach_replica(replica)
        with pytest.raises(ReplicationError):
            FailoverCoordinator(
                primary, [replica], suspicion_threshold=0, clock=clock
            )

    def test_default_threshold_is_missed_heartbeats(self):
        _, _, _, coordinator = build_cluster(missed_heartbeats=5)
        assert coordinator.suspicion_threshold == 5

    def test_single_late_heartbeat_does_not_suspect(self):
        clock, primary, _, coordinator = build_cluster(suspicion_threshold=3)
        clock.now = 2.5  # two whole intervals late
        primary.heartbeat(coordinator)
        clock.now = 3.0
        assert not coordinator.primary_suspected()
        assert coordinator.misses == 2

    def test_chronic_lateness_accumulates_debt(self):
        clock, primary, _, coordinator = build_cluster(
            suspicion_threshold=3, hysteresis=0
        )
        # Repeatedly 2 intervals late: each arrival banks 2 debt, pays
        # back nothing (hysteresis=0) — the third gap crosses 3.
        clock.now = 2.0
        primary.heartbeat(coordinator)
        assert not coordinator.primary_suspected()
        clock.now = 4.0
        assert coordinator.primary_suspected()
        assert coordinator.suspicions == 1

    def test_hysteresis_pays_debt_back(self):
        clock, primary, _, coordinator = build_cluster(
            suspicion_threshold=3, hysteresis=1
        )
        clock.now = 2.0
        primary.heartbeat(coordinator)  # banks 2, pays 1 -> debt 1
        for i in range(10):  # on-time heartbeats drain the debt
            clock.now += 0.5
            primary.heartbeat(coordinator)
        clock.now += 1.5
        assert not coordinator.primary_suspected()

    def test_suspicions_counted_once_per_episode(self):
        clock, primary, _, coordinator = build_cluster()
        clock.now = 10.0
        assert coordinator.primary_suspected()
        assert coordinator.primary_suspected()
        assert coordinator.suspicions == 1
        stats = coordinator.stats()
        assert stats["suspicions"] == 1
        assert stats["misses"] == 10


class TestLeaseGatedPromotion:
    def test_promotion_refused_while_lease_valid(self):
        clock, primary, _, coordinator = build_cluster()
        # Silence long enough to suspect, but inside the lease TTL.
        clock.now = 3.5
        assert coordinator.tick() is None
        assert coordinator.promotions_refused_lease == 1
        assert "lease valid" in coordinator.last_refusal
        assert coordinator.primary is primary

    def test_promotion_allowed_after_lease_expiry(self):
        clock, primary, replicas, coordinator = build_cluster()
        clock.now = 4.5  # past the 4.0 lease expiry *and* the threshold
        promoted = coordinator.tick()
        assert promoted is not None
        assert promoted.epoch == 2
        assert promoted.lease is not None  # the new primary is leased
        assert promoted.lease.epoch == 2

    def test_watermark_gate_refuses_lagging_candidate(self):
        clock, primary, replicas, coordinator = build_cluster()
        primary.database.insert("t", (1, "a"))
        primary.ship()
        primary.heartbeat(coordinator)  # records acked_lsn
        for link in primary.links:
            link.partitioned = True
        primary.database.insert("t", (2, "b"))
        # Fake a higher recorded watermark than any replica applied.
        coordinator._recorded_acked_lsn = primary.database.wal.last_lsn
        clock.now = 10.0
        assert coordinator.tick() is None
        assert coordinator.promotions_refused_watermark == 1
        assert "acked watermark" in coordinator.last_refusal

    def test_no_standby_left_refused_not_crash(self):
        clock, primary, replicas, coordinator = build_cluster()
        clock.now = 10.0
        first = coordinator.tick()
        assert first is not None
        clock.now = 20.0
        second = coordinator.tick()
        assert second is not None
        clock.now = 30.0
        assert coordinator.tick() is None  # nobody left: refuse, don't die
        assert coordinator.last_refusal == "no standby left to promote"

    def test_fence_skipped_when_primary_unreachable(self):
        clock, primary, _, coordinator = build_cluster()
        coordinator.primary_reachable = lambda: False
        clock.now = 10.0
        promoted = coordinator.tick()
        assert promoted is not None
        assert coordinator.fences_skipped == 1
        assert primary.database.wal.fenced_by_epoch is None  # never reached

    def test_deposed_primary_heartbeat_refused(self):
        clock, primary, _, coordinator = build_cluster()
        clock.now = 10.0
        coordinator.tick()
        lease = coordinator.heartbeat_from(primary)  # the zombie calls home
        assert lease is None
        assert coordinator.stale_heartbeats == 1


class TestIsolatedMode:
    def test_expired_lease_isolates(self):
        clock, primary, _, coordinator = build_cluster()
        assert primary.mode == "ACTIVE"
        clock.now = 4.5
        assert primary.is_isolated()
        assert primary.mode == "ISOLATED"
        with pytest.raises(NodeIsolatedError):
            primary.check_serving()
        assert primary.isolated_refusals == 1

    def test_renewal_reactivates(self):
        clock, primary, _, coordinator = build_cluster()
        clock.now = 4.5
        assert primary.is_isolated()
        primary.heartbeat(coordinator)  # the partition healed
        assert not primary.is_isolated()
        primary.check_serving()  # no raise

    def test_stats_surface_mode(self):
        clock, primary, _, coordinator = build_cluster()
        assert primary.stats()["mode"] == "ACTIVE"
        clock.now = 4.5
        stats = coordinator.stats()
        assert stats["primary_mode"] == "ISOLATED"


class TestControlLink:
    def test_pump_round_trip(self):
        clock, primary, _, coordinator = build_cluster()
        link = ControlLink(coordinator, primary)
        clock.now = 1.0
        lease = link.pump()
        assert lease is not None and lease.expires_at == pytest.approx(5.0)
        assert link.heartbeats_delivered == 1
        assert link.leases_delivered == 1

    def test_cut_up_hides_primary(self):
        clock, primary, _, coordinator = build_cluster()
        link = ControlLink(coordinator, primary)
        link.cut("up")
        clock.now = 1.0
        assert link.pump() is None
        assert link.heartbeats_lost == 1
        # The coordinator saw nothing; the primary's lease still ages out.
        clock.now = 4.5
        assert primary.is_isolated()

    def test_cut_down_starves_lease_but_informs_coordinator(self):
        clock, primary, _, coordinator = build_cluster()
        link = ControlLink(coordinator, primary)
        link.cut("down")
        for now in (1.0, 2.0, 3.0, 4.0):
            clock.now = now
            assert link.pump() is None
        assert link.heartbeats_delivered == 4
        assert link.leases_lost == 4
        clock.now = 4.5
        # The primary never learned of renewals: it self-isolates even
        # though the coordinator still believes it alive.
        assert primary.is_isolated()
        assert not coordinator.primary_suspected()

    def test_rebind_follows_promotion(self):
        clock, primary, _, coordinator = build_cluster()
        link = ControlLink(coordinator, primary)
        link.cut()
        clock.now = 10.0
        promoted = coordinator.tick()
        link.rebind(promoted)
        assert link.primary is promoted
        assert link.connected
        clock.now = 11.0
        assert link.pump() is not None


class TestGateBinding:
    def test_bind_gate_installs_serving_check(self):
        clock, primary, _, coordinator = build_cluster()
        stub_gate = type("G", (), {"serving_check": None, "governor": None})()
        primary.bind_gate(stub_gate)
        assert stub_gate.serving_check == primary.check_serving
        clock.now = 4.5
        with pytest.raises(NodeIsolatedError):
            stub_gate.serving_check()
