"""The partition nemesis plan: determinism, replay handles, quiesce."""

import pytest

from repro.faults.partition import (
    Nemesis,
    PARTITION_LINKS,
    PartitionEvent,
    PartitionPlan,
)


class TestPartitionEvent:
    def test_describe_parse_roundtrip(self):
        event = PartitionEvent(12, "cut", "coord-primary", "up")
        assert PartitionEvent.parse(event.describe()) == event

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionEvent(-1, "cut", "coord-primary")
        with pytest.raises(ValueError):
            PartitionEvent(0, "sever", "coord-primary")
        with pytest.raises(ValueError):
            PartitionEvent(0, "cut", "nonsense-link")
        with pytest.raises(ValueError):
            PartitionEvent(0, "cut", "coord-primary", "sideways")


class TestPartitionPlan:
    def test_same_seed_same_plan(self):
        a = PartitionPlan.generate(7, 80)
        b = PartitionPlan.generate(7, 80)
        assert a.describe() == b.describe()

    def test_different_seeds_differ(self):
        assert PartitionPlan.generate(0, 80).describe() != (
            PartitionPlan.generate(1, 80).describe()
        )

    def test_describe_parse_roundtrip(self):
        plan = PartitionPlan.generate(3, 80)
        replayed = PartitionPlan.parse(plan.describe())
        assert replayed.describe() == plan.describe()
        assert list(replayed) == list(plan)

    def test_empty_plan_roundtrip(self):
        assert PartitionPlan.parse(PartitionPlan().describe()).describe() == (
            "<no events>"
        )

    def test_quiesce_tail_is_event_free(self):
        for seed in range(5):
            plan = PartitionPlan.generate(seed, 60, quiesce=15)
            assert all(event.step <= 45 for event in plan)
            # Every cut is healed by the horizon: pair the transitions.
            open_cuts = set()
            for event in plan:
                if event.action == "cut":
                    open_cuts.add(event.link)
                else:
                    open_cuts.discard(event.link)
            assert not open_cuts

    def test_steps_must_exceed_quiesce(self):
        with pytest.raises(ValueError):
            PartitionPlan.generate(0, 10, quiesce=10)

    def test_asymmetric_cuts_only_on_control_link(self):
        for seed in range(8):
            for event in PartitionPlan.generate(seed, 120):
                if event.link != "coord-primary":
                    assert event.direction == "both"


class TestNemesis:
    def test_fires_in_step_order_and_once(self):
        plan = PartitionPlan(
            [
                PartitionEvent(2, "cut", "coord-primary", "up"),
                PartitionEvent(5, "heal", "coord-primary"),
                PartitionEvent(3, "cut", "primary-replica"),
            ]
        )
        calls = []
        nemesis = Nemesis(plan)
        nemesis.register(
            "coord-primary",
            lambda d: calls.append(("cut", "cp", d)),
            lambda d: calls.append(("heal", "cp", d)),
        )
        nemesis.register(
            "primary-replica",
            lambda d: calls.append(("cut", "pr", d)),
            lambda d: calls.append(("heal", "pr", d)),
        )
        assert [e.step for e in nemesis.advance_to(3)] == [2, 3]
        assert calls == [("cut", "cp", "up"), ("cut", "pr", "both")]
        nemesis.advance_to(3)  # idempotent: nothing re-fires
        assert len(calls) == 2
        nemesis.advance_to(99)
        assert calls[-1] == ("heal", "cp", "both")
        assert nemesis.stats()["fired"] == 3

    def test_unregistered_link_is_noop(self):
        plan = PartitionPlan([PartitionEvent(0, "cut", "client-server")])
        nemesis = Nemesis(plan)
        nemesis.advance_to(0)  # no registration, no crash
        assert nemesis.fired == []

    def test_unknown_link_registration_rejected(self):
        nemesis = Nemesis(PartitionPlan())
        with pytest.raises(ValueError):
            nemesis.register("carrier-pigeon", lambda d: None, lambda d: None)

    def test_heal_all(self):
        healed = []
        nemesis = Nemesis(PartitionPlan())
        for link in PARTITION_LINKS:
            nemesis.register(
                link, lambda d: None, lambda d, link=link: healed.append(link)
            )
        nemesis.heal_all()
        assert sorted(healed) == sorted(PARTITION_LINKS)
