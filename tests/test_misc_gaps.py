"""Coverage for small behaviours not exercised elsewhere."""

import pytest

from repro.bench.reporting import Series, format_table, scale_note
from repro.core import Discretization, PartialMaterializedView
from repro.engine import Column, Database, EqualityDisjunction, INTEGER
from repro.engine.snapshot import restore_snapshot, take_snapshot
from repro.errors import ConditionError
from tests.conftest import eqt_query


class TestReportingFormats:
    def test_fmt_zero_and_extremes(self):
        text = format_table(["a"], [[0.0], [12345.6], [0.0000001], [3.14]])
        assert "0" in text
        assert "1.235e+04" in text
        assert "1.000e-07" in text
        assert "3.14" in text

    def test_scale_note(self):
        assert scale_note("half size") == "[scale] half size"

    def test_series_as_rows(self):
        line = Series("x", [1, 2], [0.5, 0.6])
        assert line.as_rows() == [(1, 0.5), (2, 0.6)]


class TestBindEdgeCases:
    def test_duplicate_condition_columns_rejected(self, eqt):
        with pytest.raises(ConditionError):
            eqt.bind(
                [
                    EqualityDisjunction("r.f", [1]),
                    EqualityDisjunction("r.f", [2]),
                ]
            )


class TestViewIteration:
    def test_entries_returns_copies(self, eqt, eqt_db):
        view = PartialMaterializedView(eqt, Discretization(eqt), 2, 8)
        view.reference((1, 2))
        from repro.core.maintenance import template_result_schema
        from repro.engine.row import Row

        schema = template_result_schema(eqt, eqt_db)
        view.add_tuple((1, 2), Row(("a", "e", 1, 2), schema))
        for _, rows in view.entries():
            rows.clear()
        assert view.tuple_count((1, 2)) == 1


class TestSnapshotUnderPressure:
    def test_snapshot_correct_with_tiny_buffer_pool(self):
        """Dirty pages evicted and re-fetched through a 2-page pool must
        still snapshot exactly."""
        db = Database(buffer_pool_pages=2, page_size=512)
        db.create_relation("t", [Column("k", INTEGER), Column("pad", INTEGER)])
        ids = [db.insert("t", (i, i * 7)) for i in range(300)]
        for victim in ids[::17]:
            db.delete("t", victim)
        restored = restore_snapshot(take_snapshot(db), buffer_pool_pages=2)
        original = {rid: r.values for rid, r in db.catalog.relation("t").scan()}
        replayed = {rid: r.values for rid, r in restored.catalog.relation("t").scan()}
        assert replayed == original


class TestExecutorMetricsTiming:
    def test_partial_latency_is_part_of_overhead(self, eqt_db, eqt, eqt_executor):
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        result = eqt_executor.execute(eqt_query(eqt, [1], [2]))
        metrics = result.metrics
        assert 0 < metrics.partial_latency_seconds <= metrics.overhead_seconds
        assert metrics.execution_seconds > 0
