"""Tests for the UB byte-budget bound and force_evict (Section 3.2)."""

import pytest

from repro.core import Discretization, PartialMaterializedView, PMVExecutor, make_policy
from repro.errors import ViewCapacityError
from tests.conftest import eqt_query


class TestForceEvict:
    @pytest.mark.parametrize("name", ["clock", "2q", "lru", "fifo"])
    def test_force_evict_returns_resident_key(self, name):
        policy = make_policy(name, 8)
        for key in range(5):
            policy.reference(key)
            policy.reference(key)  # 2Q needs the second sighting
        victim = policy.force_evict()
        assert victim is not None
        assert not policy.contains(victim)

    @pytest.mark.parametrize("name", ["clock", "2q", "lru", "fifo"])
    def test_force_evict_empty_returns_none(self, name):
        assert make_policy(name, 8).force_evict() is None

    @pytest.mark.parametrize("name", ["clock", "2q", "lru", "fifo"])
    def test_force_evict_drains_everything(self, name):
        policy = make_policy(name, 8)
        for key in range(6):
            policy.reference(key)
            policy.reference(key)
        drained = 0
        while policy.force_evict() is not None:
            drained += 1
        assert drained == 6
        assert len(policy) == 0
        assert list(policy.resident_keys()) == []


class TestViewBudget:
    def test_budget_enforced_after_fills(self, eqt_db, eqt):
        view = PartialMaterializedView(
            eqt,
            Discretization(eqt),
            tuples_per_entry=2,
            max_entries=1000,          # count bound is slack
            upper_bound_bytes=120,     # ~a couple of entries' worth
        )
        executor = PMVExecutor(eqt_db, view)
        for f in range(6):
            for g in range(5):
                executor.execute(eqt_query(eqt, [f], [g]))
        assert view.current_bytes <= 120 or view.entry_count <= 1
        view.check_invariants()
        assert view.metrics.entries_evicted > 0

    def test_large_budget_never_evicts(self, eqt_db, eqt):
        view = PartialMaterializedView(
            eqt,
            Discretization(eqt),
            tuples_per_entry=2,
            max_entries=1000,
            upper_bound_bytes=10_000_000,
        )
        executor = PMVExecutor(eqt_db, view)
        for f in range(4):
            executor.execute(eqt_query(eqt, [f], [0]))
        assert view.metrics.entries_evicted == 0

    def test_queries_stay_correct_under_budget_pressure(self, eqt_db, eqt):
        view = PartialMaterializedView(
            eqt,
            Discretization(eqt),
            tuples_per_entry=2,
            max_entries=1000,
            upper_bound_bytes=100,
        )
        executor = PMVExecutor(eqt_db, view)
        from tests.conftest import brute_force_eqt

        for _ in range(3):
            for f in (1, 2):
                result = executor.execute(eqt_query(eqt, [f], [2]))
                got = sorted(tuple(r.values) for r in result.all_rows())
                assert got == brute_force_eqt(eqt_db, {f}, {2})

    def test_invalid_budget_rejected(self, eqt_db, eqt):
        with pytest.raises(ViewCapacityError):
            PartialMaterializedView(
                eqt, Discretization(eqt), 2, 10, upper_bound_bytes=0
            )
