"""Unit tests for the QoS subsystem: deadlines, admission, breaker,
governor, serving gate, and the deadline-degraded executor paths."""

import itertools
import threading
import time

import pytest

from repro.core import PMVManager
from repro.core.metrics import PMVMetrics, QoSMetrics
from repro.core.view import entries_for_budget
from repro.engine import Database
from repro.errors import LockError, OverloadError, QoSError, ViewCapacityError
from repro.qos import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    DegradationGovernor,
    GovernorConfig,
    QoSState,
    ServingGate,
)
from tests.conftest import eqt_query


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def eqt_manager(eqt_db, eqt):
    manager = PMVManager(eqt_db)
    manager.create_view(
        eqt,
        tuples_per_entry=2,
        max_entries=16,
        aux_index_columns=("r.a", "s.e"),
        upper_bound_bytes=8192,
    )
    return manager


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_budget_accounting(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == 2.0 and not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired() and deadline.remaining() == 0.0

    def test_zero_budget_expires_immediately(self):
        assert Deadline.after(0.0, clock=FakeClock()).expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_tightened_scales_remaining(self):
        clock = FakeClock()
        deadline = Deadline.after(4.0, clock=clock)
        clock.advance(2.0)
        tightened = deadline.tightened(0.5)
        assert tightened.remaining() == pytest.approx(1.0)
        assert deadline.remaining() == pytest.approx(2.0)  # original untouched
        assert deadline.tightened(1.0) is deadline  # factor >= 1 is identity


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_concurrency_limit_and_release(self):
        ac = AdmissionController(max_concurrency=2, max_queue_depth=0)
        s1, s2 = ac.admit(), ac.admit()
        assert ac.running == 2
        with pytest.raises(OverloadError) as info:
            ac.admit()
        assert info.value.reason == "queue_full"
        assert isinstance(info.value, QoSError)
        s1.release()
        s1.release()  # idempotent
        assert ac.running == 1
        with ac.admit():
            assert ac.running == 2
        s2.release()
        assert ac.running == 0

    def test_queue_handoff_to_waiter(self):
        ac = AdmissionController(max_concurrency=1, max_queue_depth=4, queue_timeout=5.0)
        slot = ac.admit()
        admitted = threading.Event()

        def waiter():
            with ac.admit():
                admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        while ac.queue_depth == 0:  # waiter parked
            time.sleep(0.001)
        slot.release()  # hands the slot over instead of freeing it
        assert admitted.wait(5.0)
        thread.join(5.0)
        assert ac.running == 0 and ac.queue_depth == 0

    def test_queue_timeout_sheds(self):
        ac = AdmissionController(max_concurrency=1, max_queue_depth=4)
        slot = ac.admit()
        with pytest.raises(OverloadError) as info:
            ac.admit(timeout=0.01)
        assert info.value.reason == "timeout"
        slot.release()

    def test_shedding_mode_bypasses_queue(self):
        ac = AdmissionController(max_concurrency=1, max_queue_depth=8)
        slot = ac.admit()
        ac.set_shedding(True)
        with pytest.raises(OverloadError) as info:
            ac.admit()
        assert info.value.reason == "shedding"
        ac.set_shedding(False)
        slot.release()
        ac.admit().release()  # a free slot admits even while shedding

    def test_token_bucket_rate_limit(self):
        clock = FakeClock()
        ac = AdmissionController(rate=1.0, burst=2.0, clock=clock)
        ac.admit().release()
        ac.admit().release()
        with pytest.raises(OverloadError) as info:
            ac.admit()
        assert info.value.reason == "rate"
        clock.advance(1.0)  # refill one token
        ac.admit().release()

    def test_shed_reasons_metered(self):
        metrics = QoSMetrics()
        ac = AdmissionController(max_concurrency=1, max_queue_depth=0, metrics=metrics)
        slot = ac.admit()
        for _ in range(2):
            with pytest.raises(OverloadError):
                ac.admit()
        slot.release()
        snap = metrics.snapshot()
        assert snap["qos_admitted"] == 1
        assert snap["qos_shed"] == 2
        assert snap["qos_shed_by_reason"] == {"queue_full": 2}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(rate=0.0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()  # success resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow_retries()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow_retries()
        assert breaker.opens == 1

    def test_half_open_probe_and_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow_retries()
        clock.advance(1.5)
        assert breaker.state == "half_open"
        assert breaker.allow_retries()  # the single probe
        assert not breaker.allow_retries()  # second caller is still barred
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow_retries()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow_retries()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 2

    def test_metrics_report_transitions(self):
        metrics = QoSMetrics()
        breaker = CircuitBreaker(failure_threshold=1, metrics=metrics)
        breaker.record_failure()
        assert metrics.snapshot()["breaker_state"] == "open"
        assert metrics.snapshot()["breaker_opens"] == 1
        breaker.reset()
        assert metrics.snapshot()["breaker_state"] == "closed"
        assert metrics.snapshot()["breaker_opens"] == 1  # opens never reset


# ---------------------------------------------------------------------------
# Degradation governor
# ---------------------------------------------------------------------------


def _governor(manager, clock, **overrides) -> DegradationGovernor:
    knobs = dict(
        degrade_p99=0.5,
        shed_p99=2.0,
        degrade_queue=8,
        shed_queue=24,
        recover_ticks=2,
        latency_window=4,
        tick_interval=0.0,
    )
    knobs.update(overrides)
    config = GovernorConfig(**knobs)
    return DegradationGovernor(
        manager, AdmissionController(), config=config,
        metrics=QoSMetrics(), clock=clock,
    )


class TestGovernor:
    def test_elevated_p99_enters_degraded_and_shrinks_ub(self, eqt_manager):
        governor = _governor(eqt_manager, FakeClock())
        view = eqt_manager.managed()[0].view
        maintainer = eqt_manager.managed()[0].maintainer
        assert maintainer.breaker is None
        for _ in range(4):
            governor.observe_latency(1.0)
        assert governor.tick() == QoSState.DEGRADED
        assert view.upper_bound_bytes == 4096  # 8192 * 0.5
        assert maintainer.breaker is governor.breaker
        assert governor.deadline_factor_now() == 0.5

    def test_hysteresis_requires_consecutive_healthy_ticks(self, eqt_manager):
        governor = _governor(eqt_manager, FakeClock())
        for _ in range(4):
            governor.observe_latency(1.0)
        governor.tick()
        for _ in range(4):  # drain the window with healthy latencies
            governor.observe_latency(0.001)
        assert governor.tick() == QoSState.DEGRADED  # healthy x1: holds
        for _ in range(4):
            governor.observe_latency(1.0)
        governor.tick()  # pressure back: streak resets
        for _ in range(4):
            governor.observe_latency(0.001)
        assert governor.tick() == QoSState.DEGRADED
        assert governor.tick() == QoSState.NORMAL  # healthy x2: steps down

    def test_recovery_restores_budgets_and_breaker(self, eqt_manager):
        governor = _governor(eqt_manager, FakeClock())
        view = eqt_manager.managed()[0].view
        maintainer = eqt_manager.managed()[0].maintainer
        for _ in range(4):
            governor.observe_latency(1.0)
        governor.tick()
        governor.breaker.record_failure()  # dirty the breaker while DEGRADED
        for _ in range(4):
            governor.observe_latency(0.001)
        governor.tick()
        governor.tick()
        assert governor.state == QoSState.NORMAL
        assert view.upper_bound_bytes == 8192
        assert maintainer.breaker is None
        assert governor.breaker.state == "closed"
        assert governor.deadline_factor_now() == 1.0

    def test_severe_pressure_escalates_to_shed_and_back(self, eqt_manager):
        governor = _governor(eqt_manager, FakeClock())
        for _ in range(4):
            governor.observe_latency(5.0)  # beyond shed_p99
        assert governor.tick() == QoSState.SHED
        assert governor.admission.stats()["shedding"] is True
        assert governor.transitions[:2] == [
            (QoSState.NORMAL, QoSState.DEGRADED),
            (QoSState.DEGRADED, QoSState.SHED),
        ]
        for _ in range(4):
            governor.observe_latency(0.001)
        governor.tick(), governor.tick()  # SHED -> DEGRADED
        assert governor.state == QoSState.DEGRADED
        assert governor.admission.stats()["shedding"] is False
        governor.tick(), governor.tick()  # DEGRADED -> NORMAL
        assert governor.state == QoSState.NORMAL
        assert governor.metrics.snapshot()["qos_state_transitions"] == 4

    def test_maybe_tick_is_interval_gated(self, eqt_manager):
        clock = FakeClock()
        governor = _governor(eqt_manager, clock, tick_interval=1.0)
        for _ in range(4):
            governor.observe_latency(1.0)
        governor.maybe_tick()  # too soon after construction
        assert governor.state == QoSState.NORMAL
        clock.advance(1.5)
        governor.maybe_tick()
        assert governor.state == QoSState.DEGRADED


# ---------------------------------------------------------------------------
# Serving gate + deadline-degraded execution
# ---------------------------------------------------------------------------


class TestServingGate:
    def test_complete_answer_counted(self, eqt_manager, eqt):
        gate = ServingGate(eqt_manager)
        answer = gate.execute(eqt_query(eqt, [1], [2]))
        assert answer.complete is True
        snap = gate.metrics.snapshot()
        assert snap["qos_admitted"] == 1 and snap["qos_complete_answers"] == 1

    def test_zero_budget_returns_explicit_partial(self, eqt_manager, eqt):
        gate = ServingGate(eqt_manager)
        gate.execute(eqt_query(eqt, [1], [2]))  # warm the PMV
        answer = gate.execute(eqt_query(eqt, [1], [2]), deadline=0.0)
        assert answer.complete is False
        assert answer.degraded_reason == "deadline-skip"
        assert answer.completeness_estimate is not None
        full = sorted(tuple(r.values) for r in eqt_manager.database.run(answer.query))
        got = [tuple(r.values) for r in answer.all_rows()]
        assert all(row in full for row in got)
        snap = gate.metrics.snapshot()
        assert snap["qos_partial_answers"] == 1
        view_snap = eqt_manager.view("Eqt").metrics.snapshot()
        assert view_snap["qos_partial_answers"] == 1

    def test_shed_raises_typed_error(self, eqt_manager, eqt):
        gate = ServingGate(
            eqt_manager,
            admission=AdmissionController(max_concurrency=1, max_queue_depth=0),
        )
        blocker = gate.admission.admit()
        with pytest.raises(OverloadError) as info:
            gate.execute(eqt_query(eqt, [1], [2]))
        assert info.value.reason == "queue_full"
        blocker.release()
        assert gate.metrics.snapshot()["qos_shed"] == 1

    def test_stats_compose_every_layer(self, eqt_manager, eqt):
        gate = ServingGate(eqt_manager)
        gate.execute(eqt_query(eqt, [1], [2]))
        stats = gate.stats()
        assert stats["qos_admitted"] == 1
        assert stats["admission"]["running"] == 0
        assert stats["governor"]["state"] == QoSState.NORMAL
        assert stats["views"]["Eqt"]["queries"] == 1
        assert stats["database_swallowed_errors"] == 0

    def test_on_o3_fires_for_degraded_answers(self, eqt_manager, eqt):
        gate = ServingGate(eqt_manager)
        seen = []
        answer = gate.execute(
            eqt_query(eqt, [1], [2]), deadline=0.0, on_o3=seen.append
        )
        assert answer.complete is False
        assert len(seen) == 1  # the degraded answer has a serialization point


class TestExecutorDeadlines:
    def test_abandon_at_batch_checkpoint(self, eqt_manager, eqt):
        # Clock sequence: creation, post-O2 checkpoint OK, first batch
        # checkpoint expired -> "deadline-abandon" with O2 rows only.
        ticks = itertools.chain([0.0, 0.0], itertools.repeat(10.0))
        deadline = Deadline.after(1.0, clock=lambda: next(ticks))
        eqt_manager.execute(eqt_query(eqt, [1], [2]))  # warm
        answer = eqt_manager.execute(eqt_query(eqt, [1], [2]), deadline=deadline)
        assert answer.complete is False
        assert answer.degraded_reason == "deadline-abandon"
        assert answer.metrics.deadline_degraded is True
        full = sorted(tuple(r.values) for r in eqt_manager.database.run(answer.query))
        got = [tuple(r.values) for r in answer.all_rows()]
        assert all(row in full for row in got)

    def test_no_deadline_is_zero_cost_complete(self, eqt_manager, eqt):
        answer = eqt_manager.execute(eqt_query(eqt, [3], [4]))
        assert answer.complete is True and answer.degraded_reason is None
        assert answer.completeness_estimate is None

    def test_generous_deadline_completes_exactly(self, eqt_manager, eqt):
        answer = eqt_manager.execute(
            eqt_query(eqt, [2], [3]), deadline=Deadline.after(60.0)
        )
        assert answer.complete is True
        from tests.conftest import brute_force_eqt

        assert sorted(tuple(r.values) for r in answer.all_rows()) == brute_force_eqt(
            eqt_manager.database, {2}, {3}
        )


# ---------------------------------------------------------------------------
# Satellites: view re-budgeting, breaker-gated maintenance, swallow audit
# ---------------------------------------------------------------------------


class TestViewRebudget:
    def test_entries_for_budget_strict_vs_degraded(self):
        with pytest.raises(ViewCapacityError):
            entries_for_budget(10, 3, 50)
        assert entries_for_budget(10, 3, 50, strict=False) == 0
        with pytest.raises(ViewCapacityError):
            entries_for_budget(0, 3, 50, strict=False)  # nonsense stays an error

    def test_shrink_below_one_entry_degrades_to_empty_alive(self, eqt_manager, eqt):
        view = eqt_manager.view("Eqt")
        eqt_manager.execute(eqt_query(eqt, [1], [2]))
        eqt_manager.execute(eqt_query(eqt, [1], [2]))
        assert view.entry_count > 0
        view.set_upper_bound(1)  # below any entry: shed everything
        assert view.entry_count == 0 and view.current_bytes == 0
        view.check_invariants()
        # Still alive: queries keep working and refill after restore.
        answer = eqt_manager.execute(eqt_query(eqt, [1], [2]))
        assert answer.complete is True
        view.set_upper_bound(8192)
        eqt_manager.execute(eqt_query(eqt, [1], [2]))
        eqt_manager.execute(eqt_query(eqt, [1], [2]))
        assert view.entry_count > 0

    def test_nonpositive_runtime_bound_clamped(self, eqt_manager):
        view = eqt_manager.view("Eqt")
        view.set_upper_bound(0)
        assert view.upper_bound_bytes == 1
        view.set_upper_bound(None)
        assert view.upper_bound_bytes is None


class TestBreakerGatedMaintenance:
    def test_open_breaker_skips_retries(self, eqt_manager, eqt):
        database = eqt_manager.database
        maintainer = eqt_manager.maintainer("Eqt")
        view = eqt_manager.view("Eqt")
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure()
        maintainer.breaker = breaker
        reader = database.begin()
        reader.lock_shared(view.name)
        retries_before = view.metrics.maintenance_lock_retries
        target = next(iter(database.catalog.relation("r").scan()))[0]
        with pytest.raises(LockError):
            database.delete("r", target)
        # Fast-fail: no parking, no retry backoff.
        assert view.metrics.maintenance_lock_retries == retries_before
        reader.commit()

    def test_half_open_probe_recovers(self, eqt_manager, eqt):
        database = eqt_manager.database
        maintainer = eqt_manager.maintainer("Eqt")
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        maintainer.breaker = breaker
        clock.advance(2.0)  # half-open: the probe goes through the retry path
        target = next(iter(database.catalog.relation("r").scan()))[0]
        database.delete("r", target)  # no reader: probe succeeds
        assert breaker.state == "closed"


class TestSwallowAudit:
    def test_abort_listeners_are_best_effort(self, db):
        calls = []
        db.add_abort_listener(lambda c, t: (_ for _ in ()).throw(ValueError("boom")))
        db.add_abort_listener(lambda c, t: calls.append(True))
        db._notify_abort(None, None)
        assert calls == [True]  # later listeners still ran
        assert db.swallowed_errors == 1

    def test_control_exceptions_resurface_after_cleanup(self, db):
        calls = []
        db.add_abort_listener(
            lambda c, t: (_ for _ in ()).throw(KeyboardInterrupt())
        )
        db.add_abort_listener(lambda c, t: calls.append(True))
        with pytest.raises(KeyboardInterrupt):
            db._notify_abort(None, None)
        assert calls == [True]
        assert db.swallowed_errors == 0  # control exceptions are not swallows

    def test_pmv_metrics_snapshot_has_qos_counters(self):
        snap = PMVMetrics().snapshot()
        assert snap["qos_partial_answers"] == 0
        assert snap["swallowed_errors"] == 0


# ---------------------------------------------------------------------------
# Failover adoption (replication rewiring, DESIGN.md §11)
# ---------------------------------------------------------------------------


class TestFailoverAdoption:
    """The governor/gate side of failover: adopting a promoted fleet
    must restore its configured budgets even mid-DEGRADED — the warm
    standby cache is the point of having one."""

    def _standby_manager(self, eqt_db, eqt):
        standby = PMVManager(eqt_db)
        standby.create_view(
            eqt,
            tuples_per_entry=2,
            max_entries=16,
            aux_index_columns=("r.a", "s.e"),
            upper_bound_bytes=8192,
        )
        return standby

    def test_adopt_while_degraded_restores_configured_bounds(self, eqt_db, eqt):
        primary_manager = PMVManager(eqt_db)
        primary_manager.create_view(
            eqt, tuples_per_entry=2, max_entries=16, upper_bound_bytes=8192
        )
        governor = _governor(primary_manager, FakeClock())
        for _ in range(4):
            governor.observe_latency(1.0)
        assert governor.tick() == QoSState.DEGRADED
        standby = self._standby_manager(eqt_db, eqt)
        standby_view = standby.managed()[0].view
        standby_view.set_upper_bound(1024)  # mirrored a shrunken budget
        governor.adopt_manager(standby)
        assert governor.manager is standby
        # The promoted view serves at its operator-configured budget
        # immediately, not at the dead primary's shrunken one.
        assert standby_view.upper_bound_bytes == 8192
        # Mid-DEGRADED adoption attaches the breaker to the new fleet.
        assert standby.managed()[0].maintainer.breaker is governor.breaker

    def test_recovery_after_adoption_keeps_configured_bounds(self, eqt_db, eqt):
        primary_manager = PMVManager(eqt_db)
        primary_manager.create_view(
            eqt, tuples_per_entry=2, max_entries=16, upper_bound_bytes=8192
        )
        governor = _governor(primary_manager, FakeClock())
        for _ in range(4):
            governor.observe_latency(1.0)
        governor.tick()
        standby = self._standby_manager(eqt_db, eqt)
        governor.adopt_manager(standby)
        view = standby.managed()[0].view
        for _ in range(4):
            governor.observe_latency(0.001)
        governor.tick(), governor.tick()
        # Leaving DEGRADED restores the *standby's* configured bound —
        # the saved-bounds map was re-seeded at adoption, so recovery
        # cannot resurrect the dead primary's budgets.
        assert governor.state == QoSState.NORMAL
        assert view.upper_bound_bytes == 8192
        assert standby.managed()[0].maintainer.breaker is None

    def test_adopt_with_explicit_bounds_override(self, eqt_db, eqt):
        primary_manager = PMVManager(eqt_db)
        primary_manager.create_view(
            eqt, tuples_per_entry=2, max_entries=16, upper_bound_bytes=8192
        )
        governor = _governor(primary_manager, FakeClock())
        standby = self._standby_manager(eqt_db, eqt)
        governor.adopt_manager(standby, configured_bounds={"pmv_Eqt": 2048})
        assert standby.managed()[0].view.upper_bound_bytes == 2048

    def test_gate_rebind_reroutes_and_reports_wal_checksums(self, eqt_db, eqt):
        from repro.engine import Database, WriteAheadLog

        primary_manager = PMVManager(eqt_db)
        primary_manager.create_view(
            eqt, tuples_per_entry=2, max_entries=16, upper_bound_bytes=8192
        )
        gate = ServingGate(primary_manager)
        assert gate.stats()["wal_checksum_failures"] == 0  # no WAL at all
        logged_db = Database(wal=WriteAheadLog())
        standby = PMVManager(logged_db)
        gate.rebind(standby)
        assert gate.manager is standby
        assert gate.governor.manager is standby
        logged_db.wal.checksum_failures = 3
        assert gate.stats()["wal_checksum_failures"] == 3
