"""Unit tests for EXISTS acceleration via a PMV (Section 3.6)."""

import pytest

from repro.core import ExistsAccelerator, ExistsVerdictSource, PMVMaintainer
from repro.errors import PMVError
from tests.conftest import eqt_query


@pytest.fixture
def accelerator(eqt_db, eqt, eqt_executor):
    return ExistsAccelerator(eqt_executor)


class TestCheck:
    def test_cold_check_executes(self, accelerator, eqt):
        exists, source = accelerator.check(eqt_query(eqt, [1], [2]))
        assert exists
        assert source is ExistsVerdictSource.EXECUTION
        assert accelerator.stats.executions == 1

    def test_warm_check_short_circuits(self, accelerator, eqt):
        query = eqt_query(eqt, [1], [2])
        accelerator.check(query)  # warms the PMV via execution
        exists, source = accelerator.check(query)
        assert exists
        assert source is ExistsVerdictSource.PMV_PROBE
        assert accelerator.stats.pmv_confirmations == 1

    def test_negative_exists_always_executes(self, accelerator, eqt):
        query = eqt_query(eqt, [999], [2])
        for _ in range(2):
            exists, source = accelerator.check(query)
            assert not exists
            assert source is ExistsVerdictSource.EXECUTION

    def test_probe_verdicts_stay_sound_after_delete(
        self, accelerator, eqt, eqt_db, eqt_pmv
    ):
        query = eqt_query(eqt, [1], [2])
        PMVMaintainer(eqt_db, eqt_pmv).attach()
        accelerator.check(query)
        # Remove every tuple that could satisfy the subquery.
        eqt_db.delete_where("r", lambda row: row["f"] == 1)
        exists, source = accelerator.check(query)
        assert not exists  # a stale probe would have said True
        assert source is ExistsVerdictSource.EXECUTION

    def test_wrong_template_rejected(self, accelerator, eqt_db):
        from repro.engine import (
            Column,
            EqualityDisjunction,
            INTEGER,
            QueryTemplate,
            SelectionSlot,
            SlotForm,
        )

        eqt_db.create_relation("t", [Column("x", INTEGER)])
        other = QueryTemplate(
            "other", ("t",), ("t.x",), (), (SelectionSlot("t", "t.x", SlotForm.EQUALITY),)
        )
        with pytest.raises(PMVError):
            accelerator.check(other.bind([EqualityDisjunction("t.x", [1])]))


class TestFilterExists:
    def test_filters_and_reports_sources(self, accelerator, eqt, eqt_db):
        # Candidates are f-values; the correlated subquery asks whether
        # any (f, g=2) result exists.
        # f = id % 6 in the fixture, so 8 candidates repeat two f-values.
        candidates = list(eqt_db.catalog.relation("r").scan_rows())[:8]

        def subquery_for(row):
            return eqt_query(eqt, [row["f"]], [2])

        passed = list(accelerator.filter_exists(candidates, subquery_for))
        # Every candidate f joins something with g=2 in the fixture data.
        assert len(passed) == len(candidates)
        sources = [source for _, source in passed]
        # Repeated f-values are confirmed by probe after the first
        # execution warms the cell.
        assert ExistsVerdictSource.PMV_PROBE in sources

    def test_short_circuit_fraction(self, accelerator, eqt, eqt_db):
        candidates = [row for row in eqt_db.catalog.relation("r").scan_rows()][:12]
        list(
            accelerator.filter_exists(
                candidates, lambda row: eqt_query(eqt, [row["f"]], [2])
            )
        )
        stats = accelerator.stats
        assert stats.checks == 12
        assert stats.pmv_confirmations + stats.executions == 12
        assert stats.short_circuit_fraction > 0.3
