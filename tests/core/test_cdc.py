"""CDC-driven async maintenance: outbox, routing, freshness, drain.

Covers the DESIGN.md §13 contract end to end at unit scope: the
transactional outbox's ordering and durability windows, heavy-light
routing, freshness-bound enforcement around the knob's exact value,
breaker-gated drain retries, the governor's widen-before-shrink
policy, and the consistency checker's watermark awareness.
"""

import pytest

from repro.cdc import AsyncMaintainer, ChangeOutbox, HeavyLightSplitter
from repro.core import PMVManager
from repro.core.manager import ManagedView
from repro.engine.transactions import Change, ChangeKind
from repro.errors import LockError, MaintenanceError, PMVError
from repro.faults import FaultInjector, FaultPlan, SimulatedCrash
from repro.faults.check import InvariantViolation, check_view_against_database
from repro.faults.plan import FaultMode, FaultSpec
from repro.qos.admission import AdmissionController
from repro.qos.breaker import CircuitBreaker
from repro.qos.governor import DegradationGovernor, GovernorConfig, QoSState
from tests.conftest import eqt_query


@pytest.fixture
def world(eqt_db, eqt):
    """A managed Eqt PMV, warm on cell (1, 2), still eager."""
    manager = PMVManager(eqt_db)
    view = manager.create_view(
        eqt,
        tuples_per_entry=2,
        max_entries=16,
        aux_index_columns=("r.a", "s.e"),
    )
    executor = manager.executor("Eqt")
    executor.execute(eqt_query(eqt, [1], [2]))
    assert view.stored_tuple_count > 0
    return eqt_db, eqt, manager, view, executor


def go_async(manager, splitter=None, outbox=None):
    return manager.enable_async_maintenance(outbox=outbox, splitter=splitter)


def answer(executor, eqt, fs=(1,), gs=(2,)):
    return executor.execute(eqt_query(eqt, list(fs), list(gs)))


def oracle(db, query):
    return sorted(tuple(r.values) for r in db.run(query))


def dummy_delete():
    """A schema-less DELETE change — the outbox never reads the row."""
    return Change(ChangeKind.DELETE, "r", old_row=object())


# ---------------------------------------------------------------------------
# The outbox itself
# ---------------------------------------------------------------------------


class TestOutbox:
    def test_self_assigned_lsns_are_monotonic(self):
        outbox = ChangeOutbox()
        change = dummy_delete()
        lsns = [outbox.append(change).lsn for _ in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        assert outbox.last_lsn == 5

    def test_explicit_lsns_preserved_and_fifo(self):
        outbox = ChangeOutbox()
        change = dummy_delete()
        for lsn in (7, 9, 12):
            outbox.append(change, lsn=lsn)
        assert [r.lsn for r in outbox.pending()] == [7, 9, 12]
        assert outbox.take().lsn == 7
        assert outbox.peek_lsn() == 9

    def test_requeue_restores_head(self):
        outbox = ChangeOutbox()
        change = dummy_delete()
        outbox.append(change)
        outbox.append(change)
        head = outbox.take()
        outbox.requeue(head)
        assert outbox.peek_lsn() == head.lsn

    def test_applied_up_to_respects_earlier_unapplied(self):
        outbox = ChangeOutbox()
        change = dummy_delete()
        outbox.append(change)  # lsn 1
        outbox.append(change)  # lsn 2
        outbox.mark_applied(2, "v")
        assert not outbox.applied_up_to(2, "v")  # lsn 1 still pending
        outbox.mark_applied(1, "v")
        assert outbox.applied_up_to(2, "v")


class TestFeedWiring:
    def test_every_dml_kind_feeds_the_outbox(self, world):
        db, eqt, manager, view, executor = world
        go_async(manager)
        db.insert("r", (900, 1, 1, "new"))
        db.delete_where("r", lambda row: row["id"] == 900)
        row_id = next(
            rid for rid, row in db.catalog.relation("r").scan()
            if row["id"] == 1
        )
        db.update("r", row_id, a="renamed")
        kinds = [r.change.kind for r in db.outbox.pending()]
        assert kinds == [ChangeKind.INSERT, ChangeKind.DELETE, ChangeKind.UPDATE]

    def test_aborted_statement_leaves_no_record(self, world):
        """A hot-routed write denied its X lock aborts in prepare —
        before the heap, the WAL, and therefore the outbox."""
        db, eqt, manager, view, executor = world
        go_async(manager, splitter=HeavyLightSplitter(default_hot=True))
        reader = db.begin(read_only=True)
        reader.lock_shared(view.name)
        with pytest.raises(LockError):
            db.delete_where("r", lambda row: row["id"] == 1)
        reader.commit()
        assert len(db.outbox) == 0
        assert db.catalog.relation("r").row_count == 120  # nothing deleted


# ---------------------------------------------------------------------------
# Heavy-light routing
# ---------------------------------------------------------------------------


class TestRouting:
    def test_cold_change_is_deferred(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        before = view.stored_tuple_count
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        assert view.stored_tuple_count == before  # not maintained yet
        assert view.metrics.maintenance_deferred == 1
        assert maintainer.lag(view) == 1

    def test_hot_change_applied_at_write_time(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager, splitter=HeavyLightSplitter({"r.f": {1}}))
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)  # f == 1: hot
        assert all(
            row["r.a"] != victim for row in (view.lookup((1, 2)) or [])
        )
        assert maintainer.lag(view) == 0  # eager apply advanced the watermark
        maintainer.drain()
        assert maintainer.stats()["eager_skips"] == 1
        assert maintainer.stats()["deltas_applied"] == 0

    def test_non_hot_value_stays_cold(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager, splitter=HeavyLightSplitter({"r.f": {3}}))
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)  # f == 1: cold
        assert view.metrics.maintenance_deferred == 1
        assert maintainer.lag(view) == 1

    def test_residency_splitter_marks_resident_parts_hot(self, world):
        db, eqt, manager, view, executor = world
        splitter = HeavyLightSplitter.from_residency(view)
        maintainer = go_async(manager, splitter=splitter)
        victim = view.lookup((1, 2))[0]["r.a"]
        # (f=1, g=2) is resident, so its deletes route hot...
        db.delete_where("r", lambda row: row["a"] == victim)
        assert maintainer.lag(view) == 0
        # ...while a non-resident part's delete routes cold.
        db.delete_where("r", lambda row: row["f"] == 5 and row["id"] < 12)
        assert view.metrics.maintenance_deferred >= 1


# ---------------------------------------------------------------------------
# Freshness accounting
# ---------------------------------------------------------------------------


class TestFreshness:
    def _lag_by(self, db, n):
        for i in range(n):
            db.insert("s", (11, 4, f"lagfill{i}"))  # relevant relation, cold

    def test_bound_enforced_exactly_at_the_knob(self, world):
        db, eqt, manager, view, executor = world
        executor.freshness_bound = 3
        maintainer = go_async(manager)
        for lag, expect_bypass in ((2, False), (1, False), (1, True)):
            self._lag_by(db, lag)  # cumulative: 2, 3, 4
            result = answer(executor, eqt)
            assert result.metrics.bypassed_stale is expect_bypass
            if expect_bypass:
                assert result.staleness == 0  # answered by full execution
            else:
                assert result.staleness == maintainer.lag(view)

    def test_stamp_is_true_upper_bound_and_zero_after_drain(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        self._lag_by(db, 2)
        result = answer(executor, eqt)
        assert result.staleness == 2
        assert result.applied_lsn == view.applied_lsn
        maintainer.drain_to_convergence()
        result = answer(executor, eqt)
        assert result.staleness == 0

    def test_eager_view_carries_no_stamp(self, world):
        db, eqt, manager, view, executor = world
        result = answer(executor, eqt)
        assert result.staleness is None
        assert result.applied_lsn is None

    def test_stale_extras_counted_not_raised(self, world):
        """An undrained delete leaves bounded-stale extras in O2; the
        O3 ledger must count them instead of raising PMVError."""
        db, eqt, manager, view, executor = world
        go_async(manager)
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        result = answer(executor, eqt)
        assert result.complete
        assert result.metrics.stale_partial_tuples >= 1
        got = sorted(tuple(r.values) for r in result.all_rows())
        want = oracle(db, eqt_query(eqt, [1], [2]))
        for item in want:  # truth ⊆ answer
            assert item in got


# ---------------------------------------------------------------------------
# The drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_converges_and_answers_exactly(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        db.delete_where("r", lambda row: row["f"] == 1 and row["id"] < 40)
        drained = maintainer.drain_to_convergence()
        assert drained == len(db.outbox.pending()) + drained  # feed empty
        assert maintainer.lag(view) == 0
        query = eqt_query(eqt, [1], [2])
        result = executor.execute(query)
        assert sorted(tuple(r.values) for r in result.all_rows()) == oracle(
            db, query
        )
        manager.verify_consistency()

    def test_lock_denial_requeues_and_yields(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        maintainer._registered[view.name].x_lock_wait = False
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        reader = db.begin(read_only=True)
        reader.lock_shared(view.name)
        assert maintainer.drain() == 0
        assert maintainer.lock_yields == 1
        assert len(db.outbox) == 1  # requeued, not lost
        reader.commit()
        assert maintainer.drain() == 1
        assert maintainer.lag(view) == 0

    def test_breaker_gates_drain_lock_acquisition(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=999.0)
        maintainer._registered[view.name].breaker = breaker
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        reader = db.begin(read_only=True)
        reader.lock_shared(view.name)
        # Open breaker: a single no-wait attempt, no parking, a yield.
        assert maintainer.drain() == 0
        assert maintainer.lock_yields == 1
        reader.commit()
        # Lock free: the no-wait attempt succeeds and closes the breaker.
        assert maintainer.drain() == 1
        assert breaker.state == CircuitBreaker.CLOSED

    def test_out_of_order_feed_raises(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        db.insert("s", (11, 4, "x1"))
        maintainer.drain()
        # Re-inject an already-drained LSN: the double-apply guard trips.
        db.outbox.append(dummy_delete(), lsn=1)
        with pytest.raises(MaintenanceError, match="out of order"):
            maintainer.drain()

    def test_error_mid_drain_triggers_failsafe_clear(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        injector = FaultInjector(
            FaultPlan([FaultSpec("outbox.drain", 1, FaultMode.ERROR)])
        )
        db.fault_hook = injector.fire
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        assert maintainer.drain() == 1  # the record is consumed...
        assert maintainer.failsafe_clears == 1  # ...via the fail-safe
        assert view.stored_tuple_count == 0  # empty = correct subset
        assert maintainer.lag(view) == 0  # empty view is fresh as of now
        manager.verify_consistency()


# ---------------------------------------------------------------------------
# Crash windows of the append
# ---------------------------------------------------------------------------


class TestAppendCrashWindows:
    def _crash_plan(self, mode):
        return FaultInjector(FaultPlan([FaultSpec("outbox.append", 1, mode)]))

    def test_crash_before_stores_nothing(self):
        injector = self._crash_plan(FaultMode.CRASH_BEFORE)
        outbox = ChangeOutbox(fault_check=injector.check)
        with pytest.raises(SimulatedCrash):
            outbox.append(dummy_delete())
        assert len(outbox) == 0
        assert outbox.appended == 0

    def test_crash_after_stores_the_record(self):
        injector = self._crash_plan(FaultMode.CRASH_AFTER)
        outbox = ChangeOutbox(fault_check=injector.check)
        with pytest.raises(SimulatedCrash):
            outbox.append(dummy_delete())
        assert len(outbox) == 1
        assert outbox.appended == 1

    def test_error_mode_is_not_meaningful_at_append(self):
        with pytest.raises(ValueError):
            FaultSpec("outbox.append", 1, FaultMode.ERROR)


# ---------------------------------------------------------------------------
# Consistency checking with watermarks
# ---------------------------------------------------------------------------


class TestVerifyConsistency:
    def test_intentionally_stale_view_passes(self, world):
        """Regression: before watermark awareness, verify_consistency
        reported an undrained async view as a phantom divergence."""
        db, eqt, manager, view, executor = world
        go_async(manager)
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        # The strict checker still sees the stale extra...
        with pytest.raises(InvariantViolation):
            check_view_against_database(db, view)
        # ...but the manager knows the view is intentionally behind.
        manager.verify_consistency()

    def test_converged_view_gets_the_strict_check(self, world):
        """A lost delta must not hide behind async mode: once the
        watermark claims convergence, a stale cached tuple is a bug."""
        db, eqt, manager, view, executor = world
        go_async(manager)
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        # Simulate a lost delta: watermark advances, tuple not removed.
        view.applied_lsn = db.current_lsn()
        with pytest.raises(InvariantViolation):
            manager.verify_consistency()

    def test_structural_checks_run_even_when_stale(self, world):
        db, eqt, manager, view, executor = world
        go_async(manager)
        db.delete_where("r", lambda row: row["id"] == 0)
        # allow_stale skips only the phantom check; a corrupted aux
        # index still trips the checker.
        column = view.aux_index_columns[0]
        bucket = view._aux[column]
        if bucket:
            value = next(iter(bucket))
            key = next(iter(bucket[value]))
            bucket[value][key] += 1
            with pytest.raises(InvariantViolation):
                manager.verify_consistency()


# ---------------------------------------------------------------------------
# Governor policy and manager wiring
# ---------------------------------------------------------------------------


class TestGovernor:
    def test_degraded_widens_freshness_before_shrinking_ub(self, world):
        db, eqt, manager, view, executor = world
        executor.freshness_bound = 5
        view.set_upper_bound(8192)
        go_async(manager)
        governor = DegradationGovernor(
            manager,
            AdmissionController(),
            GovernorConfig(freshness_widen_factor=4.0),
        )
        governor._enter_degraded()
        assert governor.state == QoSState.DEGRADED
        assert executor.freshness_bound == 20  # widened first
        assert view.upper_bound_bytes == 4096  # then shrunk
        governor._exit_degraded()
        assert executor.freshness_bound == 5
        assert view.upper_bound_bytes == 8192

    def test_eager_view_bounds_untouched(self, world):
        db, eqt, manager, view, executor = world
        executor.freshness_bound = 5
        governor = DegradationGovernor(manager, AdmissionController())
        governor._enter_degraded()
        assert executor.freshness_bound == 5  # not async: no widening
        governor._exit_degraded()

    def test_adopt_manager_clears_saved_freshness_bounds(self, world):
        db, eqt, manager, view, executor = world
        executor.freshness_bound = 5
        go_async(manager)
        governor = DegradationGovernor(manager, AdmissionController())
        governor._enter_degraded()
        governor.adopt_manager(manager)
        assert governor._saved_freshness_bounds == {}


class TestManagerWiring:
    def test_enable_unknown_template_raises(self, world):
        db, eqt, manager, view, executor = world
        with pytest.raises(PMVError):
            manager.enable_async_maintenance(template_names=["nope"])

    def test_register_accepts_managed_view(self, world):
        db, eqt, manager, view, executor = world
        am = AsyncMaintainer(db)
        managed = manager.managed()[0]
        assert isinstance(managed, ManagedView)
        am.register(managed)
        assert view.async_maintenance
        assert managed.maintainer.async_mode

    def test_unregister_returns_view_to_eager(self, world):
        db, eqt, manager, view, executor = world
        maintainer = go_async(manager)
        maintainer.unregister(view.name)
        assert not view.async_maintenance
        before = view.stored_tuple_count
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        # Eager again: maintained at write time despite the live outbox.
        assert all(
            row["r.a"] != victim for row in (view.lookup((1, 2)) or [])
        )
        assert view.stored_tuple_count < before


# ---------------------------------------------------------------------------
# Watermark regressions (ISSUE 8): drain-vs-commit race, register-mid-backlog
# ---------------------------------------------------------------------------


def _wal_world():
    """The conftest Eqt world rebuilt per call with a WAL attached.

    The phantom-freshness window only exists with a WAL: the writer
    bumps ``current_lsn()`` at ``wal.append`` and only later (still
    inside the statement latch) appends the feed record, so a drain
    interleaved between the two sees a *newer* LSN over an *empty*
    feed.  On a WAL-less database the LSN source is the outbox itself
    and the two steps collapse into one.
    """
    from repro.engine import (
        Column,
        Database,
        INTEGER,
        JoinEquality,
        QueryTemplate,
        SelectionSlot,
        SlotForm,
        TEXT,
        WriteAheadLog,
    )

    database = Database(wal=WriteAheadLog())
    database.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    database.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    database.create_index("r_f", "r", ["f"])
    database.create_index("r_c", "r", ["c"])
    database.create_index("s_d", "s", ["d"])
    database.create_index("s_g", "s", ["g"])
    for i in range(48):
        database.insert("r", (i, i % 12, i % 6, f"a{i}"))
    for j in range(24):
        database.insert("s", (j % 12, j % 5, f"e{j}"))
    template = QueryTemplate(
        name="Eqt",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )
    database.register_template(template)
    manager = PMVManager(database)
    view = manager.create_view(
        template,
        tuples_per_entry=2,
        max_entries=16,
        aux_index_columns=("r.a", "s.e"),
    )
    executor = manager.executor("Eqt")
    executor.execute(eqt_query(template, [1], [2]))
    assert view.stored_tuple_count > 0
    return database, template, manager, view, executor


class TestWatermarkRace:
    """Regression for the `_advance_to_feed_end` phantom-freshness race.

    A writer's commit is two steps inside the statement latch: WAL
    append (LSN bumps) then outbox append (feed record visible).  A
    drain whose feed-end catch-up runs between them used to read the
    new LSN over a still-empty feed and jump every watermark past the
    unapplied change.  The fix takes the statement latch (non-blocking)
    around the LSN read + emptiness check, so the catch-up either sees
    both steps or neither.
    """

    def test_drain_interleaved_inside_commit_keeps_watermark_honest(self):
        from repro.faults import InterleavingScheduler

        windows_hit = 0
        for seed in range(8):
            db, eqt, manager, view, executor = _wal_world()
            am = go_async(manager)  # registers the view, attaches the feed
            sched = InterleavingScheduler(seed)
            db.install_scheduler(sched)
            # Cold-routed relevant delete: row id 1 has f == 1, the
            # view's warm entry — its feed record *must* hold the
            # watermark back until drained.
            writer = sched.spawn(
                "writer", db.delete_where, "r", lambda row: row["id"] == 1
            )
            drainer = sched.spawn("drainer", am.drain)
            writer.start()
            drainer.start()
            sched.launch()
            writer.join(timeout=10.0)
            drainer.join(timeout=10.0)
            assert not writer.is_alive() and not drainer.is_alive(), (
                f"seed {seed}: schedule wedged (deadlock in the "
                f"watermark catch-up path)"
            )
            db.install_scheduler(None)
            for record in db.outbox.pending():
                if view.name not in record.applied_views:
                    assert view.applied_lsn < record.lsn, (
                        f"seed {seed}: watermark {view.applied_lsn} claims "
                        f"unapplied feed record at LSN {record.lsn} "
                        f"(phantom freshness)"
                    )
            windows_hit += am.advance_skips
            am.drain_to_convergence()
            assert am.lag(view) == 0
            manager.verify_consistency()
        # At least one seed must actually interleave the drain into the
        # commit window, or the sweep proved nothing.
        assert windows_hit >= 1

    def test_advance_skip_is_recoverable(self):
        """A skipped catch-up is caught up by the very next drain."""
        db, eqt, manager, view, executor = _wal_world()
        am = go_async(manager)
        db.wal.checkpoint()
        am.drain()
        assert am.lag(view) == 0


class TestRegisterMidBacklog:
    """Regression for double-apply of pre-registration feed records.

    Once an outbox is attached, *every* DML feeds it — including writes
    against views still maintained eagerly.  Registering such a view
    used to set its watermark to the current LSN while leaving the
    already-pending records unstamped, so the next drain re-applied
    deltas the eager path had already absorbed.
    """

    def test_pending_records_not_double_applied(self, world):
        db, eqt, manager, view, executor = world
        am = AsyncMaintainer(db)  # feed attached; view still eager
        victim = view.lookup((1, 2))[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim)
        # Eagerly maintained at write time, yet recorded in the feed.
        assert all(
            row["r.a"] != victim for row in (view.lookup((1, 2)) or [])
        )
        assert len(db.outbox) == 1
        pending_lsn = db.outbox.peek_lsn()
        before = view.stored_tuple_count
        am.register(manager.managed()[0])
        assert view.applied_lsn >= pending_lsn  # fresh as of registration
        assert am.drain() == 1
        stats = am.stats()
        assert stats["deltas_applied"] == 0, (
            "drain re-applied a delta the eager path already absorbed"
        )
        assert stats["eager_skips"] == 1
        assert view.stored_tuple_count == before
        assert am.lag(view) == 0
        manager.verify_consistency()

    def test_records_past_registration_lsn_still_apply(self, world):
        db, eqt, manager, view, executor = world
        am = AsyncMaintainer(db)
        victim1, victim2 = [row["r.a"] for row in view.lookup((1, 2))[:2]]
        db.delete_where("r", lambda row: row["a"] == victim1)  # pre-register
        am.register(manager.managed()[0])
        db.delete_where("r", lambda row: row["a"] == victim2)  # post-register
        assert am.drain() == 2
        stats = am.stats()
        assert stats["eager_skips"] == 1  # the pre-registration record
        assert stats["deltas_applied"] == 1  # the post-registration one
        assert all(
            row["r.a"] not in (victim1, victim2)
            for row in (view.lookup((1, 2)) or [])
        )
        manager.verify_consistency()
