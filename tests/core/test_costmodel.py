"""Unit tests for the analytical maintenance cost model (Figs 11-12)."""

import math

import pytest

from repro.core.costmodel import CostParameters, MaintenanceCostModel
from repro.errors import PMVError

P_GRID = [i / 10 for i in range(11)]


@pytest.fixture
def model():
    return MaintenanceCostModel()


class TestPerTupleCosts:
    def test_mv_delete_dearer_than_insert(self, model):
        assert model.mv_delete_cost_per_tuple() > model.mv_insert_cost_per_tuple()

    def test_pmv_insert_is_free(self, model):
        assert model.pmv_insert_cost_per_tuple() == 0.0

    def test_pmv_delete_is_tiny(self, model):
        assert model.pmv_delete_cost_per_tuple() < 1.0


class TestWorkloads:
    def test_paper_shape_mv_decreasing_in_p(self, model):
        values = [model.mv_workload(p) for p in P_GRID]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_paper_shape_pmv_decreasing_in_p(self, model):
        values = [model.pmv_workload(p) for p in P_GRID]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_pmv_zero_at_all_inserts(self, model):
        assert model.pmv_workload(1.0) == 0.0

    def test_two_orders_of_magnitude_gap(self, model):
        """The paper's headline: MV maintenance is at least two orders
        of magnitude dearer for every p."""
        assert model.minimum_gap_orders_of_magnitude(P_GRID) >= 2.0

    def test_speedup_monotone_increasing(self, model):
        points = model.sweep(P_GRID[:-1])  # exclude p=1 (infinite)
        speedups = [point.speedup for point in points]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))

    def test_speedup_infinite_at_p1(self, model):
        assert math.isinf(model.evaluate(1.0).speedup)

    def test_speedup_reaches_hundreds(self, model):
        assert model.evaluate(0.9).speedup > 300

    def test_workload_scales_with_delta_size(self):
        small = MaintenanceCostModel(CostParameters(delta_size=100))
        large = MaintenanceCostModel(CostParameters(delta_size=1000))
        assert large.mv_workload(0.5) == pytest.approx(10 * small.mv_workload(0.5))

    def test_sweep_returns_grid(self, model):
        points = model.sweep([0.0, 0.5, 1.0])
        assert [p.insert_fraction for p in points] == [0.0, 0.5, 1.0]


class TestValidation:
    def test_out_of_range_p_rejected(self, model):
        with pytest.raises(PMVError):
            model.mv_workload(1.5)
        with pytest.raises(PMVError):
            model.pmv_workload(-0.1)

    def test_bad_parameters_rejected(self):
        with pytest.raises(PMVError):
            CostParameters(delta_size=0)
        with pytest.raises(PMVError):
            CostParameters(pmv_miss_probability=1.5)
        with pytest.raises(PMVError):
            CostParameters(join_fanout=-1)

    def test_gap_undefined_when_pmv_always_zero(self):
        model = MaintenanceCostModel(
            CostParameters(pmv_miss_probability=0.0, memory_ops_per_pmv_delete=0.0)
        )
        with pytest.raises(PMVError):
            model.minimum_gap_orders_of_magnitude([1.0])


class TestMultiRelationExtension:
    """The paper: "The above two-relation model can be easily extended
    to handle a (partial) MV defined on multiple base relations."""

    def test_two_relation_defaults_unchanged(self, model):
        # fanout 2, descent 2, 1 read/match -> 2 + 2*1 = 4 I/Os.
        assert model.delta_join_ios() == pytest.approx(4.0)
        assert model.results_per_delta_tuple() == pytest.approx(2.0)

    def test_three_relation_join_costs_more(self):
        three = MaintenanceCostModel(CostParameters(n_relations=3))
        two = MaintenanceCostModel(CostParameters(n_relations=2))
        assert three.delta_join_ios() > two.delta_join_ios()
        assert three.results_per_delta_tuple() == pytest.approx(4.0)

    def test_gap_holds_for_wider_views(self):
        for n in (2, 3, 4):
            model = MaintenanceCostModel(CostParameters(n_relations=n))
            assert model.minimum_gap_orders_of_magnitude(P_GRID) >= 2.0

    def test_speedup_grows_with_relations(self):
        """Wider views make immediate MV maintenance dearer while PMV
        deletes stay in-memory, so the PMV advantage widens."""
        ratios = [
            MaintenanceCostModel(CostParameters(n_relations=n)).evaluate(0.5).speedup
            for n in (2, 3, 4)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_single_relation_rejected(self):
        with pytest.raises(PMVError):
            CostParameters(n_relations=1)
