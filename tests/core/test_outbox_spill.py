"""Outbox spill tier, batch draining, and CDC backpressure tests."""

import pytest

from repro.core import Discretization, PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
    WriteAheadLog,
)
from repro.engine.row import Row
from repro.engine.transactions import Change, ChangeKind
from repro.engine.wal import replay_record
from repro.cdc import ChangeOutbox
from repro.errors import OutboxSpillError
from repro.qos.admission import AdmissionController
from repro.qos.governor import DegradationGovernor, GovernorConfig


def _plain_db() -> Database:
    db = Database()
    db.create_relation(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
    )
    return db


def _change(db: Database, i: int) -> Change:
    schema = db.catalog.relation("t").schema
    return Change(ChangeKind.INSERT, "t", new_row=Row((i, f"v{i}"), schema))


def _resolver(db: Database):
    return lambda name: db.catalog.relation(name).schema


class TestSpillTier:
    def test_spill_roundtrip_preserves_payloads(self, tmp_path):
        db = _plain_db()
        outbox = ChangeOutbox(
            spill_threshold=3,
            spill_path=str(tmp_path / "feed.spill"),
            schema_resolver=_resolver(db),
        )
        for i in range(10):
            outbox.append(_change(db, i))
        stats = outbox.stats()
        assert stats["resident"] == 3
        assert stats["spilled"] == 7
        assert stats["spilled_total"] == 7
        assert stats["peak_resident"] == 3
        taken = []
        while True:
            record = outbox.take()
            if record is None:
                break
            assert record.change is not None  # consumers never see a ref
            taken.append(record)
        got = [(r.lsn, r.change.new_row["id"], r.change.new_row["v"]) for r in taken]
        assert got == [(i + 1, i, f"v{i}") for i in range(10)]
        assert outbox.stats()["materialized"] == 7
        # Fully drained: the spill file was truncated back to zero.
        assert outbox.stats()["spill_bytes"] == 0
        assert outbox.stats()["spill_truncations"] == 1
        outbox.close()

    def test_crc_corruption_fails_loud(self, tmp_path):
        db = _plain_db()
        path = tmp_path / "feed.spill"
        outbox = ChangeOutbox(
            spill_threshold=1,
            spill_path=str(path),
            schema_resolver=_resolver(db),
        )
        for i in range(3):
            outbox.append(_change(db, i))
        text = path.read_text(encoding="utf-8")
        assert "v1" in text
        path.write_text(text.replace("v1", "vX", 1), encoding="utf-8")
        # Reopen the handle at the corrupted bytes.
        outbox._spill_file.close()
        outbox._spill_file = open(str(path), "a+b")
        assert outbox.take().change is not None  # resident head is fine
        with pytest.raises(OutboxSpillError, match="CRC"):
            outbox.take()
        outbox.close()

    def test_mark_applied_never_touches_the_spill_file(self, tmp_path):
        db = _plain_db()
        outbox = ChangeOutbox(
            spill_threshold=1,
            spill_path=str(tmp_path / "feed.spill"),
            schema_resolver=_resolver(db),
        )
        for i in range(4):
            outbox.append(_change(db, i))
        spilled = outbox.pending()[2]
        assert spilled.spill_ref is not None
        bytes_before = outbox.stats()["spill_bytes"]
        assert outbox.mark_applied(spilled.lsn, "view-a")
        assert outbox.mark_applied_up_to(2, "view-b") == 2
        assert outbox.stats()["spill_bytes"] == bytes_before
        assert spilled.spill_ref is not None  # still spilled
        # Rehydration carries the stamps through.
        outbox.take()
        outbox.take()
        record = outbox.take()
        assert record.lsn == spilled.lsn
        assert record.applied_views == {"view-a"}
        outbox.close()

    def test_spill_enospc_falls_back_to_resident(self, tmp_path):
        db = _plain_db()
        outbox = ChangeOutbox(
            fault_check=lambda site: True if site == "disk.full" else None,
            spill_threshold=2,
            spill_path=str(tmp_path / "feed.spill"),
            schema_resolver=_resolver(db),
        )
        for i in range(5):
            outbox.append(_change(db, i))  # every spill attempt is refused
        stats = outbox.stats()
        assert stats["spill_enospc"] == 3
        assert stats["spilled_total"] == 0
        assert stats["resident"] == 5  # feed accepted them all anyway
        assert all(r.change is not None for r in outbox.pending())
        outbox.close()

    def test_restart_repopulates_feed_from_wal_replay(self, tmp_path):
        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.create_relation(
            "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
        )
        for i in range(6):
            db.insert("t", (i, f"v{i}"))
        db.delete("t", next(iter(db.catalog.relation("t").scan()))[0])
        # Restart: a fresh database with a (spilling) outbox attached;
        # replaying the WAL re-runs each statement through the DML
        # path, so the feed rebuilds itself — the WAL is the feed's
        # authoritative copy, the spill file is only a memory bound.
        db2 = Database()
        db2.outbox = ChangeOutbox(
            spill_threshold=2,
            spill_path=str(tmp_path / "rebuilt.spill"),
            schema_resolver=_resolver(db2),
        )
        for record in wal.records():
            replay_record(db2, record)
        assert len(db2.outbox) == 7  # 6 inserts + 1 delete
        assert db2.outbox.stats()["spilled_total"] > 0
        kinds = []
        while True:
            record = db2.outbox.take()
            if record is None:
                break
            kinds.append(record.change.kind)
        assert kinds == [ChangeKind.INSERT] * 6 + [ChangeKind.DELETE]
        db2.outbox.close()


def _cdc_fixture(drain_batch: int):
    db = Database()
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    template = QueryTemplate(
        name="bq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )
    manager = PMVManager(db)
    manager.create_view(template, Discretization(template), tuples_per_entry=4)
    maintainer = manager.enable_async_maintenance(drain_batch=drain_batch)
    return db, manager, template, maintainer


def _workload(db: Database) -> None:
    for i in range(30):
        db.insert("r", (i, i % 4, i % 3, f"a{i}"))
    for j in range(12):
        db.insert("s", (j % 4, j % 2, f"e{j}"))
    rows = list(db.catalog.relation("r").scan())
    db.delete("r", rows[0][0])
    db.update("r", rows[1][0], a="renamed")


def _answers(manager, template):
    out = {}
    for f_val in range(3):
        for g_val in range(2):
            query = template.bind(
                [
                    EqualityDisjunction("r.f", [f_val]),
                    EqualityDisjunction("s.g", [g_val]),
                ]
            )
            out[(f_val, g_val)] = sorted(
                (tuple(r.values) for r in manager.execute(query).all_rows()),
                key=repr,
            )
    return out


class TestBatchDrain:
    def test_batched_drain_is_lockstep_equivalent(self):
        db1, mgr1, tpl1, m1 = _cdc_fixture(drain_batch=1)
        db8, mgr8, tpl8, m8 = _cdc_fixture(drain_batch=8)
        _workload(db1)
        _workload(db8)
        m1.drain_to_convergence()
        m8.drain_to_convergence()
        assert _answers(mgr1, tpl1) == _answers(mgr8, tpl8)
        s1, s8 = m1.stats(), m8.stats()
        assert s1["records_drained"] == s8["records_drained"]
        assert s1["views"] == s8["views"]
        # The whole point: far fewer lock acquisitions/batches.
        assert s8["cdc_drain_batches"] < s1["cdc_drain_batches"]
        assert s8["drain_batch"] == 8

    def test_partial_batch_limit_respected(self):
        db, _mgr, _tpl, maintainer = _cdc_fixture(drain_batch=4)
        for i in range(10):
            db.insert("r", (i, 0, 0, f"a{i}"))
        drained = maintainer.drain(max_records=6)
        assert drained == 6  # 4 + 2, capped by max_records
        assert maintainer.drain_batches == 2

    def test_drain_batch_must_be_positive(self):
        from repro.errors import MaintenanceError

        with pytest.raises(MaintenanceError):
            _cdc_fixture(drain_batch=0)


class TestBackpressure:
    def test_cdc_backlog_drives_degraded(self):
        db, manager, _tpl, _maintainer = _cdc_fixture(drain_batch=1)
        config = GovernorConfig(degrade_backlog=8, shed_backlog=1000)
        governor = DegradationGovernor(manager, AdmissionController(), config=config)
        assert governor.tick() == "NORMAL"
        for i in range(12):  # backlog past degrade_backlog, nothing drained
            db.insert("r", (i, 0, 0, f"a{i}"))
        assert governor._backlog_depth() == 12
        assert governor.tick() == "DEGRADED"
        assert governor.stats()["cdc_backlog"] == 12

    def test_backlog_zero_without_outbox(self):
        db = _plain_db()
        manager = PMVManager(db)
        governor = DegradationGovernor(manager, AdmissionController())
        assert governor._backlog_depth() == 0
        assert governor.tick() == "NORMAL"
