"""Unit/integration tests for deferred PMV maintenance (Section 3.4)."""

import pytest

from repro.core import (
    Discretization,
    MaintenanceStrategy,
    MaterializedView,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
)
from repro.core.maintenance import compute_delta_join, template_result_schema
from repro.errors import MaintenanceError
from tests.conftest import eqt_query


@pytest.fixture
def warmed(eqt_db, eqt, eqt_pmv, eqt_executor):
    """PMV warmed so cell (1, 2) holds F=2 tuples."""
    eqt_executor.execute(eqt_query(eqt, [1], [2]))
    assert eqt_pmv.tuple_count((1, 2)) == 2
    return eqt_db, eqt, eqt_pmv, eqt_executor


@pytest.fixture(params=[MaintenanceStrategy.DELTA_JOIN, MaintenanceStrategy.AUX_INDEX])
def maintainer(request, warmed):
    db, eqt, pmv, executor = warmed
    m = PMVMaintainer(db, pmv, strategy=request.param).attach()
    yield db, eqt, pmv, executor, m
    m.detach()


class TestInsert:
    def test_insert_is_free(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        before = pmv.stored_tuple_count
        db.insert("r", (900, 1, 1, "new"))
        assert pmv.stored_tuple_count == before
        assert pmv.metrics.maintenance_inserts_ignored == 1

    def test_results_correct_after_insert(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        db.insert("r", (900, 2, 1, "brand-new"))  # c=2 matches s rows with d=2
        oracle = MaterializedView(db, eqt)
        query = eqt_query(eqt, [1], [2])
        result = executor.execute(query)
        assert sorted(tuple(r.values) for r in result.all_rows()) == sorted(
            tuple(r.values) for r in oracle.answer(query)
        )


class TestDelete:
    def test_stale_tuples_removed(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        cached = pmv.lookup((1, 2))
        victim_a = cached[0]["r.a"]
        db.delete_where("r", lambda row: row["a"] == victim_a)
        remaining = pmv.lookup((1, 2)) or []
        assert all(row["r.a"] != victim_a for row in remaining)

    def test_no_stale_partial_results_after_delete(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        db.delete_where("r", lambda row: row["f"] == 1 and row["id"] < 40)
        oracle = MaterializedView(db, eqt)
        query = eqt_query(eqt, [1], [2])
        result = executor.execute(query)  # DS.assert_empty inside guards staleness
        assert sorted(tuple(r.values) for r in result.all_rows()) == sorted(
            tuple(r.values) for r in oracle.answer(query)
        )

    def test_delete_from_inner_relation(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        # Removing every s row with g=2 starves cell (r.f=1, s.g=2)
        # entirely, whichever join partners fed its cached tuples.
        db.delete_where("s", lambda row: row["g"] == 2)
        assert pmv.tuple_count((1, 2)) == 0
        oracle = MaterializedView(db, eqt)
        query = eqt_query(eqt, [1], [2])
        result = executor.execute(query)
        assert sorted(tuple(r.values) for r in result.all_rows()) == sorted(
            tuple(r.values) for r in oracle.answer(query)
        )

    def test_unrelated_relation_ignored(self, warmed):
        db, eqt, pmv, executor = warmed
        from repro.engine import Column, INTEGER

        db.create_relation("unrelated", [Column("x", INTEGER)])
        m = PMVMaintainer(db, pmv).attach()
        row_id = db.insert("unrelated", (1,))
        db.delete("unrelated", row_id)
        assert pmv.metrics.maintenance_deletes == 0
        m.detach()

    def test_delete_counted(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        db.delete_where("r", lambda row: row["id"] == 0)
        assert pmv.metrics.maintenance_deletes == 1


class TestUpdate:
    def test_irrelevant_update_skipped(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        # r.id is in no Ls'/Cjoin attribute of Eqt.
        row_id, _ = next(iter(db.catalog.relation("r").find(lambda r: r["f"] == 1)))
        db.update("r", row_id, id=5000)
        assert pmv.metrics.maintenance_updates_skipped == 1
        assert pmv.tuple_count((1, 2)) == 2

    def test_relevant_update_removes_old_tuple(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        cached = pmv.lookup((1, 2))
        victim_a = cached[0]["r.a"]
        matches = list(db.catalog.relation("r").find(lambda r: r["a"] == victim_a))
        row_id, _ = matches[0]
        db.update("r", row_id, a="renamed")
        remaining = pmv.lookup((1, 2)) or []
        assert all(row["r.a"] != victim_a for row in remaining)

    def test_consistency_after_update(self, maintainer):
        db, eqt, pmv, executor, _ = maintainer
        row_id, _ = next(iter(db.catalog.relation("r").find(lambda r: r["f"] == 1)))
        db.update("r", row_id, f=5)  # moves the row to another cell
        oracle = MaterializedView(db, eqt)
        for fs, gs in [([1], [2]), ([5], [2])]:
            query = eqt_query(eqt, fs, gs)
            result = executor.execute(query)
            assert sorted(tuple(r.values) for r in result.all_rows()) == sorted(
                tuple(r.values) for r in oracle.answer(query)
            )


class TestDeltaJoin:
    def test_delta_join_matches_full_join_restriction(self, warmed):
        db, eqt, pmv, executor = warmed
        schema = template_result_schema(eqt, db)
        _, r_row = next(iter(db.catalog.relation("r").find(lambda r: r["id"] == 1)))
        results = compute_delta_join(db, eqt, "r", r_row, schema)
        oracle = MaterializedView(db, eqt)
        expected = [row for row in oracle.rows() if row["r.a"] == r_row["a"]]
        assert sorted(tuple(r.values) for r in results) == sorted(
            tuple(r.values) for r in expected
        )

    def test_delta_join_rows_equal_plan_rows(self, warmed):
        db, eqt, pmv, executor = warmed
        _, r_row = next(iter(db.catalog.relation("r").find(lambda r: r["id"] == 1)))
        results = compute_delta_join(db, eqt, "r", r_row)
        plan_rows = db.run(eqt_query(eqt, [r_row["f"]], [0, 1, 2, 3, 4]))
        plan_set = {tuple(r.values) for r in plan_rows}
        for row in results:
            assert tuple(row.values) in plan_set

    def test_missing_index_raises(self, eqt_db, eqt):
        from repro.engine import Column, Database, INTEGER

        db = Database()
        db.create_relation("r", [Column("id", INTEGER), Column("c", INTEGER), Column("f", INTEGER), Column("a", INTEGER)])
        db.create_relation("s", [Column("d", INTEGER), Column("g", INTEGER), Column("e", INTEGER)])
        schema = db.catalog.relation("r").schema
        from repro.engine.row import Row

        with pytest.raises(MaintenanceError):
            compute_delta_join(db, eqt, "r", Row((1, 1, 1, 1), schema))


class TestAuxIndexStrategy:
    def test_aux_strategy_requires_coverage(self, eqt_db, eqt):
        pmv = PartialMaterializedView(
            eqt, Discretization(eqt), 2, 8, aux_index_columns=("r.a",)
        )
        with pytest.raises(MaintenanceError):
            PMVMaintainer(eqt_db, pmv, strategy=MaintenanceStrategy.AUX_INDEX)

    def test_aux_removal_is_superset_safe(self, eqt_db, eqt):
        pmv = PartialMaterializedView(
            eqt,
            Discretization(eqt),
            tuples_per_entry=2,
            max_entries=16,
            aux_index_columns=("r.a", "s.e"),
        )
        executor = PMVExecutor(eqt_db, pmv)
        maintainer = PMVMaintainer(
            eqt_db, pmv, strategy=MaintenanceStrategy.AUX_INDEX
        ).attach()
        executor.execute(eqt_query(eqt, [1], [2]))
        eqt_db.delete_where("r", lambda row: row["f"] == 1)
        # Every remaining cached tuple must still be derivable.
        oracle = MaterializedView(eqt_db, eqt)
        valid = {tuple(r.values) for r in oracle.rows()}
        for _, rows in pmv.entries():
            for row in rows:
                assert tuple(row.values) in valid
        maintainer.detach()


class TestLocking:
    def test_maintenance_takes_x_lock(self, warmed):
        db, eqt, pmv, executor = warmed
        PMVMaintainer(db, pmv).attach()
        reader = db.begin(read_only=True)
        reader.lock_shared(pmv.name)
        from repro.errors import LockError

        with pytest.raises(LockError):
            db.delete_where("r", lambda row: row["id"] == 1)
        reader.commit()
