"""Unit tests for the PartialMaterializedView structure."""

import pytest

from repro.core.view import (
    NOMINAL_TUPLE_BYTES,
    PartialMaterializedView,
    entries_for_budget,
)
from repro.core.discretize import BasicIntervals, Discretization
from repro.core.replacement import TwoQueuePolicy
from repro.core.maintenance import template_result_schema
from repro.engine import (
    Column,
    Database,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    Row,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.errors import ViewCapacityError, ViewDefinitionError


@pytest.fixture
def setup(eqt_db, eqt):
    schema = template_result_schema(eqt, eqt_db)
    return eqt_db, eqt, schema


def make_view(eqt, F=2, entries=4, policy="clock", aux=()):
    return PartialMaterializedView(
        eqt,
        Discretization(eqt),
        tuples_per_entry=F,
        max_entries=entries,
        policy=policy,
        aux_index_columns=aux,
    )


def result_row(schema, a, e, f, g):
    return Row((a, e, f, g), schema)


class TestBudget:
    def test_entries_for_budget_paper_example(self):
        # L=10K, F=2, At=50B -> a bit over 1MB with the 4% key overhead.
        entries = entries_for_budget(1_050_000, tuples_per_entry=2, avg_tuple_bytes=50)
        assert 9_500 <= entries <= 10_100

    def test_budget_too_small_rejected(self):
        with pytest.raises(ViewCapacityError):
            entries_for_budget(10, tuples_per_entry=5, avg_tuple_bytes=50)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ViewCapacityError):
            entries_for_budget(0, 1, 1)


class TestConstruction:
    def test_invalid_f_rejected(self, setup):
        _, eqt, _ = setup
        with pytest.raises(ViewCapacityError):
            make_view(eqt, F=0)

    def test_policy_capacity_mismatch_rejected(self, setup):
        _, eqt, _ = setup
        with pytest.raises(ViewCapacityError):
            PartialMaterializedView(
                eqt, Discretization(eqt), 2, max_entries=8, policy=TwoQueuePolicy(4)
            )

    def test_aux_column_must_be_in_expanded_list(self, setup):
        _, eqt, _ = setup
        with pytest.raises(ViewDefinitionError):
            make_view(eqt, aux=("r.zzz",))

    def test_wrong_discretization_rejected(self, setup):
        _, eqt, _ = setup
        other = QueryTemplate(
            "x",
            ("r",),
            ("r.a",),
            (),
            (SelectionSlot("r", "r.f", SlotForm.EQUALITY),),
        )
        with pytest.raises(ViewDefinitionError):
            PartialMaterializedView(eqt, Discretization(other), 2, 4)


class TestKeyRecovery:
    def test_key_of_row_equality_slots(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        assert view.key_of_row(result_row(schema, "a1", "e1", 3, 4)) == (3, 4)

    def test_key_of_row_interval_slot(self, eqt_db):
        template = QueryTemplate(
            "ivt",
            ("r", "s"),
            ("r.a", "s.e"),
            (JoinEquality("r", "c", "s", "d"),),
            (
                SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                SelectionSlot("s", "s.g", SlotForm.INTERVAL),
            ),
        )
        disc = Discretization(template, {"s.g": BasicIntervals([2, 4])})
        view = PartialMaterializedView(template, disc, 2, 4)
        schema = template_result_schema(template, eqt_db)
        assert view.key_of_row(result_row(schema, "a", "e", 1, 3)) == (1, 1)
        bcp = view.bcp_of_row(result_row(schema, "a", "e", 1, 3))
        assert bcp.key == (1, 1)


class TestStorage:
    def test_add_requires_residency(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        assert not view.add_tuple((1, 2), result_row(schema, "a", "e", 1, 2))
        view.reference((1, 2))
        assert view.add_tuple((1, 2), result_row(schema, "a", "e", 1, 2))
        assert view.tuple_count((1, 2)) == 1

    def test_f_bound_enforced(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt, F=2)
        view.reference((1, 2))
        assert view.add_tuple((1, 2), result_row(schema, "a1", "e", 1, 2))
        assert view.add_tuple((1, 2), result_row(schema, "a2", "e", 1, 2))
        assert not view.add_tuple((1, 2), result_row(schema, "a3", "e", 1, 2))
        assert view.metrics.tuples_rejected_full == 1

    def test_lookup_returns_copy(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        view.reference((1, 2))
        view.add_tuple((1, 2), result_row(schema, "a", "e", 1, 2))
        cached = view.lookup((1, 2))
        cached.clear()
        assert view.tuple_count((1, 2)) == 1

    def test_lookup_miss_returns_none(self, setup):
        _, eqt, _ = setup
        view = make_view(eqt)
        assert view.lookup((9, 9)) is None

    def test_eviction_drops_tuples(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt, entries=2)
        for f in (1, 2, 3):
            view.reference((f, 0))
            view.add_tuple((f, 0), result_row(schema, "a", "e", f, 0))
        assert view.entry_count == 2
        assert view.metrics.entries_evicted == 1
        view.check_invariants()

    def test_2q_staged_bcp_stores_nothing(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt, policy="2q")
        result = view.reference((1, 2))
        assert not result.admitted
        assert not view.add_tuple((1, 2), result_row(schema, "a", "e", 1, 2))
        view.reference((1, 2))  # promotes
        assert view.add_tuple((1, 2), result_row(schema, "a", "e", 1, 2))

    def test_remove_tuple_recovers_bcp(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        target = result_row(schema, "a", "e", 1, 2)
        view.reference((1, 2))
        view.add_tuple((1, 2), target)
        assert view.remove_tuple(result_row(schema, "a", "e", 1, 2))
        assert view.tuple_count((1, 2)) == 0
        assert not view.remove_tuple(target)

    def test_discard_entry(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        view.reference((1, 2))
        view.add_tuple((1, 2), result_row(schema, "a", "e", 1, 2))
        assert view.discard_entry((1, 2))
        assert not view.contains((1, 2))
        assert not view.policy.contains((1, 2))
        view.check_invariants()


class TestSizeAccounting:
    def test_bytes_grow_and_shrink(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        assert view.current_bytes == 0
        view.reference((1, 2))
        after_key = view.current_bytes
        assert after_key > 0
        target = result_row(schema, "a", "e", 1, 2)
        view.add_tuple((1, 2), target)
        assert view.current_bytes == after_key + target.byte_size()
        view.discard_entry((1, 2))
        assert view.current_bytes == 0

    def test_average_tuple_bytes(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        assert view.average_tuple_bytes == NOMINAL_TUPLE_BYTES
        view.reference((1, 2))
        target = result_row(schema, "aa", "ee", 1, 2)
        view.add_tuple((1, 2), target)
        assert view.average_tuple_bytes == target.byte_size()


class TestAuxIndexes:
    def test_entries_with_value(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt, aux=("r.a",))
        view.reference((1, 2))
        view.add_tuple((1, 2), result_row(schema, "hot", "e", 1, 2))
        assert view.entries_with_value("r.a", "hot") == [(1, 2)]
        assert view.entries_with_value("r.a", "cold") == []

    def test_rows_with_value(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt, aux=("r.a",))
        view.reference((1, 2))
        view.reference((3, 2))
        view.add_tuple((1, 2), result_row(schema, "x", "e1", 1, 2))
        view.add_tuple((3, 2), result_row(schema, "x", "e2", 3, 2))
        rows = view.rows_with_value("r.a", "x")
        assert len(rows) == 2

    def test_aux_cleaned_on_eviction(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt, entries=1, aux=("r.a",))
        view.reference((1, 2))
        view.add_tuple((1, 2), result_row(schema, "x", "e", 1, 2))
        view.reference((5, 5))  # evicts (1,2)
        assert view.entries_with_value("r.a", "x") == []

    def test_unindexed_column_raises(self, setup):
        _, eqt, _ = setup
        view = make_view(eqt)
        with pytest.raises(ViewDefinitionError):
            view.entries_with_value("r.a", "x")


class TestInvariantChecker:
    def test_detects_overfull_entry(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt, F=1)
        view.reference((1, 2))
        view.add_tuple((1, 2), result_row(schema, "a", "e", 1, 2))
        view._entries[(1, 2)].values.append(result_row(schema, "b", "e", 1, 2).values)
        with pytest.raises(ViewCapacityError):
            view.check_invariants()

    def test_detects_misfiled_tuple(self, setup):
        _, eqt, schema = setup
        view = make_view(eqt)
        view.reference((1, 2))
        misfiled = result_row(schema, "a", "e", 9, 9)
        view._capture_schema(schema)
        view._entries[(1, 2)].values.append(misfiled.values)
        with pytest.raises(ViewDefinitionError):
            view.check_invariants()
