"""Knob equivalence: the columnar pipeline must be observationally
identical to the row pipeline it replaced.

Every test builds two identical worlds — same data, same template, same
view shape — and runs the same query stream through a default
(``columnar=True``) executor and a ``columnar=False`` executor.  The
batch representation is an execution detail: partial rows must match
exactly (same tuples, same delivery order), remaining rows must match
as multisets, and the complete/degraded flags must agree.  The answers
are additionally checked against a brute-force join oracle.
"""

import random

import pytest

from repro.core import Discretization, PartialMaterializedView, PMVExecutor
from repro.core.discretize import BasicIntervals
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)

DEFAULT_R = [(i, i % 8, i % 5, f"a{i}") for i in range(40)]
DEFAULT_S = [(j % 8, j % 4, f"e{j}") for j in range(24)]


def make_db(r_rows, s_rows):
    db = Database()
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    db.create_index("r_f", "r", ["f"])
    db.create_index("r_c", "r", ["c"])
    db.create_index("s_d", "s", ["d"])
    db.create_index("s_g", "s", ["g"])
    for row in r_rows:
        db.insert("r", row)
    for row in s_rows:
        db.insert("s", row)
    return db


def eqt_template():
    return QueryTemplate(
        "Eqt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def ivt_template():
    """Eqt with an *interval-form* slot on s.g: sub-interval queries
    produce non-basic condition parts, exercising the columnar
    executor's compiled tuple-position matchers."""
    return QueryTemplate(
        "Ivt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.INTERVAL),
        ),
    )


def build_world(
    *,
    columnar,
    template_factory=eqt_template,
    grids=None,
    r_rows=DEFAULT_R,
    s_rows=DEFAULT_S,
    F=3,
    entries=8,
):
    db = make_db(r_rows, s_rows)
    template = template_factory()
    db.register_template(template)
    view = PartialMaterializedView(
        template,
        Discretization(template, grids),
        tuples_per_entry=F,
        max_entries=entries,
        aux_index_columns=("r.a", "s.e"),
    )
    return db, template, PMVExecutor(db, view, columnar=columnar)


class Pair:
    """Two identical worlds, one per pipeline."""

    def __init__(self, **world_kwargs):
        self.col_db, self.col_t, self.col_ex = build_world(
            columnar=True, **world_kwargs
        )
        self.row_db, self.row_t, self.row_ex = build_world(
            columnar=False, **world_kwargs
        )
        assert self.col_ex.columnar and not self.row_ex.columnar

    def run(self, binder, **execute_kwargs):
        col = self.col_ex.execute(binder(self.col_t), **execute_kwargs)
        row = self.row_ex.execute(binder(self.row_t), **execute_kwargs)
        return col, row


def values(rows):
    return [tuple(row.values) for row in rows]


def assert_same_answer(col, row):
    # Partial rows are delivered in O2 probe order — identical streams.
    assert values(col.partial_rows) == values(row.partial_rows)
    # Remaining rows are a multiset contract (plan order may differ).
    assert sorted(values(col.remaining_rows)) == sorted(values(row.remaining_rows))
    assert col.complete == row.complete
    assert col.degraded_reason == row.degraded_reason


def oracle(db, fs, g_test):
    r_rows = list(db.catalog.relation("r").scan_rows())
    s_rows = list(db.catalog.relation("s").scan_rows())
    return sorted(
        (r["a"], s["e"], r["f"], s["g"])
        for r in r_rows
        for s in s_rows
        if r["c"] == s["d"] and r["f"] in fs and g_test(s["g"])
    )


def eqt_binder(fs, gs):
    return lambda t: t.bind(
        [EqualityDisjunction("r.f", list(fs)), EqualityDisjunction("s.g", list(gs))]
    )


class TestEqualityWorkload:
    STREAM = [
        ([1, 3], [2]),
        ([1, 3], [2]),  # repeat: resident entries, O1 memo, plan cache
        ([0], [0]),
        ([2, 4], [1, 3]),
        ([4], [3]),
        ([0, 1, 2], [0, 1]),
        ([1, 3], [2]),  # back to the hot query
        ([7], [0]),  # empty answer (no r.f == 7)
    ]

    def test_fixed_stream(self):
        pair = Pair()
        for fs, gs in self.STREAM:
            col, row = pair.run(eqt_binder(fs, gs))
            assert_same_answer(col, row)
            assert col.complete and row.complete
            got = sorted(values(col.all_rows()))
            assert got == oracle(pair.col_db, set(fs), lambda g: g in set(gs))

    def test_randomized_stream(self):
        rng = random.Random(42)
        pair = Pair(F=2, entries=5)  # small view: evictions on both sides
        skewed_f = [0, 0, 0, 1, 1, 2, 3, 4]  # zipf-ish: hot values repeat
        skewed_g = [0, 0, 1, 1, 2, 3]
        for _ in range(80):
            fs = sorted({rng.choice(skewed_f) for _ in range(rng.randint(1, 3))})
            gs = sorted({rng.choice(skewed_g) for _ in range(rng.randint(1, 2))})
            col, row = pair.run(eqt_binder(fs, gs))
            assert_same_answer(col, row)
            got = sorted(values(col.all_rows()))
            assert got == oracle(pair.col_db, set(fs), lambda g: g in set(gs))

    def test_distinct_equivalence(self):
        # Duplicate s rows make the join emit duplicate Ls' tuples, so
        # distinct delivery actually has something to suppress.
        dup_s = DEFAULT_S + DEFAULT_S[:8]
        pair = Pair(s_rows=dup_s)
        for fs, gs in [([1, 3], [2]), ([1, 3], [2]), ([0, 2], [0, 1])]:
            col, row = pair.run(eqt_binder(fs, gs), distinct=True)
            assert_same_answer(col, row)
            got = sorted(values(col.all_rows()))
            assert got == sorted(set(got)), "distinct answer has duplicates"
            full = oracle(pair.col_db, set(fs), lambda g: g in set(gs))
            assert got == sorted(set(full))

    def test_duplicate_world_multiset(self):
        # Same duplicate world, distinct=False: the columnar ledger must
        # take its exact DuplicateSuppressor fallback and still deliver
        # the exact multiset, once per tuple.
        dup_s = DEFAULT_S + DEFAULT_S[:8]
        pair = Pair(s_rows=dup_s)
        for fs, gs in [([1, 3], [2]), ([1, 3], [2]), ([0, 2], [0, 1]), ([4], [3])]:
            col, row = pair.run(eqt_binder(fs, gs))
            assert_same_answer(col, row)
            got = sorted(values(col.all_rows()))
            assert got == oracle(pair.col_db, set(fs), lambda g: g in set(gs))


class CountdownDeadline:
    """Duck-typed deadline: unexpired for the first ``checks`` polls.

    Both pipelines poll ``expired()`` at the same protocol points (the
    O3-skip checkpoint, then once per batch checkpoint), so a countdown
    pins the degradation point without depending on wall-clock speed.
    """

    def __init__(self, checks):
        self.checks = checks

    def expired(self):
        self.checks -= 1
        return self.checks < 0


class TestDegradedAnswers:
    def test_deadline_skip_equivalence(self):
        pair = Pair()
        # Warm both views so the degraded answer is non-trivial.
        pair.run(eqt_binder([1, 3], [2]))
        col, row = pair.run(
            eqt_binder([1, 3], [2]), deadline=CountdownDeadline(0)
        )
        # An exhausted budget at the O3 checkpoint: identical partial
        # answers, nothing from full execution, explicitly incomplete.
        assert_same_answer(col, row)
        assert not col.complete and not row.complete
        assert col.degraded_reason == row.degraded_reason == "deadline-skip"
        assert col.remaining_rows == [] and row.remaining_rows == []
        assert values(col.partial_rows), "warm view delivered nothing"
        full = oracle(pair.col_db, {1, 3}, lambda g: g == 2)
        assert set(values(col.partial_rows)) <= set(full)

    def test_deadline_abandon_contract(self):
        pair = Pair()
        pair.run(eqt_binder([0, 1, 2], [0, 1]))
        binder = eqt_binder([0, 1, 2], [0, 1])
        col = pair.col_ex.execute(binder(pair.col_t), deadline=CountdownDeadline(1))
        row = pair.row_ex.execute(binder(pair.row_t), deadline=CountdownDeadline(1))
        full = oracle(pair.col_db, {0, 1, 2}, lambda g: g in {0, 1})
        for result in (col, row):
            assert not result.complete
            assert result.degraded_reason == "deadline-abandon"
            # Every delivered tuple is a true result, delivered once:
            # the degraded answer is a sub-multiset of the full answer.
            got = sorted(values(result.all_rows()))
            remaining = list(full)
            for t in got:
                assert t in remaining, f"{t!r} duplicated or fabricated"
                remaining.remove(t)
        # The immediate (O2) portion is pipeline-independent.
        assert values(col.partial_rows) == values(row.partial_rows)

    def test_abandoned_chunks_still_counted(self):
        # Degraded answers still record honest metrics on both paths.
        pair = Pair()
        pair.run(eqt_binder([1, 3], [2]))
        col, row = pair.run(
            eqt_binder([1, 3], [2]), deadline=CountdownDeadline(1)
        )
        assert col.metrics.partial_tuples == row.metrics.partial_tuples
        assert col.metrics.partial_tuples == len(col.partial_rows)


class TestIntervalSlots:
    """Sub-interval queries create non-basic parts: the columnar O2
    filter runs through ``PMVExecutor._part_matcher`` compiled tests."""

    GRIDS = {"s.g": BasicIntervals([2, 4])}

    def pair(self):
        return Pair(template_factory=ivt_template, grids=dict(self.GRIDS))

    @staticmethod
    def binder(fs, intervals):
        return lambda t: t.bind(
            [
                EqualityDisjunction("r.f", list(fs)),
                IntervalDisjunction("s.g", list(intervals)),
            ]
        )

    CASES = [
        # (fs, intervals, g-membership test)
        ([1, 3], [Interval(0, 3)], lambda g: 0 < g < 3),
        ([1, 3], [Interval(1, 3, low_inclusive=True, high_inclusive=True)],
         lambda g: 1 <= g <= 3),
        ([0, 2], [Interval(2, 4, low_inclusive=True)], lambda g: 2 <= g < 4),
        ([0, 1, 2],
         [Interval(0, 1, high_inclusive=True), Interval(2, 3, high_inclusive=True)],
         lambda g: 0 < g <= 1 or 2 < g <= 3),
    ]

    def test_sub_interval_queries_match_row_pipeline(self):
        pair = self.pair()
        for fs, intervals, g_test in self.CASES:
            # Twice: the second run probes *resident* entries, so the
            # non-basic groups filter live PMV values via the matcher.
            for _ in range(2):
                col, row = pair.run(self.binder(fs, intervals))
                assert_same_answer(col, row)
                got = sorted(values(col.all_rows()))
                assert got == oracle(pair.col_db, set(fs), g_test)
        # White-box: the non-basic groups actually reached the compiled
        # matcher memo (sub-intervals are never basic).
        assert pair.col_ex._part_matchers

    def test_exactly_basic_interval_takes_fast_path(self):
        # [2, 4) IS a basic interval: has_basic groups skip the matcher.
        pair = self.pair()
        binder = self.binder([1], [Interval(2, 4, low_inclusive=True)])
        for _ in range(2):
            col, row = pair.run(binder)
            assert_same_answer(col, row)
        assert not pair.col_ex._part_matchers

    def test_interval_distinct_equivalence(self):
        dup_s = DEFAULT_S + DEFAULT_S[:8]
        pair = Pair(
            template_factory=ivt_template, grids=dict(self.GRIDS), s_rows=dup_s
        )
        binder = self.binder([0, 1], [Interval(0, 3)])
        for _ in range(2):
            col, row = pair.run(binder, distinct=True)
            assert_same_answer(col, row)
            got = values(col.all_rows())
            assert len(got) == len(set(got))
