"""Tests for preview() (the paper's Benefit 2: early termination) and
the on_partial streaming callback."""

import pytest

from tests.conftest import brute_force_eqt, eqt_query


class TestPreview:
    def test_preview_returns_cached_partials_only(self, eqt_db, eqt, eqt_executor):
        query = eqt_query(eqt, [1], [2])
        eqt_executor.execute(query)  # warm the cell
        preview = eqt_executor.preview(query)
        assert preview.had_partial_results
        assert preview.remaining_rows == []
        full = eqt_executor.execute(query)
        partial_set = {tuple(r.values) for r in preview.partial_rows}
        full_set = {tuple(r.values) for r in full.all_rows()}
        assert partial_set <= full_set

    def test_preview_cold_is_empty(self, eqt_db, eqt, eqt_executor):
        preview = eqt_executor.preview(eqt_query(eqt, [5], [4]))
        assert preview.partial_rows == []
        assert not preview.had_partial_results

    def test_preview_spares_all_execution_io(self, eqt_db, eqt, eqt_executor):
        """Benefit 2: a terminated query costs the RDBMS nothing beyond
        the in-memory probe."""
        query = eqt_query(eqt, [1, 3], [2, 4])
        eqt_executor.execute(query)
        before = eqt_db.io_snapshot()
        probes_before = sum(
            i.probes for rel in eqt_db.catalog.relations()
            for i in eqt_db.catalog.indexes_on(rel.name)
        )
        eqt_executor.preview(query)
        after = eqt_db.io_since(before)
        probes_after = sum(
            i.probes for rel in eqt_db.catalog.relations()
            for i in eqt_db.catalog.indexes_on(rel.name)
        )
        assert after.total == 0
        assert probes_after == probes_before

    def test_preview_does_not_fill_pmv(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        query = eqt_query(eqt, [2], [3])
        eqt_executor.preview(query)
        assert eqt_pmv.stored_tuple_count == 0

    def test_preview_counts_toward_metrics(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        eqt_executor.preview(eqt_query(eqt, [1], [2]))
        assert eqt_pmv.metrics.queries == 2
        assert eqt_pmv.metrics.query_hits == 1

    def test_preview_releases_lock(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        eqt_executor.preview(eqt_query(eqt, [1], [2]))
        shared, exclusive = eqt_db.lock_manager.holders(eqt_pmv.name)
        assert shared == set() and exclusive is None

    def test_preview_then_refine_workflow(self, eqt_db, eqt, eqt_executor):
        """The exploration loop the paper motivates: preview, refine,
        then run the refined query fully."""
        broad = eqt_query(eqt, [1, 2, 3], [2, 4])
        eqt_executor.execute(broad)
        glimpse = eqt_executor.preview(broad)
        assert glimpse.had_partial_results
        refined = eqt_query(eqt, [1], [2])
        final = eqt_executor.execute(refined)
        assert sorted(tuple(r.values) for r in final.all_rows()) == brute_force_eqt(
            eqt_db, {1}, {2}
        )


class TestOnPartialStreaming:
    def test_callback_fires_before_execution(self, eqt_db, eqt, eqt_executor):
        query = eqt_query(eqt, [1], [2])
        eqt_executor.execute(query)
        events = []
        orig_plan = eqt_db.plan

        def recording_plan(q, blocking=True):
            events.append("execution-planned")
            return orig_plan(q, blocking=blocking)

        eqt_db.plan = recording_plan
        try:
            result = eqt_executor.execute(
                query, on_partial=lambda rows: events.append(("partial", len(rows)))
            )
        finally:
            eqt_db.plan = orig_plan
        assert events[0] == ("partial", len(result.partial_rows))
        assert events[1] == "execution-planned"

    def test_callback_receives_copy(self, eqt_db, eqt, eqt_executor):
        query = eqt_query(eqt, [1], [2])
        eqt_executor.execute(query)
        captured = []
        result = eqt_executor.execute(query, on_partial=captured.extend)
        captured.clear()  # mutating the delivered list must not corrupt the result
        assert result.partial_rows

    def test_callback_on_cold_query_gets_empty_list(self, eqt_db, eqt, eqt_executor):
        seen = []
        eqt_executor.execute(eqt_query(eqt, [4], [1]), on_partial=seen.append)
        assert seen == [[]]
