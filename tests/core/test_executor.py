"""Unit/integration tests for the O1/O2/O3 PMV executor."""

import pytest

from repro.core import (
    Discretization,
    MaterializedView,
    PartialMaterializedView,
    PMVExecutor,
)
from repro.engine import Database
from repro.errors import LockError, PMVError
from tests.conftest import brute_force_eqt, eqt_query


def run(executor, eqt, fs, gs, **kwargs):
    return executor.execute(eqt_query(eqt, fs, gs), **kwargs)


class TestCorrectness:
    def test_cold_query_returns_full_answer(self, eqt_db, eqt, eqt_executor):
        result = run(eqt_executor, eqt, [1, 3], [2, 4])
        assert result.partial_rows == []
        got = sorted(tuple(r.values) for r in result.all_rows())
        assert got == brute_force_eqt(eqt_db, {1, 3}, {2, 4})

    def test_warm_query_returns_same_answer_with_partials(
        self, eqt_db, eqt, eqt_executor
    ):
        run(eqt_executor, eqt, [1, 3], [2, 4])
        result = run(eqt_executor, eqt, [1, 3], [2, 4])
        assert result.had_partial_results
        got = sorted(tuple(r.values) for r in result.all_rows())
        assert got == brute_force_eqt(eqt_db, {1, 3}, {2, 4})

    def test_each_tuple_delivered_exactly_once(self, eqt_db, eqt, eqt_executor):
        run(eqt_executor, eqt, [1], [2])
        result = run(eqt_executor, eqt, [1], [2])
        # partial + remaining together must be the multiset answer.
        expected = brute_force_eqt(eqt_db, {1}, {2})
        got = sorted(tuple(r.values) for r in result.all_rows())
        assert got == expected
        # no tuple may appear in both streams beyond its multiplicity
        partial = [tuple(r.values) for r in result.partial_rows]
        for t in partial:
            assert got.count(t) >= partial.count(t)

    def test_matches_mv_oracle_across_many_queries(self, eqt_db, eqt, eqt_executor):
        oracle = MaterializedView(eqt_db, eqt)
        for fs, gs in [([0], [0]), ([1, 2], [1]), ([3, 4, 5], [2, 3]), ([1], [0, 4])]:
            query = eqt_query(eqt, fs, gs)
            result = eqt_executor.execute(query)
            assert sorted(tuple(r.values) for r in result.all_rows()) == sorted(
                tuple(r.values) for r in oracle.answer(query)
            )

    def test_user_rows_project_to_ls(self, eqt_db, eqt, eqt_executor):
        result = run(eqt_executor, eqt, [1], [2])
        for row in result.user_rows():
            assert len(row) == 2  # Ls = (r.a, s.e)

    def test_wrong_template_rejected(self, eqt_db, eqt, eqt_pmv):
        other_db = Database()
        executor = PMVExecutor(eqt_db, eqt_pmv)
        from repro.engine import (
            Column,
            INTEGER,
            QueryTemplate,
            SelectionSlot,
            SlotForm,
            EqualityDisjunction,
        )

        other_db.create_relation("t", [Column("x", INTEGER)])
        other = QueryTemplate(
            "other", ("t",), ("t.x",), (), (SelectionSlot("t", "t.x", SlotForm.EQUALITY),)
        )
        query = other.bind([EqualityDisjunction("t.x", [1])])
        with pytest.raises(PMVError):
            executor.execute(query)


class TestPMVFilling:
    def test_f_tuples_cached_per_bcp(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        run(eqt_executor, eqt, [1], [2])
        # (1, 2) has many matches but only F=2 may be cached.
        assert eqt_pmv.tuple_count((1, 2)) == 2
        eqt_pmv.check_invariants()

    def test_partial_results_come_from_cache(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        run(eqt_executor, eqt, [1], [2])
        cached = {tuple(r.values) for r in eqt_pmv.lookup((1, 2))}
        result = run(eqt_executor, eqt, [1], [2])
        assert {tuple(r.values) for r in result.partial_rows} == cached

    def test_only_query_bcps_receive_tuples(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        run(eqt_executor, eqt, [1], [2])
        assert eqt_pmv.tuple_count((3, 2)) == 0

    def test_metrics_recorded(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        run(eqt_executor, eqt, [1, 3], [2, 4])
        run(eqt_executor, eqt, [1, 3], [2, 4])
        metrics = eqt_pmv.metrics
        assert metrics.queries == 2
        assert metrics.query_hits == 1
        assert metrics.hit_probability == 0.5
        assert metrics.partial_tuples > 0
        assert metrics.overhead_seconds > 0

    def test_condition_part_count_is_h(self, eqt_db, eqt, eqt_executor):
        result = run(eqt_executor, eqt, [1, 3], [2, 4])
        assert result.metrics.condition_parts == 4

    def test_adaptation_under_changing_pattern(self, eqt_db, eqt, eqt_executor, eqt_pmv):
        # Hammer cells (0..3, 0) then switch to (0..3, 1): the PMV
        # (capacity 16) should end up serving the new pattern.
        for _ in range(4):
            for f in range(4):
                run(eqt_executor, eqt, [f], [0])
        for _ in range(6):
            for f in range(4):
                run(eqt_executor, eqt, [f], [1])
        final = run(eqt_executor, eqt, [0, 1, 2, 3], [1])
        assert final.metrics.bcp_hits == 4


class TestDistinct:
    def test_distinct_suppresses_duplicates(self, eqt_db, eqt, eqt_executor):
        # Insert a duplicate r row so the join yields duplicate results.
        eqt_db.insert("r", (1000, 1, 1, "a1"))  # same (c=1, f=1, a="a1") as id=1? craft below
        query = eqt_query(eqt, [1], [2])
        plain = eqt_executor.execute(query)
        values = [tuple(r.values) for r in plain.all_rows()]
        assert len(values) >= len(set(values))
        distinct = eqt_executor.execute(query, distinct=True)
        dvalues = [tuple(r.values) for r in distinct.all_rows()]
        assert sorted(set(values)) == sorted(dvalues)
        assert len(dvalues) == len(set(dvalues))

    def test_distinct_warm_path(self, eqt_db, eqt, eqt_executor):
        query = eqt_query(eqt, [2], [3])
        eqt_executor.execute(query, distinct=True)
        warm = eqt_executor.execute(query, distinct=True)
        values = [tuple(r.values) for r in warm.all_rows()]
        assert len(values) == len(set(values))
        plain = eqt_executor.execute(query)
        assert set(values) == {tuple(r.values) for r in plain.all_rows()}


class TestLocking:
    def test_s_lock_taken_and_released(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        run(eqt_executor, eqt, [1], [2])
        shared, exclusive = eqt_db.lock_manager.holders(eqt_pmv.name)
        assert shared == set() and exclusive is None

    def test_execute_bypasses_pmv_when_writer_holds_x(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        # A held X lock no longer kills the query: it degrades to plain
        # blocking execution with a bypass marker, and the answer is
        # still complete and correct.
        eqt_executor.lock_timeout = 0.01  # keep the test fast
        writer = eqt_db.begin()
        writer.lock_exclusive(eqt_pmv.name)
        result = run(eqt_executor, eqt, [1], [2])
        assert result.metrics.bypassed_lock
        assert result.partial_rows == []
        got = sorted(tuple(r.values) for r in result.all_rows())
        assert got == brute_force_eqt(eqt_db, {1}, {2})
        assert eqt_pmv.metrics.pmv_bypassed_lock == 1
        writer.commit()
        fresh = run(eqt_executor, eqt, [1], [2])
        assert not fresh.metrics.bypassed_lock

    def test_preview_degrades_to_empty_when_writer_holds_x(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        eqt_executor.lock_timeout = 0.01
        run(eqt_executor, eqt, [1], [2])  # warm the view
        writer = eqt_db.begin()
        writer.lock_exclusive(eqt_pmv.name)
        result = eqt_executor.preview(eqt_query(eqt, [1], [2]))
        assert result.metrics.bypassed_lock
        assert result.partial_rows == [] and result.remaining_rows == []
        writer.commit()

    def test_caller_transaction_keeps_lock_until_commit(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        txn = eqt_db.begin(read_only=True)
        run(eqt_executor, eqt, [1], [2], txn=txn)
        assert txn.holds_shared(eqt_pmv.name)
        txn.commit()
        shared, _ = eqt_db.lock_manager.holders(eqt_pmv.name)
        assert shared == set()


class TestBaseline:
    def test_execute_without_pmv(self, eqt_db, eqt, eqt_executor):
        rows, seconds = eqt_executor.execute_without_pmv(eqt_query(eqt, [1], [2]))
        assert seconds >= 0
        assert sorted(tuple(r.values) for r in rows) == brute_force_eqt(
            eqt_db, {1}, {2}
        )


class TestIntervalTemplate:
    def test_interval_slot_end_to_end(self, eqt_db):
        from repro.core.discretize import BasicIntervals
        from repro.engine import (
            IntervalDisjunction,
            Interval,
            JoinEquality,
            QueryTemplate,
            SelectionSlot,
            SlotForm,
            EqualityDisjunction,
        )

        # g in [0, 5) has id 0, [5, 10) would be id 1 etc. s.g ranges 0..4.
        template = QueryTemplate(
            "ivq",
            ("r", "s"),
            ("r.a", "s.e"),
            (JoinEquality("r", "c", "s", "d"),),
            (
                SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                SelectionSlot("s", "s.g", SlotForm.INTERVAL),
            ),
        )
        eqt_db.register_template(template)
        disc = Discretization(template, {"s.g": BasicIntervals([2, 4])})
        view = PartialMaterializedView(template, disc, tuples_per_entry=2, max_entries=8)
        executor = PMVExecutor(eqt_db, view)
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(0, 3, low_inclusive=True)]),
            ]
        )
        cold = executor.execute(query)
        warm = executor.execute(query)
        expected = sorted(tuple(r.values) for r in cold.all_rows())
        assert sorted(tuple(r.values) for r in warm.all_rows()) == expected
        assert warm.metrics.bcp_hits > 0
        view.check_invariants()


class TestOrderBy:
    def test_partial_first_ordering(self, eqt_db, eqt, eqt_executor):
        query = eqt_query(eqt, [1, 3], [2, 4])
        eqt_executor.execute(query)  # warm
        result = eqt_executor.execute(query)
        assert result.had_partial_results
        rows = result.ordered_rows(["r.a", "s.e"])
        n = len(result.partial_rows)
        head, tail = rows[:n], rows[n:]
        assert head == sorted(head, key=lambda r: (r["r.a"], r["s.e"]))
        assert tail == sorted(tail, key=lambda r: (r["r.a"], r["s.e"]))
        assert sorted(tuple(r.values) for r in rows) == sorted(
            tuple(r.values) for r in result.all_rows()
        )

    def test_global_ordering(self, eqt_db, eqt, eqt_executor):
        query = eqt_query(eqt, [1, 3], [2, 4])
        result = eqt_executor.execute(query)
        rows = result.ordered_rows(["s.e"], partial_first=False)
        keys = [r["s.e"] for r in rows]
        assert keys == sorted(keys)

    def test_descending(self, eqt_db, eqt, eqt_executor):
        query = eqt_query(eqt, [1], [2])
        result = eqt_executor.execute(query)
        rows = result.ordered_rows(["r.a"], descending=True, partial_first=False)
        keys = [r["r.a"] for r in rows]
        assert keys == sorted(keys, reverse=True)


class TestSharedContainingBcp:
    def test_split_interval_references_bcp_once(self, eqt_db):
        """Two condition parts inside one basic interval must reference
        that bcp once per query — a 2Q-staged bcp is only promoted by a
        *second query*, not by the same query's second part."""
        from repro.core.discretize import BasicIntervals
        from repro.engine import (
            EqualityDisjunction,
            Interval,
            IntervalDisjunction,
            JoinEquality,
            QueryTemplate,
            SelectionSlot,
            SlotForm,
        )

        template = QueryTemplate(
            "iv2q",
            ("r", "s"),
            ("r.a", "s.e"),
            (JoinEquality("r", "c", "s", "d"),),
            (
                SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                SelectionSlot("s", "s.g", SlotForm.INTERVAL),
            ),
        )
        eqt_db.register_template(template)
        disc = Discretization(template, {"s.g": BasicIntervals([10])})
        view = PartialMaterializedView(template, disc, 2, 8, policy="2q")
        executor = PMVExecutor(eqt_db, view)
        # (0,2) and (3,4) both live inside basic interval #0 = (-inf,10).
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(0, 2), Interval(3, 4)]),
            ]
        )
        first = executor.execute(query)
        assert first.metrics.condition_parts == 2
        # One query = one sighting: the bcp must still be staged, not
        # promoted into Am.
        assert not view.policy.contains((1, 0))
        assert view.policy.staged((1, 0))
        second = executor.execute(query)
        assert view.policy.contains((1, 0))
