"""Unit tests for the replacement policies (CLOCK, 2Q, LRU, FIFO)."""

import pytest

from repro.core.replacement import (
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    TwoQueuePolicy,
    make_policy,
)
from repro.errors import ViewCapacityError


class TestClock:
    def test_admits_immediately(self):
        policy = ClockPolicy(4)
        result = policy.reference("a")
        assert not result.resident_before
        assert result.admitted
        assert policy.contains("a")

    def test_hit_on_second_reference(self):
        policy = ClockPolicy(4)
        policy.reference("a")
        assert policy.reference("a").resident_before

    def test_capacity_enforced(self):
        policy = ClockPolicy(3)
        for key in "abcdef":
            policy.reference(key)
        assert len(policy) == 3

    def test_eviction_reported(self):
        policy = ClockPolicy(2)
        policy.reference("a")
        policy.reference("b")
        result = policy.reference("c")
        assert len(result.evicted) == 1
        assert result.evicted[0] in {"a", "b"}

    def test_second_chance(self):
        policy = ClockPolicy(3)
        for key in "abc":
            policy.reference(key)
        # First eviction sweep clears every bit, wraps, and evicts "a".
        assert policy.reference("d").evicted == ("a",)
        # Now b and c have clear bits; touching b grants it a second
        # chance, so the next eviction must pick c.
        policy.reference("b")
        result = policy.reference("e")
        assert result.evicted == ("c",)
        assert policy.contains("b")

    def test_discard(self):
        policy = ClockPolicy(4)
        policy.reference("a")
        assert policy.discard("a")
        assert not policy.contains("a")
        assert not policy.discard("a")

    def test_discard_then_refill_many_times(self):
        # Exercises the tombstone/compaction path of the ring.
        policy = ClockPolicy(8)
        for round_no in range(50):
            for i in range(8):
                policy.reference((round_no, i))
            for i in range(4):
                policy.discard((round_no, i))
        assert len(policy) <= 8

    def test_resident_keys(self):
        policy = ClockPolicy(4)
        for key in "ab":
            policy.reference(key)
        assert set(policy.resident_keys()) == {"a", "b"}


class TestTwoQueue:
    def test_first_reference_only_stages(self):
        policy = TwoQueuePolicy(4)
        result = policy.reference("a")
        assert not result.resident_before
        assert not result.admitted
        assert not policy.contains("a")
        assert policy.staged("a")

    def test_second_reference_promotes(self):
        policy = TwoQueuePolicy(4)
        policy.reference("a")
        result = policy.reference("a")
        assert not result.resident_before  # was only staged
        assert result.admitted
        assert policy.contains("a")

    def test_third_reference_hits(self):
        policy = TwoQueuePolicy(4)
        policy.reference("a")
        policy.reference("a")
        assert policy.reference("a").resident_before

    def test_a1_is_fifo_bounded(self):
        policy = TwoQueuePolicy(4, a1_ratio=0.5)  # A1 holds 2 ghosts
        policy.reference("a")
        policy.reference("b")
        policy.reference("c")  # evicts ghost "a"
        assert not policy.staged("a")
        # "a" must restart the staging protocol.
        assert not policy.reference("a").admitted

    def test_am_eviction_on_promotion(self):
        policy = TwoQueuePolicy(1, a1_ratio=2.0)
        for key in ("a", "b"):
            policy.reference(key)
            policy.reference(key)
        assert len(policy) == 1
        assert policy.contains("b")

    def test_one_hit_wonders_never_pollute_am(self):
        policy = TwoQueuePolicy(4, a1_ratio=1.0)
        for i in range(100):
            policy.reference(f"scan-{i}")
        assert len(policy) == 0

    def test_discard_clears_both_queues(self):
        policy = TwoQueuePolicy(4)
        policy.reference("a")          # staged
        policy.discard("a")
        assert not policy.staged("a")
        policy.reference("b")
        policy.reference("b")          # resident
        assert policy.discard("b")
        assert not policy.contains("b")

    def test_invalid_a1_ratio(self):
        with pytest.raises(ViewCapacityError):
            TwoQueuePolicy(4, a1_ratio=0)


class TestLRU:
    def test_evicts_least_recent(self):
        policy = LRUPolicy(2)
        policy.reference("a")
        policy.reference("b")
        policy.reference("a")  # refresh a
        result = policy.reference("c")
        assert result.evicted == ("b",)

    def test_discard(self):
        policy = LRUPolicy(2)
        policy.reference("a")
        assert policy.discard("a")
        assert not policy.discard("a")


class TestFIFO:
    def test_hits_do_not_refresh(self):
        policy = FIFOPolicy(2)
        policy.reference("a")
        policy.reference("b")
        policy.reference("a")  # no refresh under FIFO
        result = policy.reference("c")
        assert result.evicted == ("a",)

    def test_discard_then_evict_skips_stale(self):
        policy = FIFOPolicy(2)
        policy.reference("a")
        policy.reference("b")
        policy.discard("a")
        result = policy.reference("c")
        assert result.evicted == ()  # room was free after discard
        assert policy.contains("b") and policy.contains("c")


class TestCommon:
    @pytest.mark.parametrize("name", ["clock", "2q", "lru", "fifo"])
    def test_factory(self, name):
        policy = make_policy(name, 8)
        policy.reference("x")
        assert policy.references == 1

    def test_unknown_policy(self):
        with pytest.raises(ViewCapacityError):
            make_policy("arc", 8)

    @pytest.mark.parametrize("name", ["clock", "2q", "lru", "fifo"])
    def test_capacity_never_exceeded(self, name):
        policy = make_policy(name, 5)
        for i in range(200):
            policy.reference(i % 37)
        assert len(policy) <= 5

    @pytest.mark.parametrize("name", ["clock", "2q", "lru", "fifo"])
    def test_hit_ratio_counts(self, name):
        policy = make_policy(name, 5)
        for _ in range(10):
            policy.reference("hot")
        assert policy.hit_ratio > 0.5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ViewCapacityError):
            ClockPolicy(0)


class TestEvictionGuards:
    """Regression tests for the tombstone infinite-spin bug (PR 3):
    ``_ClockCore.evict`` on a ring of nothing but tombstones must
    return ``None``, never spin."""

    def test_clock_force_evict_empty(self):
        policy = ClockPolicy(4)
        assert policy.force_evict() is None

    def test_clock_force_evict_after_discarding_everything(self):
        policy = ClockPolicy(4)
        for key in "abcd":
            policy.reference(key)
        for key in "abcd":
            policy.discard(key)
        # The ring now holds only tombstones: must terminate, not spin.
        assert policy.force_evict() is None
        assert len(policy) == 0

    def test_clock_force_evict_drains_then_none(self):
        policy = ClockPolicy(3)
        for key in "abc":
            policy.reference(key)
        drained = {policy.force_evict() for _ in range(3)}
        assert drained == {"a", "b", "c"}
        assert policy.force_evict() is None

    def test_two_queue_force_evict_empty(self):
        policy = TwoQueuePolicy(4)
        assert policy.force_evict() is None

    def test_two_queue_force_evict_after_discards(self):
        policy = TwoQueuePolicy(4)
        for key in "abcd":
            policy.reference(key)
        for key in "abcd":
            policy.discard(key)
        assert policy.force_evict() is None

    def test_reference_after_mass_discard_still_admits(self):
        policy = ClockPolicy(2)
        for key in "ab":
            policy.reference(key)
        for key in "ab":
            policy.discard(key)
        result = policy.reference("c")
        assert result.admitted and result.evicted == ()
