"""Unit tests for the multi-PMV manager."""

import pytest

from repro.core.manager import PMVManager
from repro.errors import PMVError
from repro.workload import make_t1, make_t2
from tests.conftest import eqt_query


@pytest.fixture
def manager(eqt_db, eqt):
    m = PMVManager(eqt_db)
    m.create_view(eqt, tuples_per_entry=2, max_entries=16)
    return m


class TestLifecycle:
    def test_create_registers_template(self, tiny_tpcr):
        manager = PMVManager(tiny_tpcr)
        manager.create_view(make_t1())
        assert tiny_tpcr.catalog.template("T1") is not None
        assert manager.template_names() == ["T1"]

    def test_duplicate_rejected(self, manager, eqt):
        with pytest.raises(PMVError):
            manager.create_view(eqt)

    def test_unknown_relations_rejected(self, eqt_db):
        from repro.engine import QueryTemplate, SelectionSlot, SlotForm

        ghost = QueryTemplate(
            "ghost", ("nope",), ("nope.x",), (),
            (SelectionSlot("nope", "nope.x", SlotForm.EQUALITY),),
        )
        with pytest.raises(PMVError):
            PMVManager(eqt_db).create_view(ghost)

    def test_drop_detaches_maintenance(self, manager, eqt_db, eqt):
        view = manager.view("Eqt")
        manager.execute(eqt_query(eqt, [1], [2]))
        manager.drop_view("Eqt")
        deletes_before = view.metrics.maintenance_deletes
        eqt_db.delete_where("r", lambda row: row["id"] == 0)
        assert view.metrics.maintenance_deletes == deletes_before
        with pytest.raises(PMVError):
            manager.view("Eqt")

    def test_drop_unknown_rejected(self, manager):
        with pytest.raises(PMVError):
            manager.drop_view("ghost")


class TestRouting:
    def test_routes_by_template(self, tiny_tpcr):
        from repro.engine import EqualityDisjunction

        manager = PMVManager(tiny_tpcr)
        t1, t2 = make_t1(), make_t2()
        manager.create_view(t1, max_entries=32)
        manager.create_view(t2, max_entries=32)
        dates = sorted(
            {o["orderdate"] for o in tiny_tpcr.catalog.relation("orders").scan_rows()}
        )
        q1 = t1.bind(
            [
                EqualityDisjunction("orders.orderdate", dates[:2]),
                EqualityDisjunction("lineitem.suppkey", [1, 2]),
            ]
        )
        q2 = t2.bind(
            [
                EqualityDisjunction("orders.orderdate", dates[:2]),
                EqualityDisjunction("lineitem.suppkey", [1, 2]),
                EqualityDisjunction("customer.nationkey", [0, 1]),
            ]
        )
        manager.execute(q1)
        manager.execute(q2)
        assert manager.view("T1").metrics.queries == 1
        assert manager.view("T2").metrics.queries == 1

    def test_unregistered_template_rejected(self, eqt_db, eqt, manager):
        from repro.engine import Column, INTEGER, QueryTemplate, SelectionSlot, SlotForm
        from repro.engine import EqualityDisjunction

        eqt_db.create_relation("u", [Column("x", INTEGER)])
        other = QueryTemplate(
            "other", ("u",), ("u.x",), (), (SelectionSlot("u", "u.x", SlotForm.EQUALITY),)
        )
        with pytest.raises(PMVError):
            manager.execute(other.bind([EqualityDisjunction("u.x", [1])]))

    def test_results_match_direct_executor(self, manager, eqt_db, eqt):
        query = eqt_query(eqt, [1, 3], [2, 4])
        via_manager = manager.execute(query)
        from tests.conftest import brute_force_eqt

        assert sorted(tuple(r.values) for r in via_manager.all_rows()) == (
            brute_force_eqt(eqt_db, {1, 3}, {2, 4})
        )


class TestAccounting:
    def test_total_bytes_and_summary(self, manager, eqt):
        manager.execute(eqt_query(eqt, [1], [2]))
        assert manager.total_bytes > 0
        [row] = manager.summary()
        assert row["template"] == "Eqt"
        assert row["queries"] == 1
        assert row["tuples"] > 0
        assert len(manager) == 1

    def test_check_invariants(self, manager, eqt):
        for f in range(4):
            manager.execute(eqt_query(eqt, [f], [0]))
        manager.check_invariants()

    def test_maintenance_wired_through_manager(self, manager, eqt_db, eqt):
        manager.execute(eqt_query(eqt, [1], [2]))
        view = manager.view("Eqt")
        assert view.tuple_count((1, 2)) == 2
        eqt_db.delete_where("s", lambda row: row["g"] == 2)
        assert view.tuple_count((1, 2)) == 0
