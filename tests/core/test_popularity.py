"""Unit tests for popularity tracking and ranked execution."""

import pytest

from repro.core import PopularityTracker, RankedPMVExecutor
from repro.engine.datatypes import INTEGER
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.errors import PMVError
from tests.conftest import eqt_query


@pytest.fixture
def schema():
    return Schema([Column("a", INTEGER)])


def row(schema, value):
    return Row((value,), schema)


class TestTracker:
    def test_counts_accumulate(self, schema):
        tracker = PopularityTracker(capacity=10)
        for _ in range(3):
            tracker.record(row(schema, 1))
        tracker.record(row(schema, 2))
        assert tracker.popularity(row(schema, 1)) == 3
        assert tracker.popularity(row(schema, 2)) == 1
        assert tracker.popularity(row(schema, 9)) == 0

    def test_top(self, schema):
        tracker = PopularityTracker(capacity=10)
        for value, count in [(1, 5), (2, 3), (3, 8)]:
            tracker.record(row(schema, value), amount=count)
        top = tracker.top(2)
        assert [r.values[0] for r, _ in top] == [3, 1]
        assert [count for _, count in top] == [8, 5]

    def test_bounded_capacity_space_saving(self, schema):
        tracker = PopularityTracker(capacity=3)
        for value in range(3):
            tracker.record(row(schema, value), amount=value + 1)  # counts 1,2,3
        tracker.record(row(schema, 99))  # evicts the min (count 1), inherits it
        assert len(tracker) == 3
        assert tracker.popularity(row(schema, 99)) == 2  # inherited 1 + 1
        assert tracker.popularity(row(schema, 0)) == 0

    def test_heavy_hitters_survive_churn(self, schema):
        tracker = PopularityTracker(capacity=5)
        for _ in range(50):
            tracker.record(row(schema, 1))
        for value in range(100, 140):
            tracker.record(row(schema, value))
        assert tracker.popularity(row(schema, 1)) >= 50

    def test_invalid_capacity(self):
        with pytest.raises(PMVError):
            PopularityTracker(capacity=0)


class TestRankedExecutor:
    def test_partial_rows_lead(self, eqt_db, eqt, eqt_executor):
        ranked = RankedPMVExecutor(eqt_executor)
        query = eqt_query(eqt, [1, 3], [2, 4])
        ranked.execute(query)  # warm
        result = ranked.execute(query)
        assert result.had_partial_results
        n_partial = len(result.underlying.partial_rows)
        assert result.ranked_rows[:n_partial] == sorted(
            result.underlying.partial_rows,
            key=lambda r: -ranked.tracker.popularity(r),
        )

    def test_ranked_rows_are_complete_answer(self, eqt_db, eqt, eqt_executor):
        ranked = RankedPMVExecutor(eqt_executor)
        query = eqt_query(eqt, [1], [2])
        result = ranked.execute(query)
        assert sorted(tuple(r.values) for r in result.ranked_rows) == sorted(
            tuple(r.values) for r in result.underlying.all_rows()
        )

    def test_popular_tuples_rank_first(self, eqt_db, eqt, eqt_executor):
        ranked = RankedPMVExecutor(eqt_executor)
        hot_query = eqt_query(eqt, [1], [2])
        wide_query = eqt_query(eqt, [1, 3], [2, 4])
        hot_values = {tuple(r.values) for r in ranked.execute(hot_query).ranked_rows}
        for _ in range(4):
            ranked.execute(hot_query)
        result = ranked.execute(wide_query)
        n_hot = len(hot_values)
        leading = {tuple(r.values) for r in result.ranked_rows[:n_hot]}
        assert leading == hot_values
