"""Unit tests for condition parts and basic condition parts."""

import pytest

from repro.core.condition import (
    BasicConditionPart,
    ConditionPart,
    EqualityDim,
    IntervalDim,
)
from repro.engine.datatypes import INTEGER
from repro.engine.predicate import Interval
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.errors import ConditionError


@pytest.fixture
def schema():
    return Schema(
        [Column("f", INTEGER), Column("g", INTEGER)], relation_name="r"
    )


def basic(f_value=1, g_interval=(0, 10), g_id=0):
    return BasicConditionPart(
        (
            EqualityDim("r.f", f_value),
            IntervalDim("r.g", Interval(*g_interval), g_id),
        )
    )


class TestDimensions:
    def test_equality_dim(self, schema):
        dim = EqualityDim("r.f", 3)
        assert dim.matches(Row((3, 0), schema))
        assert not dim.matches(Row((4, 0), schema))
        assert dim.contains_value(3)

    def test_interval_dim(self, schema):
        dim = IntervalDim("r.g", Interval(2, 8), basic_id=4)
        assert dim.matches(Row((0, 5), schema))
        assert not dim.matches(Row((0, 8), schema))
        assert dim.basic_id == 4


class TestBasicConditionPart:
    def test_key_stores_values_and_interval_ids(self):
        bcp = basic(f_value=7, g_interval=(10, 20), g_id=3)
        assert bcp.key == (7, 3)

    def test_matches_row(self, schema):
        bcp = basic(f_value=1, g_interval=(0, 10))
        assert bcp.matches(Row((1, 5), schema))
        assert not bcp.matches(Row((1, 15), schema))
        assert not bcp.matches(Row((2, 5), schema))

    def test_arity(self):
        assert basic().arity == 2

    def test_hashable(self):
        assert basic() == basic()
        assert hash(basic()) == hash(basic())


class TestConditionPart:
    def test_basic_detection_when_equal_to_containing(self):
        containing = basic(g_interval=(0, 10))
        part = ConditionPart(containing.dims, containing)
        assert part.is_basic

    def test_non_basic_when_interval_is_narrower(self):
        containing = basic(g_interval=(0, 10))
        part = ConditionPart(
            (EqualityDim("r.f", 1), IntervalDim("r.g", Interval(2, 5), 0)),
            containing,
        )
        assert not part.is_basic

    def test_matches_uses_own_dims(self, schema):
        containing = basic(g_interval=(0, 10))
        part = ConditionPart(
            (EqualityDim("r.f", 1), IntervalDim("r.g", Interval(2, 5), 0)),
            containing,
        )
        assert part.matches(Row((1, 3), schema))
        assert not part.matches(Row((1, 7), schema))  # in bcp but not in cp

    def test_contained_in(self):
        containing = basic(g_interval=(0, 10))
        part = ConditionPart(
            (EqualityDim("r.f", 1), IntervalDim("r.g", Interval(2, 5), 0)),
            containing,
        )
        assert part.contained_in(containing)
        other = basic(f_value=2, g_interval=(0, 10))
        assert not part.contained_in(other)
        narrower = BasicConditionPart(
            (EqualityDim("r.f", 1), IntervalDim("r.g", Interval(3, 4), 0))
        )
        assert not part.contained_in(narrower)

    def test_contained_in_equality_inside_interval(self):
        container = BasicConditionPart(
            (IntervalDim("r.f", Interval(0, 10), 0), EqualityDim("r.g", 5))
        )
        part = ConditionPart(
            (EqualityDim("r.f", 3), EqualityDim("r.g", 5)), container
        )
        assert part.contained_in(container)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConditionError):
            ConditionPart((EqualityDim("r.f", 1),), basic())

    def test_contained_in_arity_mismatch_false(self):
        part = ConditionPart(basic().dims, basic())
        single = BasicConditionPart((EqualityDim("r.f", 1),))
        assert not part.contained_in(single)
