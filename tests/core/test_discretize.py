"""Unit tests for dividing values, basic intervals, and trace learning."""

import pytest

from repro.core.discretize import BasicIntervals, Discretization, learn_dividing_values
from repro.engine.datatypes import MINUS_INFINITY, PLUS_INFINITY
from repro.engine.predicate import Interval, JoinEquality
from repro.engine.template import QueryTemplate, SelectionSlot, SlotForm
from repro.errors import DiscretizationError


class TestBasicIntervals:
    def test_count_is_dividers_plus_one(self):
        grid = BasicIntervals([10, 20, 30])
        assert grid.count == 4

    def test_intervals_cover_and_do_not_overlap(self):
        grid = BasicIntervals([10, 20], low=0, high=100)
        intervals = grid.all_intervals()
        for a, b in zip(intervals, intervals[1:]):
            assert not a.overlaps(b)
        # Every in-range value belongs to exactly one interval.
        for value in (1, 10, 15, 20, 99):
            owners = [iv for iv in intervals if iv.contains_value(value)]
            assert len(owners) == 1

    def test_id_for_value(self):
        grid = BasicIntervals([10, 20, 30])
        assert grid.id_for_value(5) == 0
        assert grid.id_for_value(10) == 1  # boundaries belong to the right
        assert grid.id_for_value(25) == 2
        assert grid.id_for_value(1000) == 3

    def test_id_for_value_respects_bounds(self):
        grid = BasicIntervals([10], low=0, high=20)
        with pytest.raises(DiscretizationError):
            grid.id_for_value(-1)
        with pytest.raises(DiscretizationError):
            grid.id_for_value(20)

    def test_interval_lookup(self):
        grid = BasicIntervals([10, 20])
        assert grid.interval(1) == Interval(10, 20, low_inclusive=True)
        with pytest.raises(DiscretizationError):
            grid.interval(5)

    def test_overlapping_ids(self):
        grid = BasicIntervals([10, 20, 30])
        assert grid.overlapping_ids(Interval(5, 25)) == [0, 1, 2]
        assert grid.overlapping_ids(Interval(10, 20)) == [1]
        assert grid.overlapping_ids(Interval(MINUS_INFINITY, PLUS_INFINITY)) == [0, 1, 2, 3]

    def test_string_dividing_values(self):
        grid = BasicIntervals(["g", "n"])
        assert grid.id_for_value("apple") == 0
        assert grid.id_for_value("grape") == 1
        assert grid.id_for_value("zebra") == 2

    def test_unsorted_rejected(self):
        with pytest.raises(DiscretizationError):
            BasicIntervals([20, 10])

    def test_duplicates_rejected(self):
        with pytest.raises(DiscretizationError):
            BasicIntervals([10, 10])

    def test_out_of_range_divider_rejected(self):
        with pytest.raises(DiscretizationError):
            BasicIntervals([5], low=10, high=20)
        with pytest.raises(DiscretizationError):
            BasicIntervals([25], low=10, high=20)

    def test_empty_rejected(self):
        with pytest.raises(DiscretizationError):
            BasicIntervals([])


@pytest.fixture
def interval_template():
    return QueryTemplate(
        "qt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.INTERVAL),
        ),
    )


class TestDiscretization:
    def test_requires_grid_for_interval_slots(self, interval_template):
        with pytest.raises(DiscretizationError):
            Discretization(interval_template)

    def test_grid_lookup(self, interval_template):
        grid = BasicIntervals([10, 20])
        disc = Discretization(interval_template, {"s.g": grid})
        assert disc.grid("s.g") is grid
        assert disc.has_grid("s.g")
        assert not disc.has_grid("r.f")

    def test_grid_on_equality_slot_rejected(self, interval_template):
        with pytest.raises(DiscretizationError):
            Discretization(
                interval_template,
                {"r.f": BasicIntervals([1]), "s.g": BasicIntervals([10])},
            )

    def test_grid_on_unknown_column_rejected(self, interval_template):
        with pytest.raises(DiscretizationError):
            Discretization(
                interval_template,
                {"s.zzz": BasicIntervals([10]), "s.g": BasicIntervals([10])},
            )

    def test_missing_grid_lookup_raises(self, interval_template):
        disc = Discretization(interval_template, {"s.g": BasicIntervals([10])})
        with pytest.raises(DiscretizationError):
            disc.grid("r.f")


class TestLearnDividingValues:
    def test_equal_frequency_split(self):
        values = list(range(100))
        cuts = learn_dividing_values(values, bins=4)
        assert cuts == [25, 50, 75]

    def test_skewed_trace_collapses_duplicates(self):
        values = [1] * 90 + [2] * 10
        cuts = learn_dividing_values(values, bins=4)
        assert cuts in ([1], [1, 2])

    def test_usable_as_grid(self):
        cuts = learn_dividing_values(range(1000), bins=10)
        grid = BasicIntervals(cuts)
        assert grid.count == len(cuts) + 1

    def test_empty_trace_rejected(self):
        with pytest.raises(DiscretizationError):
            learn_dividing_values([], bins=2)

    def test_single_bin_rejected(self):
        with pytest.raises(DiscretizationError):
            learn_dividing_values([1, 2], bins=1)
