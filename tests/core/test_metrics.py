"""Unit tests for PMV metrics aggregation."""

from repro.core.metrics import PMVMetrics, QueryMetrics


class TestQueryMetrics:
    def test_hit_definition_is_partial_hit(self):
        assert QueryMetrics(bcp_hits=1).hit
        assert QueryMetrics(bcp_hits=5).hit
        assert not QueryMetrics(bcp_hits=0).hit

    def test_total_tuples(self):
        metrics = QueryMetrics(partial_tuples=3, remaining_tuples=7)
        assert metrics.total_tuples == 10


class TestPMVMetrics:
    def test_hit_probability(self):
        agg = PMVMetrics()
        agg.record_query(QueryMetrics(bcp_hits=1))
        agg.record_query(QueryMetrics(bcp_hits=0))
        agg.record_query(QueryMetrics(bcp_hits=2))
        assert agg.hit_probability == 2 / 3

    def test_empty_hit_probability_zero(self):
        assert PMVMetrics().hit_probability == 0.0

    def test_means(self):
        agg = PMVMetrics()
        agg.record_query(QueryMetrics(overhead_seconds=0.2, execution_seconds=2.0))
        agg.record_query(QueryMetrics(overhead_seconds=0.4, execution_seconds=4.0))
        import pytest

        assert agg.mean_overhead_seconds == pytest.approx(0.3)
        assert agg.mean_execution_seconds == pytest.approx(3.0)

    def test_per_query_kept_only_when_enabled(self):
        agg = PMVMetrics()
        agg.record_query(QueryMetrics())
        assert agg.per_query == []
        agg.keep_per_query = True
        agg.record_query(QueryMetrics())
        assert len(agg.per_query) == 1

    def test_reset(self):
        agg = PMVMetrics(keep_per_query=True)
        agg.record_query(QueryMetrics(bcp_hits=1, partial_tuples=4))
        agg.tuples_cached = 9
        agg.reset()
        assert agg.queries == 0
        assert agg.partial_tuples == 0
        assert agg.tuples_cached == 0
        assert agg.per_query == []
        assert agg.hit_probability == 0.0
