"""Unit tests for Operation O1 (Cselect decomposition) and bcp recovery."""

import pytest

from repro.core.condition import EqualityDim, IntervalDim
from repro.core.decompose import bcp_of_row, decompose
from repro.core.discretize import BasicIntervals, Discretization
from repro.engine.datatypes import INTEGER
from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
)
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.engine.template import QueryTemplate, SelectionSlot, SlotForm
from repro.errors import ConditionError


@pytest.fixture
def template():
    return QueryTemplate(
        "qt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.INTERVAL),
        ),
    )


@pytest.fixture
def disc(template):
    return Discretization(template, {"s.g": BasicIntervals([10, 20, 30])})


class TestEqualityDecomposition:
    def test_pure_equality_parts_are_basic(self, template, disc):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1, 2]),
                # Exactly basic interval #1, [10, 20).
                IntervalDisjunction(
                    "s.g", [Interval(10, 20, low_inclusive=True)]
                ),
            ]
        )
        parts = decompose(query, disc)
        assert len(parts) == 2
        assert all(part.is_basic for part in parts)
        assert {part.containing.key for part in parts} == {(1, 1), (2, 1)}

    def test_open_interval_on_basic_bounds_is_not_basic(self, template, disc):
        # (10, 20) open is a strict subset of the half-open basic
        # interval [10, 20), so the part is contained-in, not basic.
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(10, 20)]),
            ]
        )
        parts = decompose(query, disc)
        assert len(parts) == 1
        assert not parts[0].is_basic
        assert parts[0].containing.key == (1, 1)


class TestIntervalDecomposition:
    def test_spanning_interval_splits_per_basic_interval(self, template, disc):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(5, 25)]),
            ]
        )
        parts = decompose(query, disc)
        # (5,25) overlaps basic intervals 0,1,2 -> 3 parts.
        assert len(parts) == 3
        ids = [part.containing.key[1] for part in parts]
        assert ids == [0, 1, 2]
        # The middle part covers basic interval 1 fully -> basic.
        assert parts[1].is_basic
        # The edge parts are strict subsets -> not basic.
        assert not parts[0].is_basic
        assert not parts[2].is_basic

    def test_part_dims_are_intersections(self, template, disc):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(5, 15)]),
            ]
        )
        parts = decompose(query, disc)
        first = parts[0].dims[1]
        assert isinstance(first, IntervalDim)
        assert first.interval == Interval(5, 10)
        second = parts[1].dims[1]
        assert second.interval == Interval(10, 15, low_inclusive=True)

    def test_multiple_query_intervals(self, template, disc):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(0, 5), Interval(25, 28)]),
            ]
        )
        parts = decompose(query, disc)
        assert len(parts) == 2
        assert [p.containing.key[1] for p in parts] == [0, 2]

    def test_cartesian_product_count(self, template, disc):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1, 2, 3]),
                IntervalDisjunction("s.g", [Interval(5, 25)]),  # 3 basic intervals
            ]
        )
        parts = decompose(query, disc)
        assert len(parts) == 9

    def test_parts_are_non_overlapping(self, template, disc):
        schema = Schema([Column("f", INTEGER), Column("g", INTEGER)], relation_name=None)
        # Alias qualified names used by dims.
        schema._positions["r.f"] = 0
        schema._positions["s.g"] = 1
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1, 2]),
                IntervalDisjunction("s.g", [Interval(5, 25)]),
            ]
        )
        parts = decompose(query, disc)
        for g in range(6, 25, 2):
            row = Row((1, g), schema)
            owners = [p for p in parts if p.matches(row)]
            assert len(owners) == 1, f"value {g} owned by {len(owners)} parts"

    def test_wrong_discretization_rejected(self, template, disc):
        other = QueryTemplate(
            "other",
            ("r",),
            ("r.a",),
            (),
            (SelectionSlot("r", "r.f", SlotForm.EQUALITY),),
        )
        other_disc = Discretization(other)
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(5, 15)]),
            ]
        )
        with pytest.raises(ConditionError):
            decompose(query, other_disc)


class TestBcpOfRow:
    @pytest.fixture
    def result_row(self):
        schema = Schema(
            [Column("a", INTEGER), Column("e", INTEGER), Column("f", INTEGER), Column("g", INTEGER)]
        )
        schema._positions["r.a"] = 0
        schema._positions["s.e"] = 1
        schema._positions["r.f"] = 2
        schema._positions["s.g"] = 3
        return Row((100, 200, 2, 15), schema)

    def test_recovers_containing_bcp(self, template, disc, result_row):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [2]),
                IntervalDisjunction("s.g", [Interval(5, 25)]),
            ]
        )
        bcp = bcp_of_row(result_row, query, disc)
        assert bcp.key == (2, 1)
        assert isinstance(bcp.dims[0], EqualityDim)
        assert isinstance(bcp.dims[1], IntervalDim)
        assert bcp.dims[1].interval == Interval(10, 20, low_inclusive=True)

    def test_recovered_bcp_matches_row(self, template, disc, result_row):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [2]),
                IntervalDisjunction("s.g", [Interval(5, 25)]),
            ]
        )
        bcp = bcp_of_row(result_row, query, disc)
        assert bcp.matches(result_row)
