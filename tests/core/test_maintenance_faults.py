"""Injected failures inside deferred PMV maintenance.

The two maintenance fault sites:

- ``maintenance.prepare`` fires in the prepare phase, before the X
  lock and before the base write — an injected failure there must
  abort the whole statement with *nothing* changed (base, WAL, PMV);
- ``maintenance.apply`` fires in the stale-tuple removal, after the
  base write and its WAL append — an injected failure there leaves the
  statement durable, and the maintainer's fail-safe must clear the PMV
  so it cannot serve a single stale tuple (probing every bcp against
  the full-query reference proves it).

Both are exercised under both maintenance strategies.
"""

import pytest

from repro.core import Discretization, MaintenanceStrategy, PMVManager
from repro.engine import WriteAheadLog
from repro.errors import FaultInjectionError
from repro.faults import (
    FaultInjector,
    FaultMode,
    FaultPlan,
    check_view_against_database,
)
from tests.conftest import brute_force_eqt, eqt_query

STRATEGIES = [MaintenanceStrategy.DELTA_JOIN, MaintenanceStrategy.AUX_INDEX]


@pytest.fixture
def walled_eqt_db(eqt_db):
    """The shared Figure 1 database with an in-memory WAL attached, so
    the tests can assert whether a statement was logged."""
    eqt_db.wal = WriteAheadLog()
    return eqt_db


def _managed(database, template, strategy):
    manager = PMVManager(database, maintenance_strategy=strategy)
    view = manager.create_view(
        template,
        Discretization(template),
        tuples_per_entry=2,
        max_entries=16,
        aux_index_columns=("r.a", "s.e"),
    )
    # Warm the cache so maintenance has something to invalidate.
    for f, g in [(0, 0), (1, 1), (2, 2), (3, 0), (4, 1)]:
        manager.execute(eqt_query(template, [f], [g]))
    assert view.stored_tuple_count > 0
    return manager, view


def _arm(database, site, mode):
    injector = FaultInjector(FaultPlan.crash_at(site, 1, mode))
    database.fault_hook = injector.fire
    return injector


def _first_r_row(database):
    return next(iter(database.catalog.relation("r").scan()))


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestPrepareFailure:
    def test_statement_aborts_with_nothing_changed(
        self, walled_eqt_db, eqt, strategy
    ):
        database = walled_eqt_db
        manager, view = _managed(database, eqt, strategy)
        row_id, row = _first_r_row(database)
        rows_before = database.catalog.relation("r").row_count
        wal_before = len(database.wal)
        tuples_before = view.stored_tuple_count
        _arm(database, "maintenance.prepare", FaultMode.ERROR)

        with pytest.raises(FaultInjectionError):
            database.delete("r", row_id)

        # Nothing happened: the fault fired before the X lock and
        # before the heap was touched.
        assert database.catalog.relation("r").row_count == rows_before
        assert tuple(database.catalog.relation("r").fetch(row_id).values) == tuple(
            row.values
        )
        assert len(database.wal) == wal_before
        assert view.stored_tuple_count == tuples_before
        check_view_against_database(database, view)

    def test_no_lock_is_leaked(self, walled_eqt_db, eqt, strategy):
        database = walled_eqt_db
        _managed(database, eqt, strategy)
        row_id, _ = _first_r_row(database)
        _arm(database, "maintenance.prepare", FaultMode.ERROR)
        with pytest.raises(FaultInjectionError):
            database.delete("r", row_id)
        database.fault_hook = None
        # A leaked X lock (or a stuck pending maintenance txn) would
        # wedge the very next statement.
        database.delete("r", row_id)

    def test_update_aborts_cleanly_too(self, walled_eqt_db, eqt, strategy):
        database = walled_eqt_db
        manager, view = _managed(database, eqt, strategy)
        row_id, row = _first_r_row(database)
        wal_before = len(database.wal)
        _arm(database, "maintenance.prepare", FaultMode.ERROR)
        with pytest.raises(FaultInjectionError):
            database.update("r", row_id, a="changed")
        assert database.catalog.relation("r").fetch(row_id)["a"] == row["a"]
        assert len(database.wal) == wal_before
        check_view_against_database(database, view)


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestApplyFailure:
    def test_failsafe_clears_every_stale_entry(self, walled_eqt_db, eqt, strategy):
        database = walled_eqt_db
        manager, view = _managed(database, eqt, strategy)
        row_id, _ = _first_r_row(database)
        rows_before = database.catalog.relation("r").row_count
        wal_before = len(database.wal)
        _arm(database, "maintenance.apply", FaultMode.ERROR)

        with pytest.raises(FaultInjectionError):
            database.delete("r", row_id)

        # The base statement is durable: it was applied and logged
        # before maintenance ran.
        assert database.catalog.relation("r").row_count == rows_before - 1
        assert len(database.wal) == wal_before + 1
        # The fail-safe wiped the view: zero entries means zero stale
        # entries, and an empty PMV is always a correct PMV.
        assert view.entry_count == 0
        assert view.stored_tuple_count == 0
        assert view.metrics.maintenance_failsafe_clears == 1
        check_view_against_database(database, view)

    def test_view_refills_correctly_afterwards(self, walled_eqt_db, eqt, strategy):
        database = walled_eqt_db
        manager, view = _managed(database, eqt, strategy)
        row_id, _ = _first_r_row(database)
        _arm(database, "maintenance.apply", FaultMode.ERROR)
        with pytest.raises(FaultInjectionError):
            database.delete("r", row_id)
        database.fault_hook = None

        # Probe every bcp the workload touches against the oracle.
        for f in range(6):
            for g in range(5):
                result = manager.execute(eqt_query(eqt, [f], [g]))
                got = sorted(
                    (row["r.a"], row["s.e"]) for row in result.all_rows()
                )
                want = sorted(
                    (a, e) for a, e, _, _ in brute_force_eqt(database, [f], [g])
                )
                assert got == want, f"stale answer for f={f}, g={g}"
        assert view.stored_tuple_count > 0
        check_view_against_database(database, view)

    def test_no_pending_txn_survives(self, walled_eqt_db, eqt, strategy):
        database = walled_eqt_db
        manager, _ = _managed(database, eqt, strategy)
        row_id, _ = _first_r_row(database)
        _arm(database, "maintenance.apply", FaultMode.ERROR)
        with pytest.raises(FaultInjectionError):
            database.delete("r", row_id)
        database.fault_hook = None
        # The maintainer committed its prepare-phase txn in the unwind;
        # the next statement must not deadlock on a leaked X lock.
        next_id, _ = _first_r_row(database)
        database.delete("r", next_id)


class TestFaultAccounting:
    def test_injector_counts_and_fires_once(self, walled_eqt_db, eqt):
        database = walled_eqt_db
        _managed(database, eqt, MaintenanceStrategy.DELTA_JOIN)
        injector = _arm(database, "maintenance.apply", FaultMode.ERROR)
        row_id, _ = _first_r_row(database)
        with pytest.raises(FaultInjectionError):
            database.delete("r", row_id)
        assert [spec.describe() for spec in injector.fired] == [
            "maintenance.apply:1:error"
        ]
        # The plan is spent: later statements reach the site unharmed.
        next_id, _ = _first_r_row(database)
        database.delete("r", next_id)
        assert injector.counts["maintenance.apply"] >= 2
