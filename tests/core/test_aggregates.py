"""Unit tests for aggregate queries over PMVs (Section 3.6)."""

import pytest

from repro.core import AggregatePMVExecutor, AggregateSpec, aggregate_rows
from repro.engine.datatypes import FLOAT, INTEGER
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.errors import PMVError
from tests.conftest import eqt_query


@pytest.fixture
def rows():
    schema = Schema([Column("g", INTEGER), Column("x", FLOAT)])
    data = [(1, 10.0), (1, 20.0), (2, 5.0), (2, None), (3, 7.0)]
    return [Row(values, schema) for values in data]


class TestAggregateRows:
    def test_count_star(self, rows):
        out = aggregate_rows(rows, ["g"], [AggregateSpec("count")])
        assert out[(1,)]["count(*)"] == 2
        assert out[(2,)]["count(*)"] == 2
        assert out[(3,)]["count(*)"] == 1

    def test_count_column_skips_nulls(self, rows):
        out = aggregate_rows(rows, ["g"], [AggregateSpec("count", "x")])
        assert out[(2,)]["count(x)"] == 1

    def test_sum_min_max_avg(self, rows):
        specs = [
            AggregateSpec("sum", "x"),
            AggregateSpec("min", "x"),
            AggregateSpec("max", "x"),
            AggregateSpec("avg", "x"),
        ]
        out = aggregate_rows(rows, ["g"], specs)
        assert out[(1,)]["sum(x)"] == 30.0
        assert out[(1,)]["min(x)"] == 10.0
        assert out[(1,)]["max(x)"] == 20.0
        assert out[(1,)]["avg(x)"] == 15.0

    def test_all_null_group_aggregates_to_none(self):
        schema = Schema([Column("g", INTEGER), Column("x", FLOAT)])
        rows = [Row((1, None), schema)]
        out = aggregate_rows(rows, ["g"], [AggregateSpec("sum", "x")])
        assert out[(1,)]["sum(x)"] is None

    def test_alias(self, rows):
        out = aggregate_rows(rows, ["g"], [AggregateSpec("sum", "x", alias="total")])
        assert out[(1,)]["total"] == 30.0

    def test_empty_group_by_single_group(self, rows):
        out = aggregate_rows(rows, [], [AggregateSpec("count")])
        assert out[()]["count(*)"] == 5

    def test_bad_spec_rejected(self):
        with pytest.raises(PMVError):
            AggregateSpec("median", "x")
        with pytest.raises(PMVError):
            AggregateSpec("sum")


class TestAggregatePMVExecutor:
    def test_exact_groups_match_manual_aggregation(self, eqt_db, eqt, eqt_executor):
        agg = AggregatePMVExecutor(eqt_executor)
        query = eqt_query(eqt, [1, 3], [2, 4])
        result = agg.execute(query, ["s.g"], [AggregateSpec("count")])
        rows = eqt_db.run(query)
        expected = aggregate_rows(rows, ["s.g"], [AggregateSpec("count")])
        assert result.exact_groups == expected

    def test_partial_groups_are_provisional_subsets(self, eqt_db, eqt, eqt_executor):
        agg = AggregatePMVExecutor(eqt_executor)
        query = eqt_query(eqt, [1, 3], [2, 4])
        agg.execute(query, ["s.g"], [AggregateSpec("count")])  # warm
        warm = agg.execute(query, ["s.g"], [AggregateSpec("count")])
        assert warm.had_partial_results
        for key, partial in warm.partial_groups.items():
            assert key in warm.exact_groups
            assert partial["count(*)"] <= warm.exact_groups[key]["count(*)"]

    def test_partial_coverage(self, eqt_db, eqt, eqt_executor):
        agg = AggregatePMVExecutor(eqt_executor)
        query = eqt_query(eqt, [1], [2])
        cold = agg.execute(query, ["r.f"], [AggregateSpec("count")])
        assert cold.partial_coverage() == 0.0
        warm = agg.execute(query, ["r.f"], [AggregateSpec("count")])
        assert warm.partial_coverage() == 1.0

    def test_unknown_group_column_rejected(self, eqt_db, eqt, eqt_executor):
        agg = AggregatePMVExecutor(eqt_executor)
        with pytest.raises(PMVError):
            agg.execute(eqt_query(eqt, [1], [2]), ["r.zzz"], [AggregateSpec("count")])

    def test_unknown_aggregate_column_rejected(self, eqt_db, eqt, eqt_executor):
        agg = AggregatePMVExecutor(eqt_executor)
        with pytest.raises(PMVError):
            agg.execute(
                eqt_query(eqt, [1], [2]), ["s.g"], [AggregateSpec("sum", "s.zzz")]
            )
