"""Unit tests for the traditional-MV baselines of Section 2."""

import pytest

from repro.core import MaterializedView, SmallMaterializedView
from repro.core.condition import BasicConditionPart, EqualityDim
from tests.conftest import brute_force_eqt, eqt_query


@pytest.fixture
def mv(eqt_db, eqt):
    view = MaterializedView(eqt_db, eqt).attach()
    yield eqt_db, eqt, view
    view.detach()


class TestRefreshAndAnswer:
    def test_row_count_matches_join(self, mv):
        db, eqt, view = mv
        r_rows = list(db.catalog.relation("r").scan_rows())
        s_rows = list(db.catalog.relation("s").scan_rows())
        expected = sum(1 for r in r_rows for s in s_rows if r["c"] == s["d"])
        assert view.row_count == expected

    def test_answer_matches_brute_force(self, mv):
        db, eqt, view = mv
        answer = view.answer(eqt_query(eqt, [1, 3], [2, 4]))
        assert sorted(tuple(r.values) for r in answer) == brute_force_eqt(
            db, {1, 3}, {2, 4}
        )

    def test_contains(self, mv):
        db, eqt, view = mv
        some_row = view.rows()[0]
        assert some_row in view


class TestImmediateMaintenance:
    def test_insert_propagates_immediately(self, mv):
        db, eqt, view = mv
        before = view.row_count
        db.insert("r", (500, 3, 1, "fresh"))  # c=3 joins s rows with d=3
        matches = sum(1 for s in db.catalog.relation("s").scan_rows() if s["d"] == 3)
        assert view.row_count == before + matches
        assert view.stats.tuples_added == matches

    def test_delete_propagates_immediately(self, mv):
        db, eqt, view = mv
        before = view.row_count
        deleted = db.delete_where("r", lambda row: row["id"] == 0)
        assert len(deleted) == 1
        matches = sum(1 for s in db.catalog.relation("s").scan_rows() if s["d"] == 0)
        assert view.row_count == before - matches

    def test_update_propagates_both_sides(self, mv):
        db, eqt, view = mv
        row_id, old = next(iter(db.catalog.relation("r").find(lambda r: r["id"] == 1)))
        db.update("r", row_id, a="changed")
        query = eqt_query(eqt, [old["f"]], list(range(5)))
        answer = view.answer(query)
        assert any(row["r.a"] == "changed" for row in answer)
        assert all(row["r.a"] != old["a"] for row in answer if row["r.f"] == old["f"])
        assert view.stats.updates_handled == 1

    def test_answer_stays_consistent_under_churn(self, mv):
        db, eqt, view = mv
        db.insert("r", (600, 2, 2, "x"))
        db.delete_where("r", lambda row: row["id"] == 2)
        db.insert("s", (2, 2, "new-e"))
        query = eqt_query(eqt, [2], [2])
        assert sorted(tuple(r.values) for r in view.answer(query)) == brute_force_eqt(
            db, {2}, {2}
        )

    def test_maintenance_work_counted_for_inserts(self, mv):
        """The structural difference from PMVs: the MV pays a delta
        join on *every* insert."""
        db, eqt, view = mv
        joins_before = view.stats.delta_joins
        for i in range(5):
            db.insert("r", (700 + i, 1, 1, "bulk"))
        assert view.stats.delta_joins == joins_before + 5


class TestSmallMV:
    def test_holds_exactly_one_cell(self, eqt_db, eqt):
        cell = BasicConditionPart((EqualityDim("r.f", 1), EqualityDim("s.g", 2)))
        small = SmallMaterializedView(eqt_db, eqt, cell)
        expected = [t for t in brute_force_eqt(eqt_db, {1}, {2})]
        assert sorted(tuple(r.values) for r in small.rows()) == expected

    def test_no_f_bound(self, eqt_db, eqt):
        cell = BasicConditionPart((EqualityDim("r.f", 1), EqualityDim("s.g", 2)))
        small = SmallMaterializedView(eqt_db, eqt, cell)
        assert small.row_count == len(brute_force_eqt(eqt_db, {1}, {2}))

    def test_insert_maintained_when_in_cell(self, eqt_db, eqt):
        cell = BasicConditionPart((EqualityDim("r.f", 1), EqualityDim("s.g", 2)))
        small = SmallMaterializedView(eqt_db, eqt, cell).attach()
        before = small.row_count
        # c=2 joins s rows with d=2; those with g=2 fall inside the cell.
        eqt_db.insert("r", (800, 2, 1, "inside"))
        in_cell = sum(
            1
            for s in eqt_db.catalog.relation("s").scan_rows()
            if s["d"] == 2 and s["g"] == 2
        )
        assert small.row_count == before + in_cell
        small.detach()

    def test_insert_outside_cell_ignored(self, eqt_db, eqt):
        cell = BasicConditionPart((EqualityDim("r.f", 1), EqualityDim("s.g", 2)))
        small = SmallMaterializedView(eqt_db, eqt, cell).attach()
        before = small.row_count
        eqt_db.insert("r", (801, 2, 5, "outside"))  # f=5 not in cell
        assert small.row_count == before
        small.detach()

    def test_arity_mismatch_rejected(self, eqt_db, eqt):
        from repro.errors import ViewDefinitionError

        bad_cell = BasicConditionPart((EqualityDim("r.f", 1),))
        with pytest.raises(ViewDefinitionError):
            SmallMaterializedView(eqt_db, eqt, bad_cell)
