"""Unit tests for the executor hot path: the O1 decomposition memo,
bulk duplicate suppression, part grouping, and the knob equivalences
(fast path answers == legacy path answers)."""

import pytest

from repro.core.decompose import (
    DecompositionCache,
    PartGroup,
    decompose,
    group_parts,
)
from repro.core.discretize import BasicIntervals, Discretization
from repro.core.duplicates import DuplicateSuppressor
from repro.core.executor import PMVExecutor
from repro.core.view import PartialMaterializedView
from repro.engine.datatypes import INTEGER, TEXT
from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
)
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.engine.template import (
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
)
from repro.errors import ConditionError
from tests.conftest import eqt_query


@pytest.fixture
def interval_template():
    return QueryTemplate(
        "qt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.INTERVAL),
        ),
    )


@pytest.fixture
def interval_disc(interval_template):
    return Discretization(interval_template, {"s.g": BasicIntervals([10, 20, 30])})


def _interval_query(template, f_values, interval):
    return template.bind(
        [
            EqualityDisjunction("r.f", list(f_values)),
            IntervalDisjunction("s.g", [interval]),
        ]
    )


class TestDecompositionCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConditionError):
            DecompositionCache(0)

    def test_memoized_equals_fresh(self, interval_template, interval_disc):
        cache = DecompositionCache(8)
        query = _interval_query(interval_template, [1, 2], Interval(5, 25))
        assert cache.decompose(query, interval_disc) == decompose(
            query, interval_disc
        )

    def test_value_equal_queries_share_one_entry(
        self, interval_template, interval_disc
    ):
        cache = DecompositionCache(8)
        first = _interval_query(interval_template, [1], Interval(5, 15))
        second = _interval_query(interval_template, [1], Interval(5, 15))
        cache.decompose(first, interval_disc)
        cache.decompose(second, interval_disc)
        assert cache.info()["hits"] == 1
        assert cache.info()["misses"] == 1
        assert len(cache) == 1

    def test_distinct_bounds_are_distinct_entries(
        self, interval_template, interval_disc
    ):
        cache = DecompositionCache(8)
        cache.decompose(
            _interval_query(interval_template, [1], Interval(5, 15)), interval_disc
        )
        cache.decompose(
            _interval_query(interval_template, [1], Interval(5, 16)), interval_disc
        )
        assert cache.info()["misses"] == 2

    def test_lru_eviction(self, interval_template, interval_disc):
        cache = DecompositionCache(2)
        queries = [
            _interval_query(interval_template, [f], Interval(5, 15)) for f in (1, 2, 3)
        ]
        for query in queries:
            cache.decompose(query, interval_disc)
        assert len(cache) == 2
        # The oldest entry (f=1) was evicted; re-probing it misses.
        cache.decompose(queries[0], interval_disc)
        assert cache.info()["misses"] == 4

    def test_caller_may_mutate_returned_list(
        self, interval_template, interval_disc
    ):
        cache = DecompositionCache(8)
        query = _interval_query(interval_template, [1], Interval(5, 15))
        cache.decompose(query, interval_disc).clear()
        assert cache.decompose(query, interval_disc) == decompose(
            query, interval_disc
        )

    def test_grouped_matches_group_parts(self, interval_template, interval_disc):
        cache = DecompositionCache(8)
        query = _interval_query(interval_template, [1, 2], Interval(5, 25))
        parts, groups = cache.decompose_grouped(query, interval_disc)
        assert list(parts) == decompose(query, interval_disc)
        assert groups == group_parts(list(parts))

    def test_clear_drops_entries_keeps_counters(
        self, interval_template, interval_disc
    ):
        cache = DecompositionCache(8)
        query = _interval_query(interval_template, [1], Interval(5, 15))
        cache.decompose(query, interval_disc)
        cache.clear()
        assert len(cache) == 0
        assert cache.info()["misses"] == 1


class TestGroupParts:
    def test_split_interval_parts_share_their_bcp_group(
        self, interval_template, interval_disc
    ):
        # Both query intervals lie inside basic interval [10, 20), so
        # their two condition parts share one containing bcp.
        query = interval_template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(11, 13), Interval(15, 17)]),
            ]
        )
        parts = decompose(query, interval_disc)
        groups = group_parts(parts)
        assert len(groups) < len(parts)
        assert sum(len(group.parts) for group in groups) == len(parts)

    def test_has_basic_hoists_per_row_checks(
        self, interval_template, interval_disc
    ):
        aligned = _interval_query(
            interval_template, [1], Interval(10, 20, low_inclusive=True)
        )
        groups = group_parts(decompose(aligned, interval_disc))
        assert all(group.has_basic for group in groups)
        shrunk = _interval_query(interval_template, [1], Interval(12, 18))
        groups = group_parts(decompose(shrunk, interval_disc))
        assert not any(group.has_basic for group in groups)

    def test_group_is_frozen(self):
        group = PartGroup(key=("k",), parts=(), has_basic=True)
        with pytest.raises(AttributeError):
            group.has_basic = False


class TestBulkDuplicateSuppression:
    @pytest.fixture
    def schema(self):
        return Schema([Column("a", INTEGER), Column("b", TEXT)], relation_name="t")

    def _row(self, schema, a, b):
        return Row((a, b), schema)

    def test_add_many_equals_repeated_add(self, schema):
        rows = [self._row(schema, i % 2, "x") for i in range(5)]
        bulk, single = DuplicateSuppressor(), DuplicateSuppressor()
        bulk.add_many(rows)
        for row in rows:
            single.add(row)
        assert len(bulk) == len(single) == 5
        for row in rows:
            assert bulk.contains(row) and single.contains(row)

    def test_consume_many_preserves_order_and_multiset_counts(self, schema):
        ds = DuplicateSuppressor()
        dup = self._row(schema, 1, "x")
        ds.add_many([dup, dup])
        stream = [
            self._row(schema, 1, "x"),
            self._row(schema, 2, "y"),
            self._row(schema, 1, "x"),
            self._row(schema, 1, "x"),
        ]
        fresh = ds.consume_many(stream)
        # Two of the three equal rows are consumed; the third survives,
        # and order of survivors matches the input stream.
        assert [tuple(r.values) for r in fresh] == [(2, "y"), (1, "x")]
        assert len(ds) == 0

    def test_consume_many_on_empty_ds_returns_copy(self, schema):
        # Regression: the empty-DS fast path used to return the
        # caller's list object itself; downstream mutation of the
        # "fresh rows" then corrupted the operator's batch.
        ds = DuplicateSuppressor()
        rows = [self._row(schema, i, "x") for i in range(3)]
        fresh = ds.consume_many(rows)
        assert fresh == rows
        assert fresh is not rows
        fresh.append(self._row(schema, 99, "z"))
        assert len(rows) == 3

    def test_consume_batch_on_empty_ds_returns_copy(self, schema):
        ds = DuplicateSuppressor()
        values = [(i, "x") for i in range(3)]
        fresh = ds.consume_batch(values)
        assert fresh == values
        assert fresh is not values

    def test_add_batch_consume_batch_multiset_semantics(self, schema):
        # Tuple-level twins of add_many/consume_many: same counting
        # multiset behaviour, no Row objects.
        ds = DuplicateSuppressor()
        ds.add_batch([(1, "x"), (1, "x"), (2, "y")])
        assert len(ds) == 3
        stream = [(1, "x"), (3, "z"), (1, "x"), (1, "x"), (2, "y")]
        fresh = ds.consume_batch(stream)
        assert fresh == [(3, "z"), (1, "x")]
        assert len(ds) == 0
        ds.assert_empty()

    def test_add_batch_accepts_iterator(self, schema):
        ds = DuplicateSuppressor()
        ds.add_batch(iter([(1, "x"), (2, "y")]))
        assert len(ds) == 2
        assert ds.consume_batch([(1, "x"), (2, "y")]) == []

    def test_schema_insensitive_like_row_equality(self, schema):
        other = Schema([Column("c", INTEGER), Column("d", TEXT)], relation_name="u")
        ds = DuplicateSuppressor()
        ds.add(Row((1, "x"), schema))
        assert ds.consume_many([Row((1, "x"), other)]) == []


class TestKnobEquivalence:
    """Every combination of hot-path knobs returns identical rows."""

    KNOBS = [
        dict(),
        dict(o1_cache_size=0),
        dict(use_plan_cache=False),
        dict(batched=False),
        dict(o1_cache_size=0, use_plan_cache=False, batched=False),
        dict(columnar=False),
        dict(columnar=False, o1_cache_size=0),
        dict(columnar=False, use_plan_cache=False),
        dict(columnar=False, batched=False),
        dict(
            columnar=False, o1_cache_size=0, use_plan_cache=False, batched=False
        ),
    ]

    def _queries(self, eqt):
        return [
            eqt_query(eqt, [1, 3], [2, 4]),
            eqt_query(eqt, [1, 3], [2, 4]),  # repeat: exercises the memo
            eqt_query(eqt, [0], [0]),
            eqt_query(eqt, [5], [1, 2]),
            eqt_query(eqt, [1, 3], [2, 4]),
        ]

    def _run(self, eqt_db, eqt, knobs, distinct=False):
        from repro.core.discretize import Discretization

        view = PartialMaterializedView(
            eqt, Discretization(eqt), tuples_per_entry=2, max_entries=16
        )
        executor = PMVExecutor(eqt_db, view, **knobs)
        out = []
        for query in self._queries(eqt):
            result = executor.execute(query, distinct=distinct)
            out.append(
                (
                    [tuple(r.values) for r in result.partial_rows],
                    sorted(tuple(r.values) for r in result.remaining_rows),
                )
            )
        view.check_invariants()
        return out

    def test_all_knob_combinations_agree(self, eqt_db, eqt):
        reference = self._run(eqt_db, eqt, self.KNOBS[-1])
        for knobs in self.KNOBS[:-1]:
            assert self._run(eqt_db, eqt, knobs) == reference, knobs

    def test_distinct_mode_agrees(self, eqt_db, eqt):
        reference = self._run(eqt_db, eqt, self.KNOBS[-1], distinct=True)
        for knobs in self.KNOBS[:-1]:
            assert self._run(eqt_db, eqt, knobs, distinct=True) == reference, knobs

    def test_o1_metrics_count_hits_and_misses(self, eqt_db, eqt):
        from repro.core.discretize import Discretization

        view = PartialMaterializedView(
            eqt, Discretization(eqt), tuples_per_entry=2, max_entries=16
        )
        executor = PMVExecutor(eqt_db, view)
        for query in self._queries(eqt):
            executor.execute(query)
        assert view.metrics.o1_cache_misses == 3
        assert view.metrics.o1_cache_hits == 2
        assert view.metrics.o1_cache_hit_ratio == pytest.approx(0.4)

    def test_disabled_memo_reports_no_cache_metrics(self, eqt_db, eqt):
        from repro.core.discretize import Discretization

        view = PartialMaterializedView(
            eqt, Discretization(eqt), tuples_per_entry=2, max_entries=16
        )
        executor = PMVExecutor(eqt_db, view, o1_cache_size=0)
        for query in self._queries(eqt):
            executor.execute(query)
        assert view.metrics.o1_cache_hits == 0
        assert view.metrics.o1_cache_misses == 0
        assert view.metrics.o1_cache_hit_ratio == 0.0


class TestPreviewGrouping:
    def test_preview_probes_each_bcp_once(self, eqt_db, eqt, eqt_pmv):
        """Non-resident keys are referenced once per query even when
        several condition parts map to the same containing bcp."""
        executor = PMVExecutor(eqt_db, eqt_pmv)
        query = eqt_query(eqt, [1, 3], [2, 4])
        executor.preview(query)
        # 4 condition parts -> 4 distinct bcps -> 4 references.
        assert eqt_pmv.policy.references == 4

    def test_preview_matches_execute_partials(self, eqt_db, eqt, eqt_pmv):
        executor = PMVExecutor(eqt_db, eqt_pmv)
        query = eqt_query(eqt, [1, 3], [2, 4])
        executor.execute(query)  # warm the PMV
        expected = executor.execute(query).partial_rows
        preview = executor.preview(query).partial_rows
        assert sorted(tuple(r.values) for r in preview) == sorted(
            tuple(r.values) for r in expected
        )
