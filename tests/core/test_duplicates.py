"""Unit tests for the DS duplicate-suppression multiset."""

import pytest

from repro.core.duplicates import DuplicateSuppressor
from repro.engine.datatypes import INTEGER
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.errors import PMVError


@pytest.fixture
def schema():
    return Schema([Column("a", INTEGER), Column("b", INTEGER)])


def row(schema, a, b):
    return Row((a, b), schema)


class TestMultisetSemantics:
    def test_consume_removes_one_occurrence(self, schema):
        ds = DuplicateSuppressor()
        ds.add(row(schema, 1, 2))
        ds.add(row(schema, 1, 2))
        assert ds.consume(row(schema, 1, 2))
        assert ds.contains(row(schema, 1, 2))
        assert ds.consume(row(schema, 1, 2))
        assert not ds.contains(row(schema, 1, 2))

    def test_consume_missing_returns_false(self, schema):
        ds = DuplicateSuppressor()
        assert not ds.consume(row(schema, 1, 2))

    def test_len_tracks_occurrences(self, schema):
        ds = DuplicateSuppressor()
        ds.add(row(schema, 1, 2))
        ds.add(row(schema, 1, 2))
        ds.add(row(schema, 3, 4))
        assert len(ds) == 3
        ds.consume(row(schema, 1, 2))
        assert len(ds) == 2

    def test_paper_duplicate_scenario(self, schema):
        """The exact scenario of Section 3's Step 2 note: if t were not
        removed from DS after the first match, the user would miss the
        second occurrence of t."""
        ds = DuplicateSuppressor()
        ds.add(row(schema, 1, 2))  # delivered once in O2
        delivered = []
        for result in [row(schema, 1, 2), row(schema, 1, 2)]:  # O3 yields t twice
            if not ds.consume(result):
                delivered.append(result)
        assert len(delivered) == 1, "the second occurrence must reach the user"


class TestEmptinessInvariant:
    def test_assert_empty_passes_when_drained(self, schema):
        ds = DuplicateSuppressor()
        ds.add(row(schema, 1, 2))
        ds.consume(row(schema, 1, 2))
        ds.assert_empty()

    def test_assert_empty_raises_on_leftovers(self, schema):
        ds = DuplicateSuppressor()
        ds.add(row(schema, 1, 2))
        with pytest.raises(PMVError, match="DS not empty"):
            ds.assert_empty()
