"""Tests for the Section 4.1 hit-probability simulation."""

import pytest

from repro.core.replacement import ClockPolicy, TwoQueuePolicy
from repro.errors import WorkloadError
from repro.sim.hitprob import (
    SimulationConfig,
    build_sim_policy,
    simulate_hit_probability,
)

SMALL = dict(universe=5_000, capacity=200, warmup_queries=5_000, measured_queries=5_000)


def run(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return simulate_hit_probability(SimulationConfig(**params))


class TestConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            SimulationConfig(cells_per_query=0)
        with pytest.raises(WorkloadError):
            SimulationConfig(universe=10, capacity=100)

    def test_scaled_preserves_ratios(self):
        base = SimulationConfig()
        scaled = base.scaled(0.01)
        assert scaled.universe == base.universe // 100
        assert scaled.capacity == base.capacity // 100
        assert scaled.measured_queries == base.measured_queries // 100
        assert scaled.alpha == base.alpha

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            SimulationConfig().scaled(0)


class TestPolicyBudget:
    def test_clock_gets_two_percent_bonus(self):
        config = SimulationConfig(universe=100_000, capacity=1000, policy="clock")
        policy = build_sim_policy(config)
        assert isinstance(policy, ClockPolicy)
        assert policy.capacity == 1020

    def test_2q_capacity_is_n(self):
        config = SimulationConfig(universe=100_000, capacity=1000, policy="2q")
        policy = build_sim_policy(config)
        assert isinstance(policy, TwoQueuePolicy)
        assert policy.capacity == 1000
        assert policy.a1_capacity == 500

    def test_other_policies_supported(self):
        config = SimulationConfig(universe=100_000, capacity=1000, policy="lru")
        assert build_sim_policy(config).capacity == 1000


class TestPaperShapes:
    """Each test asserts one qualitative claim of Figures 6-7."""

    def test_hit_probability_in_unit_interval(self):
        result = run()
        assert 0.0 <= result.hit_probability <= 1.0

    def test_hit_probability_increases_with_h(self):
        values = [run(cells_per_query=h).hit_probability for h in (1, 3, 5)]
        assert values[0] < values[1] < values[2]

    def test_hit_probability_increases_with_alpha(self):
        low = run(alpha=1.01).hit_probability
        high = run(alpha=1.07).hit_probability
        assert high > low

    def test_2q_beats_clock(self):
        clock = run(policy="clock").hit_probability
        two_q = run(policy="2q").hit_probability
        assert two_q > clock

    def test_hit_probability_increases_with_capacity(self):
        values = [
            run(capacity=n).hit_probability for n in (100, 200, 400)
        ]
        assert values[0] < values[1] < values[2]

    def test_deterministic_for_seed(self):
        assert run(seed=3).hit_probability == run(seed=3).hit_probability

    def test_resident_entries_bounded(self):
        result = run(policy="clock")
        assert result.resident_entries <= int(round(1.02 * SMALL["capacity"]))

    def test_reference_ratio_below_query_ratio(self):
        """Partial hits (any of h cells) must be at least as frequent
        as per-reference hits."""
        result = run(cells_per_query=3)
        assert result.hit_probability >= result.reference_hit_ratio - 0.05


class TestWarmup:
    def test_measured_phase_excludes_warmup(self):
        # With a large cache and a short measurement window, skipping
        # warm-up clearly depresses the measured hit probability: the
        # cache cannot even fill during the window.
        cold = run(
            capacity=1_000, warmup_queries=1, measured_queries=1_000
        ).hit_probability
        warm = run(
            capacity=1_000, warmup_queries=20_000, measured_queries=1_000
        ).hit_probability
        assert warm > cold + 0.02
