"""Tests for the Che-approximation analytic model, cross-checked
against the discrete-event simulator."""

import pytest

from repro.errors import WorkloadError
from repro.sim import SimulationConfig, che_approximation, simulate_hit_probability

UNIVERSE = 10_000
CAPACITY = 300


def simulate(policy: str, alpha: float = 1.07, h: int = 2, capacity: int = CAPACITY):
    return simulate_hit_probability(
        SimulationConfig(
            universe=UNIVERSE,
            capacity=capacity,
            alpha=alpha,
            cells_per_query=h,
            warmup_queries=15_000,
            measured_queries=15_000,
            policy=policy,
            clock_budget_factor=1.0,
            seed=5,
        )
    )


class TestAgreementWithSimulation:
    @pytest.mark.parametrize("alpha", [1.01, 1.07, 1.3])
    def test_matches_lru_simulation(self, alpha):
        predicted = che_approximation(UNIVERSE, alpha, CAPACITY, cells_per_query=2)
        simulated = simulate("lru", alpha=alpha)
        assert predicted.query_hit_probability == pytest.approx(
            simulated.hit_probability, abs=0.03
        )

    @pytest.mark.parametrize("h", [1, 3, 5])
    def test_matches_across_h(self, h):
        predicted = che_approximation(UNIVERSE, 1.07, CAPACITY, cells_per_query=h)
        simulated = simulate("lru", h=h)
        assert predicted.query_hit_probability == pytest.approx(
            simulated.hit_probability, abs=0.03
        )

    def test_clock_tracks_prediction_from_below(self):
        predicted = che_approximation(UNIVERSE, 1.07, CAPACITY, cells_per_query=2)
        clock = simulate("clock")
        assert clock.hit_probability == pytest.approx(
            predicted.query_hit_probability, abs=0.05
        )
        assert clock.hit_probability <= predicted.query_hit_probability + 0.01

    def test_2q_beats_the_lru_prediction(self):
        """2Q's scan-resistant admission is not modelled by Che; on a
        skewed workload it beats the LRU-class prediction."""
        predicted = che_approximation(UNIVERSE, 1.07, CAPACITY, cells_per_query=2)
        two_q = simulate("2q")
        assert two_q.hit_probability > predicted.query_hit_probability


class TestModelShape:
    def test_occupancy_equals_capacity_at_t(self):
        import numpy as np

        from repro.workload.zipf import ZipfianDistribution

        pred = che_approximation(UNIVERSE, 1.07, CAPACITY)
        probabilities = ZipfianDistribution(UNIVERSE, 1.07).probabilities
        occupancy = float(np.sum(-np.expm1(-probabilities * pred.characteristic_time)))
        assert occupancy == pytest.approx(CAPACITY, rel=1e-6)

    def test_monotone_in_h(self):
        values = [
            che_approximation(UNIVERSE, 1.07, CAPACITY, cells_per_query=h).query_hit_probability
            for h in (1, 2, 4)
        ]
        assert values[0] < values[1] < values[2]

    def test_monotone_in_capacity(self):
        values = [
            che_approximation(UNIVERSE, 1.07, n).query_hit_probability
            for n in (100, 300, 900)
        ]
        assert values[0] < values[1] < values[2]

    def test_monotone_in_alpha(self):
        low = che_approximation(UNIVERSE, 1.01, CAPACITY).query_hit_probability
        high = che_approximation(UNIVERSE, 1.07, CAPACITY).query_hit_probability
        assert high > low

    def test_h1_equals_reference_ratio(self):
        pred = che_approximation(UNIVERSE, 1.07, CAPACITY, cells_per_query=1)
        assert pred.query_hit_probability == pytest.approx(pred.reference_hit_ratio)

    def test_probabilities_in_unit_interval(self):
        pred = che_approximation(UNIVERSE, 1.07, CAPACITY, cells_per_query=5)
        assert 0.0 < pred.reference_hit_ratio < 1.0
        assert 0.0 < pred.query_hit_probability < 1.0


class TestValidation:
    def test_capacity_bounds(self):
        with pytest.raises(WorkloadError):
            che_approximation(100, 1.07, 0)
        with pytest.raises(WorkloadError):
            che_approximation(100, 1.07, 100)

    def test_h_bounds(self):
        with pytest.raises(WorkloadError):
            che_approximation(100, 1.07, 10, cells_per_query=0)
