"""Unit tests for transactions and change capture."""

import pytest

from repro.engine.locks import LockManager
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.engine.datatypes import INTEGER
from repro.engine.transactions import Change, ChangeKind, Transaction, TxnStatus
from repro.errors import LockError, TransactionError


@pytest.fixture
def lm():
    return LockManager()


@pytest.fixture
def row():
    return Row((1,), Schema([Column("a", INTEGER)], relation_name="t"))


class TestLifecycle:
    def test_commit_releases_locks(self, lm):
        txn = Transaction(lm)
        txn.lock_exclusive("pmv")
        txn.commit()
        assert txn.status is TxnStatus.COMMITTED
        Transaction(lm).lock_exclusive("pmv")  # lock is free again

    def test_abort_releases_locks(self, lm):
        txn = Transaction(lm)
        txn.lock_shared("pmv")
        txn.abort()
        Transaction(lm).lock_exclusive("pmv")

    def test_use_after_commit_raises(self, lm):
        txn = Transaction(lm)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.lock_shared("pmv")
        with pytest.raises(TransactionError):
            txn.commit()

    def test_context_manager_commits(self, lm):
        with Transaction(lm) as txn:
            txn.lock_shared("pmv")
        assert txn.status is TxnStatus.COMMITTED

    def test_context_manager_aborts_on_error(self, lm):
        with pytest.raises(RuntimeError):
            with Transaction(lm) as txn:
                txn.lock_exclusive("pmv")
                raise RuntimeError("boom")
        assert txn.status is TxnStatus.ABORTED
        Transaction(lm).lock_exclusive("pmv")

    def test_unique_ids(self, lm):
        assert Transaction(lm).txn_id != Transaction(lm).txn_id


class TestReadOnly:
    def test_read_only_cannot_lock_exclusive(self, lm):
        txn = Transaction(lm, read_only=True)
        with pytest.raises(TransactionError):
            txn.lock_exclusive("pmv")

    def test_read_only_cannot_record_changes(self, lm, row):
        txn = Transaction(lm, read_only=True)
        with pytest.raises(TransactionError):
            txn.record_change(Change(ChangeKind.INSERT, "t", new_row=row))

    def test_read_only_may_lock_shared(self, lm):
        Transaction(lm, read_only=True).lock_shared("pmv")


class TestChanges:
    def test_change_validation(self, row):
        with pytest.raises(TransactionError):
            Change(ChangeKind.INSERT, "t")
        with pytest.raises(TransactionError):
            Change(ChangeKind.DELETE, "t")
        with pytest.raises(TransactionError):
            Change(ChangeKind.UPDATE, "t", old_row=row)

    def test_record_change(self, lm, row):
        txn = Transaction(lm)
        change = Change(ChangeKind.DELETE, "t", old_row=row)
        txn.record_change(change)
        assert txn.changes == [change]

    def test_lock_conflicts_between_txns(self, lm):
        reader = Transaction(lm)
        reader.lock_shared("pmv")
        writer = Transaction(lm)
        with pytest.raises(LockError):
            writer.lock_exclusive("pmv")
        reader.commit()
        writer.lock_exclusive("pmv")
