"""Unit tests for the catalog."""

import pytest

from repro.engine import Column, Database, INTEGER, JoinEquality
from repro.engine.template import QueryTemplate, SelectionSlot, SlotForm
from repro.errors import CatalogError


@pytest.fixture
def populated(db: Database) -> Database:
    db.create_relation("r", [Column("c", INTEGER), Column("f", INTEGER)])
    db.create_relation("s", [Column("d", INTEGER), Column("g", INTEGER)])
    db.create_index("r_f", "r", ["f"])
    db.create_index("s_d_ordered", "s", ["d"], ordered=True)
    return db


class TestRelations:
    def test_lookup(self, populated):
        assert populated.catalog.relation("r").name == "r"

    def test_missing_raises(self, populated):
        with pytest.raises(CatalogError):
            populated.catalog.relation("x")

    def test_duplicate_rejected(self, populated):
        with pytest.raises(CatalogError):
            populated.create_relation("r", [Column("c", INTEGER)])

    def test_has_relation(self, populated):
        assert populated.catalog.has_relation("r")
        assert not populated.catalog.has_relation("x")

    def test_drop_relation_removes_indexes(self, populated):
        populated.catalog.drop_relation("r")
        assert not populated.catalog.has_relation("r")
        with pytest.raises(CatalogError):
            populated.catalog.index("r_f")

    def test_iteration(self, populated):
        names = {rel.name for rel in populated.catalog.relations()}
        assert names == {"r", "s"}


class TestIndexes:
    def test_lookup_by_name(self, populated):
        assert populated.catalog.index("r_f").name == "r_f"

    def test_duplicate_name_rejected(self, populated):
        with pytest.raises(CatalogError):
            populated.create_index("r_f", "r", ["c"])

    def test_indexes_on(self, populated):
        assert [i.name for i in populated.catalog.indexes_on("r")] == ["r_f"]
        assert populated.catalog.indexes_on("nope") == ()

    def test_find_index_bare_and_qualified(self, populated):
        assert populated.catalog.find_index("r", "f") is not None
        assert populated.catalog.find_index("r", "r.f") is not None
        assert populated.catalog.find_index("r", "c") is None

    def test_find_index_require_range(self, populated):
        assert populated.catalog.find_index("r", "f", require_range=True) is None
        assert populated.catalog.find_index("s", "d", require_range=True) is not None


class TestTemplates:
    def test_register_and_lookup(self, populated):
        template = QueryTemplate(
            "qt",
            ("r", "s"),
            ("r.f", "s.g"),
            (JoinEquality("r", "c", "s", "d"),),
            (SelectionSlot("r", "r.f", SlotForm.EQUALITY),),
        )
        populated.register_template(template)
        assert populated.catalog.template("qt") is template
        assert [t.name for t in populated.catalog.templates()] == ["qt"]

    def test_unknown_relation_rejected(self, populated):
        template = QueryTemplate(
            "bad",
            ("x",),
            ("x.a",),
            (),
            (SelectionSlot("x", "x.a", SlotForm.EQUALITY),),
        )
        with pytest.raises(CatalogError):
            populated.register_template(template)

    def test_duplicate_template_rejected(self, populated):
        template = QueryTemplate(
            "qt",
            ("r",),
            ("r.f",),
            (),
            (SelectionSlot("r", "r.f", SlotForm.EQUALITY),),
        )
        populated.register_template(template)
        with pytest.raises(CatalogError):
            populated.register_template(template)

    def test_missing_template_raises(self, populated):
        with pytest.raises(CatalogError):
            populated.catalog.template("ghost")
