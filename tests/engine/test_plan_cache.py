"""Regression tests for the template-level plan cache.

The cache compiles one plan skeleton per (template, blocking, driver
slot) and re-binds it per query; DDL (creating/dropping relations or
indexes) bumps the catalog version and must invalidate every cached
skeleton, or a stale plan would reference dropped structures or miss
better access paths.
"""

import pytest

from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
)
from tests.conftest import eqt_query


@pytest.fixture
def single_db():
    """A one-relation database with a registered single-slot template."""
    db = Database()
    db.create_relation("t", [Column("a", INTEGER), Column("b", INTEGER)])
    for i in range(40):
        db.insert("t", (i, i % 5))
    template = QueryTemplate(
        "single",
        ("t",),
        ("t.a",),
        (),
        (SelectionSlot("t", "t.b", SlotForm.EQUALITY),),
    )
    db.register_template(template)
    return db, template


def _bind(template, values):
    return template.bind([EqualityDisjunction("t.b", list(values))])


class TestCaching:
    def test_second_plan_is_a_cache_hit(self, single_db):
        db, template = single_db
        db.plan(_bind(template, [1]))
        before = db.plan_cache.info()
        db.plan(_bind(template, [2]))
        after = db.plan_cache.info()
        assert after["hits"] == before["hits"] + 1
        assert after["compilations"] == before["compilations"]

    def test_cached_results_identical_to_fresh(self, single_db):
        db, template = single_db
        for values in ([1], [2, 4], [0, 3]):
            query = _bind(template, values)
            cached = [tuple(r.values) for r in db.plan(query).run()]
            fresh = [
                tuple(r.values)
                for r in db.plan(query, use_cache=False).run()
            ]
            assert cached == fresh

    def test_rebinding_does_not_leak_previous_values(self, single_db):
        db, template = single_db
        first = sorted(r["t.a"] for r in db.plan(_bind(template, [1])).run())
        second = sorted(r["t.a"] for r in db.plan(_bind(template, [2])).run())
        assert first == sorted(i for i in range(40) if i % 5 == 1)
        assert second == sorted(i for i in range(40) if i % 5 == 2)

    def test_use_cache_false_bypasses_counters(self, single_db):
        db, template = single_db
        db.plan(_bind(template, [1]), use_cache=False)
        assert db.plan_cache.info() == {
            "hits": 0,
            "compilations": 0,
            "templates": 0,
        }


class TestInvalidation:
    def test_create_index_bumps_version_and_recompiles(self, single_db):
        db, template = single_db
        version = db.catalog.version
        plan = db.plan(_bind(template, [1]))
        assert "SeqScan(t)" in plan.explain()
        db.create_index("t_b", "t", ["b"])
        assert db.catalog.version > version
        plan = db.plan(_bind(template, [1]))
        assert "IndexEqualityScan(t via t_b" in plan.explain()

    def test_drop_index_invalidates_cached_plan(self, single_db):
        db, template = single_db
        db.create_index("t_b", "t", ["b"])
        plan = db.plan(_bind(template, [1]))
        assert "IndexEqualityScan" in plan.explain()
        db.drop_index("t_b")
        plan = db.plan(_bind(template, [1]))
        assert "SeqScan(t)" in plan.explain()
        assert sorted(r["t.a"] for r in plan.run()) == sorted(
            i for i in range(40) if i % 5 == 1
        )

    def test_results_survive_index_churn(self, single_db):
        db, template = single_db
        expected = [
            tuple(r.values)
            for r in db.plan(_bind(template, [2]), use_cache=False).run()
        ]
        db.create_index("t_b", "t", ["b"])
        with_index = [tuple(r.values) for r in db.plan(_bind(template, [2])).run()]
        db.drop_index("t_b")
        without_index = [tuple(r.values) for r in db.plan(_bind(template, [2])).run()]
        assert sorted(with_index) == sorted(expected)
        assert sorted(without_index) == sorted(expected)

    def test_clear_forces_recompilation(self, single_db):
        db, template = single_db
        db.plan(_bind(template, [1]))
        compilations = db.plan_cache.info()["compilations"]
        db.plan_cache.clear()
        db.plan(_bind(template, [1]))
        assert db.plan_cache.info()["compilations"] == compilations + 1


class TestDriverSlots:
    def test_driver_choice_stays_per_query(self, eqt_db, eqt):
        """Statistics-directed driver choice must survive caching: two
        queries of one template may compile different skeletons."""
        db = eqt_db
        db.analyze()
        narrow_f = eqt_query(eqt, [1], [0, 1, 2, 3, 4])
        narrow_g = eqt_query(eqt, list(range(6)), [2])
        explain_f = db.plan(narrow_f).explain()
        explain_g = db.plan(narrow_g).explain()
        assert "IndexEqualityScan(r via r_f" in explain_f
        assert "IndexEqualityScan(s via s_g" in explain_g

    def test_blocking_variants_cached_separately(self, single_db):
        db, template = single_db
        blocking = db.plan(_bind(template, [1]), blocking=True)
        streaming = db.plan(_bind(template, [1]), blocking=False)
        assert "Materialize" in blocking.explain()
        assert "Materialize" not in streaming.explain()
