"""Crash-recovery under injected faults.

Unit coverage for the torn-tail WAL handling (satellite of the torture
harness) plus targeted crash-window tests: a statement interrupted
before/during its log append never happened; one interrupted after the
append is replayed.  The sweep tests drive the real torture harness
(:mod:`repro.bench.torture`) across every WAL append and checkpoint
boundary a small workload reaches.
"""

import json

import pytest

from repro.bench.torture import enumerate_points, run_point
from repro.engine import Column, Database, INTEGER, TEXT, WriteAheadLog, recover
from repro.errors import EngineError, WALCorruptionError
from repro.faults import (
    FaultInjector,
    FaultMode,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    build_faulty_database,
    contents_of,
)


def _write_lines(path, lines, torn_tail=None):
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
        if torn_tail is not None:
            handle.write(torn_tail)


def _record(lsn, values):
    return json.dumps(
        {"lsn": lsn, "kind": "insert", "payload": {"relation": "t", "values": values}}
    )


class TestTornTail:
    def test_partial_final_line_is_tolerated_and_reported(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        _write_lines(
            path,
            [_record(1, [1, "a"]), _record(2, [2, "b"])],
            torn_tail=_record(3, [3, "c"])[:17],
        )
        log = WriteAheadLog.load(path)
        assert log.has_torn_tail
        assert len(log) == 2
        assert [r.lsn for r in log.records()] == [1, 2]

    def test_complete_final_line_without_newline_is_torn(self, tmp_path):
        # The newline (and the fsync covering it) never hit the disk, so
        # the append was still in flight: the statement was never acked.
        path = str(tmp_path / "wal.jsonl")
        _write_lines(path, [_record(1, [1, "a"])], torn_tail=_record(2, [2, "b"]))
        log = WriteAheadLog.load(path)
        assert log.has_torn_tail
        assert len(log) == 1

    def test_repair_truncates_to_last_complete_record(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        intact = [_record(1, [1, "a"]), _record(2, [2, "b"])]
        _write_lines(path, intact, torn_tail=_record(3, [3, "c"])[:11])
        log = WriteAheadLog.load(path)
        removed = log.repair()
        assert removed == 11
        assert not WriteAheadLog.load(path).has_torn_tail
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "".join(line + "\n" for line in intact)

    def test_repair_is_a_noop_on_a_clean_log(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        _write_lines(path, [_record(1, [1, "a"])])
        log = WriteAheadLog.load(path)
        assert not log.has_torn_tail
        assert log.repair() == 0

    def test_repair_requires_a_loaded_log(self):
        with pytest.raises(EngineError):
            WriteAheadLog().repair()

    def test_damage_before_the_tail_is_corruption(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        _write_lines(path, [_record(1, [1, "a"]), "{garbage", _record(3, [3, "c"])])
        with pytest.raises(WALCorruptionError):
            WriteAheadLog.load(path)

    def test_recover_skips_the_torn_statement(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        create = json.dumps(
            {
                "lsn": 1,
                "kind": "create_relation",
                "payload": {"name": "t", "columns": [["k", "integer", False, None]]},
            }
        )
        _write_lines(
            path,
            [create, json.dumps({"lsn": 2, "kind": "insert",
                                 "payload": {"relation": "t", "values": [7]}})],
            torn_tail=json.dumps({"lsn": 3, "kind": "insert",
                                  "payload": {"relation": "t", "values": [8]}})[:20],
        )
        recovered = recover(WriteAheadLog.load(path))
        assert contents_of(recovered, ["t"]) == {"t": [(7,)]}


PAGE = 512


def _faulty_db(tmp_path, plan):
    injector = FaultInjector(plan)
    database = build_faulty_database(
        injector, str(tmp_path / "wal.jsonl"), page_size=PAGE
    )
    database.create_relation(
        "t", [Column("k", INTEGER, nullable=False), Column("v", TEXT)]
    )
    database.create_index("t_k", "t", ["k"])
    return database, injector


def _recovered(tmp_path):
    log = WriteAheadLog.load(str(tmp_path / "wal.jsonl"))
    if log.has_torn_tail:
        log.repair()
    # Replay addresses rows by (page, slot): the fresh instance must
    # use the crashed instance's page size.
    return recover(log, database_factory=lambda: Database(page_size=PAGE))


class TestAppendCrashWindows:
    """The three crash windows of one WAL append.  DDL appends count:
    create_relation is arrival 1, create_index arrival 2, so the first
    insert's append is arrival 3."""

    def test_torn_append_is_never_acked_and_repairs_away(self, tmp_path):
        database, _ = _faulty_db(
            tmp_path, FaultPlan.crash_at("wal.append", 4, FaultMode.TORN)
        )
        database.insert("t", (1, "acked"))
        with pytest.raises(SimulatedCrash):
            database.insert("t", (2, "torn"))
        database.wal.close()
        log = WriteAheadLog.load(str(tmp_path / "wal.jsonl"))
        assert log.has_torn_tail  # the partial line is visible...
        assert log.repair() > 0  # ...and repairable
        recovered = _recovered(tmp_path)
        assert contents_of(recovered, ["t"]) == {"t": [(1, "acked")]}

    def test_crash_after_append_replays_the_statement(self, tmp_path):
        database, _ = _faulty_db(
            tmp_path, FaultPlan.crash_at("wal.append", 4, FaultMode.CRASH_AFTER)
        )
        database.insert("t", (1, "acked"))
        with pytest.raises(SimulatedCrash):
            database.insert("t", (2, "durable-not-acked"))
        database.wal.close()
        recovered = _recovered(tmp_path)
        assert contents_of(recovered, ["t"]) == {
            "t": [(1, "acked"), (2, "durable-not-acked")]
        }

    def test_crash_before_really_is_before(self, tmp_path):
        database, _ = _faulty_db(
            tmp_path, FaultPlan.crash_at("wal.append", 3, FaultMode.CRASH_BEFORE)
        )
        with pytest.raises(SimulatedCrash):
            database.insert("t", (1, "never"))
        database.wal.close()
        recovered = _recovered(tmp_path)
        assert contents_of(recovered, ["t"]) == {"t": []}


# Drive the real torture harness across every append/checkpoint
# boundary a short workload reaches.  ``run_point`` performs the full
# invariant battery (recovered == acked (+ in-flight), heap/index
# agreement, snapshot recovery agreement, PMV restart correctness).

_OPS = 24


def _points(site):
    return [
        spec for spec in enumerate_points(seed=0, ops=_OPS) if spec.site == site
    ]


class TestHarnessSweeps:
    def test_workload_reaches_every_wal_boundary(self):
        sites = {spec.site for spec in enumerate_points(seed=0, ops=_OPS)}
        assert "wal.append" in sites and "wal.checkpoint" in sites

    @pytest.mark.parametrize(
        "mode", [FaultMode.CRASH_BEFORE, FaultMode.TORN, FaultMode.CRASH_AFTER]
    )
    def test_append_boundary_sweep(self, mode):
        specs = [s for s in _points("wal.append") if s.mode is mode][:6]
        assert specs, f"no append points in mode {mode}"
        for spec in specs:
            result = run_point(0, spec, ops=_OPS)
            assert result.ok, f"replay {result.replay}: {result.error}"

    def test_append_has_no_error_mode(self):
        # The log is force-at-append: a failed append IS a crash.
        with pytest.raises(ValueError):
            FaultSpec("wal.append", 1, FaultMode.ERROR)

    def test_checkpoint_boundary_sweep(self):
        for spec in _points("wal.checkpoint")[:8]:
            result = run_point(0, spec, ops=_OPS)
            assert result.ok, f"replay {result.replay}: {result.error}"

    def test_commit_crash_sweep(self):
        for spec in _points("txn.commit")[:4]:
            result = run_point(0, spec, ops=_OPS)
            assert result.ok, f"replay {result.replay}: {result.error}"

    def test_torn_page_write_sweep(self):
        specs = [s for s in _points("disk.write_page") if s.mode is FaultMode.TORN]
        for spec in specs[:4]:
            result = run_point(0, spec, ops=_OPS)
            assert result.ok, f"replay {result.replay}: {result.error}"
