"""Unit tests for column datatypes and the Infinity sentinels."""

import math

import pytest

from repro.engine.datatypes import (
    BIGINT,
    DATE,
    FLOAT,
    INTEGER,
    MINUS_INFINITY,
    PLUS_INFINITY,
    Infinity,
    TEXT,
)
from repro.errors import TypeMismatchError


class TestValidate:
    def test_integer_accepts_int(self):
        assert INTEGER.validate(42) == 42

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True)

    def test_integer_rejects_float(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(1.5)

    def test_bigint_accepts_large(self):
        assert BIGINT.validate(2**60) == 2**60

    def test_float_coerces_int(self):
        value = FLOAT.validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_nan(self):
        with pytest.raises(TypeMismatchError):
            FLOAT.validate(math.nan)

    def test_float_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            FLOAT.validate("1.0")

    def test_text_accepts_str(self):
        assert TEXT.validate("hello") == "hello"

    def test_text_rejects_bytes(self):
        with pytest.raises(TypeMismatchError):
            TEXT.validate(b"hello")

    def test_date_accepts_iso(self):
        assert DATE.validate("1994-06-15") == "1994-06-15"

    @pytest.mark.parametrize(
        "bad", ["1994/06/15", "94-06-15", "1994-13-01", "1994-00-10", "1994-01-32", "199a-01-01"]
    )
    def test_date_rejects_malformed(self, bad):
        with pytest.raises(TypeMismatchError):
            DATE.validate(bad)

    def test_null_accepted_everywhere(self):
        for dtype in (INTEGER, BIGINT, FLOAT, TEXT, DATE):
            assert dtype.validate(None) is None


class TestByteSize:
    def test_fixed_widths(self):
        assert INTEGER.byte_size(1) == 4
        assert BIGINT.byte_size(1) == 8
        assert FLOAT.byte_size(1.0) == 8
        assert DATE.byte_size("1994-06-15") == 10

    def test_text_scales_with_length(self):
        assert TEXT.byte_size("ab") == 4
        assert TEXT.byte_size("a" * 100) == 102

    def test_null_costs_one_byte(self):
        for dtype in (INTEGER, TEXT, DATE):
            assert dtype.byte_size(None) == 1


class TestInfinity:
    def test_minus_below_everything(self):
        assert MINUS_INFINITY < -(10**18)
        assert MINUS_INFINITY < "aaa"
        assert MINUS_INFINITY < PLUS_INFINITY

    def test_plus_above_everything(self):
        assert PLUS_INFINITY > 10**18
        assert PLUS_INFINITY > "zzz"
        assert PLUS_INFINITY > MINUS_INFINITY

    def test_equality_and_hash(self):
        assert MINUS_INFINITY == Infinity(-1)
        assert hash(MINUS_INFINITY) == hash(Infinity(-1))
        assert MINUS_INFINITY != PLUS_INFINITY

    def test_le_ge(self):
        assert MINUS_INFINITY <= Infinity(-1)
        assert PLUS_INFINITY >= Infinity(1)
        assert MINUS_INFINITY <= 5
        assert PLUS_INFINITY >= 5

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            Infinity(0)

    def test_not_equal_to_numbers(self):
        assert MINUS_INFINITY != float("-inf")
