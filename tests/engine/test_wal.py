"""Tests for write-ahead logging and crash recovery."""

import pytest

from repro.engine import (
    Column,
    Database,
    INTEGER,
    LogKind,
    TEXT,
    WriteAheadLog,
    recover,
)


def build_logged_db(wal: WriteAheadLog) -> Database:
    db = Database(wal=wal)
    db.create_relation(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_id", "t", ["id"])
    return db


def table_contents(db: Database, name: str = "t"):
    return sorted(tuple(r.values) for r in db.catalog.relation(name).scan_rows())


class TestLogging:
    def test_ddl_and_dml_logged_in_order(self):
        wal = WriteAheadLog()
        db = build_logged_db(wal)
        db.insert("t", (1, "a"))
        kinds = [r.kind for r in wal.records()]
        assert kinds == [LogKind.CREATE_RELATION, LogKind.CREATE_INDEX, LogKind.INSERT]
        assert wal.last_lsn == 3

    def test_delete_and_update_logged_with_rowid(self):
        wal = WriteAheadLog()
        db = build_logged_db(wal)
        row_id = db.insert("t", (1, "a"))
        db.update("t", row_id, v="b")
        db.delete("t", row_id)
        update_rec, delete_rec = list(wal.records())[-2:]
        assert update_rec.kind is LogKind.UPDATE
        assert update_rec.payload["changes"] == {"v": "b"}
        assert delete_rec.payload["page_no"] == row_id.page_no
        assert delete_rec.payload["slot_no"] == row_id.slot_no

    def test_failed_statement_not_logged(self):
        wal = WriteAheadLog()
        db = build_logged_db(wal)
        size_before = len(wal)
        with pytest.raises(Exception):
            db.insert("t", (None, "bad"))  # violates NOT NULL
        assert len(wal) == size_before

    def test_no_wal_means_no_logging(self):
        db = Database()
        db.create_relation("t", [Column("id", INTEGER)])
        db.insert("t", (1,))
        assert db.wal is None

    def test_checkpoint_marker(self):
        wal = WriteAheadLog()
        wal.checkpoint()
        [record] = wal.records()
        assert record.kind is LogKind.CHECKPOINT


class TestRecovery:
    def test_recover_reproduces_contents_and_indexes(self):
        wal = WriteAheadLog()
        db = build_logged_db(wal)
        ids = [db.insert("t", (i, f"v{i}")) for i in range(20)]
        db.delete("t", ids[4])
        db.update("t", ids[7], v="patched")
        recovered = recover(wal)
        assert table_contents(recovered) == table_contents(db)
        assert recovered.catalog.index("t_id").entry_count == 19
        assert recovered.catalog.index("t_id").probe(7)

    def test_recovered_rowids_match_original(self):
        """Replay determinism: the recovered database addresses rows at
        the same (page, slot) ids, so a second crash/recover cycle of
        the *recovered* instance also works."""
        wal = WriteAheadLog()
        db = build_logged_db(wal)
        ids = [db.insert("t", (i, "x" * 50)) for i in range(30)]
        db.delete("t", ids[10])
        recovered = recover(wal)
        original = {rid: row.values for rid, row in db.catalog.relation("t").scan()}
        replayed = {rid: row.values for rid, row in recovered.catalog.relation("t").scan()}
        assert original == replayed

    def test_recovery_chain(self):
        """Recover, keep writing (with a fresh log), recover again."""
        wal1 = WriteAheadLog()
        db = build_logged_db(wal1)
        db.insert("t", (1, "a"))
        recovered = recover(wal1, database_factory=lambda: Database(wal=WriteAheadLog()))
        recovered.insert("t", (2, "b"))
        # The second instance logged DDL? No — replay bypassed via factory
        # wal only captured the replayed statements plus the new insert.
        assert table_contents(recovered) == [(1, "a"), (2, "b")]
        second = recover(recovered.wal)
        assert table_contents(second) == [(1, "a"), (2, "b")]

    def test_empty_log_recovers_empty_database(self):
        recovered = recover(WriteAheadLog())
        assert list(recovered.catalog.relations()) == []


class TestFilePersistence:
    def test_log_survives_process_boundary(self, tmp_path):
        path = str(tmp_path / "engine.wal")
        wal = WriteAheadLog(path)
        db = build_logged_db(wal)
        for i in range(10):
            db.insert("t", (i, f"v{i}"))
        db.delete_where("t", lambda row: row["id"] % 3 == 0)
        expected = table_contents(db)
        wal.close()
        del db, wal  # "crash": all in-memory state gone
        reloaded = WriteAheadLog.load(path)
        recovered = recover(reloaded)
        assert table_contents(recovered) == expected

    def test_json_roundtrip_of_records(self, tmp_path):
        path = str(tmp_path / "engine.wal")
        wal = WriteAheadLog(path)
        db = build_logged_db(wal)
        db.insert("t", (1, "quote ' and unicode é"))
        wal.close()
        reloaded = WriteAheadLog.load(path)
        assert [r.to_json() for r in reloaded.records()] == [
            r.to_json() for r in WriteAheadLog.load(path).records()
        ]
        recovered = recover(reloaded)
        assert table_contents(recovered) == [(1, "quote ' and unicode é")]


class TestPMVAfterRecovery:
    def test_pmv_restarts_empty_and_stays_correct(self):
        """PMVs need no recovery: after a crash the cache restarts
        empty and the first query refills it — answers stay exact."""
        from repro.core import Discretization, PartialMaterializedView, PMVExecutor
        from repro.engine import (
            EqualityDisjunction,
            JoinEquality,
            QueryTemplate,
            SelectionSlot,
            SlotForm,
        )

        wal = WriteAheadLog()
        db = Database(wal=wal)
        db.create_relation("r", [Column("c", INTEGER), Column("f", INTEGER)])
        db.create_relation("s", [Column("d", INTEGER), Column("g", INTEGER)])
        db.create_index("r_f", "r", ["f"])
        db.create_index("s_d", "s", ["d"])
        for i in range(40):
            db.insert("r", (i % 8, i % 4))
            db.insert("s", (i % 8, i % 3))
        template = QueryTemplate(
            "qt",
            ("r", "s"),
            ("r.c", "s.d"),
            (JoinEquality("r", "c", "s", "d"),),
            (
                SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                SelectionSlot("s", "s.g", SlotForm.EQUALITY),
            ),
        )
        view = PartialMaterializedView(template, Discretization(template), 2, 8)
        executor = PMVExecutor(db, view)
        query = template.bind(
            [EqualityDisjunction("r.f", [1]), EqualityDisjunction("s.g", [2])]
        )
        before = sorted(tuple(r.values) for r in executor.execute(query).all_rows())

        recovered_db = recover(wal)
        fresh_view = PartialMaterializedView(template, Discretization(template), 2, 8)
        fresh_executor = PMVExecutor(recovered_db, fresh_view)
        cold = fresh_executor.execute(query)
        assert cold.partial_rows == []  # cache restarted empty
        assert sorted(tuple(r.values) for r in cold.all_rows()) == before
        warm = fresh_executor.execute(query)
        assert warm.had_partial_results  # and refilled itself


class TestChecksummedRecords:
    """CRC32-per-record framing (DESIGN.md §11): every record line
    carries a checksum over its canonical body, verified on every
    parse — replay, reload, and the replication ship path alike."""

    def test_record_json_carries_crc(self):
        import json

        wal = WriteAheadLog()
        db = build_logged_db(wal)
        db.insert("t", (1, "a"))
        for record in wal.records():
            data = json.loads(record.to_json())
            assert data["crc"] == record.crc

    def test_bitflip_detected_on_parse(self):
        import json

        from repro.engine.wal import LogRecord
        from repro.errors import WALChecksumError, WALCorruptionError

        wal = WriteAheadLog()
        db = build_logged_db(wal)
        db.insert("t", (1, "a"))
        line = list(wal.records())[-1].to_json()
        data = json.loads(line)
        data["payload"]["values"] = [2, "flipped"]
        with pytest.raises(WALChecksumError):
            LogRecord.from_json(json.dumps(data))
        # The checksum error is a corruption error: one except clause
        # covers torn, structural, and bit-rot damage.
        with pytest.raises(WALCorruptionError):
            LogRecord.from_json(json.dumps(data))

    def test_legacy_records_without_crc_accepted(self):
        import json

        from repro.engine.wal import LogRecord

        record = LogRecord.from_json(
            json.dumps({"lsn": 1, "kind": "insert", "payload": {"relation": "t"}})
        )
        assert record.lsn == 1

    def _corrupt_payload_of_record(self, path, index):
        import json

        with open(path) as handle:
            lines = handle.read().splitlines()
        data = json.loads(lines[index])
        data["payload"]["values"] = [999, "rot"]
        lines[index] = json.dumps(data)  # stale crc now disagrees
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")

    def test_midlog_mismatch_stops_load_at_last_good_record(self, tmp_path):
        path = str(tmp_path / "engine.wal")
        wal = WriteAheadLog(path)
        db = build_logged_db(wal)
        for i in range(4):
            db.insert("t", (i, f"v{i}"))
        wal.close()
        self._corrupt_payload_of_record(path, 3)  # second insert of six lines
        loaded = WriteAheadLog.load(path)
        # Everything before the rotten record is trusted, nothing after.
        assert loaded.last_lsn == 3
        assert loaded.checksum_failures == 1
        assert loaded.checksum_tail is not None
        assert loaded.needs_repair
        recovered = recover(loaded)
        assert table_contents(recovered) == [(0, "v0")]

    def test_repair_truncates_at_first_mismatch(self, tmp_path):
        path = str(tmp_path / "engine.wal")
        wal = WriteAheadLog(path)
        db = build_logged_db(wal)
        for i in range(4):
            db.insert("t", (i, f"v{i}"))
        wal.close()
        self._corrupt_payload_of_record(path, 3)
        loaded = WriteAheadLog.load(path)
        removed = loaded.repair()
        assert removed > 0
        assert not loaded.needs_repair
        reloaded = WriteAheadLog.load(path)
        assert reloaded.last_lsn == 3
        assert reloaded.checksum_failures == 0
        assert not reloaded.needs_repair

    def test_fenced_log_refuses_appends(self):
        from repro.errors import WALFencedError

        wal = WriteAheadLog()
        db = build_logged_db(wal)
        wal.fence(7)
        assert wal.fenced_by_epoch == 7
        with pytest.raises(WALFencedError):
            wal.append(LogKind.INSERT, {"relation": "t", "values": [1, "a"]})
        with pytest.raises(WALFencedError):
            db.insert("t", (1, "a"))
