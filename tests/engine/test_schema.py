"""Unit tests for Schema and Column."""

import pytest

from repro.engine.datatypes import INTEGER, TEXT
from repro.engine.schema import Column, Schema
from repro.errors import SchemaError, UnknownColumnError


def make_schema(relation="r"):
    return Schema(
        [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
        relation_name=relation,
    )


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("x", INTEGER), Column("x", TEXT)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_qualified_bare_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("r.id", INTEGER)


class TestLookup:
    def test_bare_and_qualified_position(self):
        schema = make_schema()
        assert schema.position("id") == 0
        assert schema.position("r.id") == 0
        assert schema.position("name") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            make_schema().position("nope")

    def test_has_column(self):
        schema = make_schema()
        assert schema.has_column("r.name")
        assert not schema.has_column("s.name")

    def test_names(self):
        schema = make_schema()
        assert schema.names() == ("id", "name")
        assert schema.qualified_names() == ("r.id", "r.name")


class TestConcat:
    def test_concat_preserves_qualified_lookup(self):
        left = make_schema("r")
        right = Schema([Column("id", INTEGER), Column("e", TEXT)], relation_name="s")
        joined = left.concat(right)
        assert joined.position("r.id") == 0
        assert joined.position("s.id") == 2
        assert joined.position("s.e") == 3

    def test_concat_renames_collisions(self):
        left = make_schema("r")
        right = Schema([Column("id", INTEGER)], relation_name="s")
        joined = left.concat(right)
        assert joined.names() == ("id", "name", "s_id")

    def test_nested_concat_keeps_all_aliases(self):
        a = Schema([Column("k", INTEGER)], relation_name="a")
        b = Schema([Column("k", INTEGER)], relation_name="b")
        c = Schema([Column("k", INTEGER)], relation_name="c")
        joined = a.concat(b).concat(c)
        assert joined.position("a.k") == 0
        assert joined.position("b.k") == 1
        assert joined.position("c.k") == 2


class TestProject:
    def test_project_by_qualified_names(self):
        left = make_schema("r")
        right = Schema([Column("e", TEXT)], relation_name="s")
        joined = left.concat(right)
        projected = joined.project(["s.e", "r.id"])
        assert projected.names() == ("e", "id")
        # Requested (qualified) names stay resolvable.
        assert projected.position("s.e") == 0
        assert projected.position("r.id") == 1

    def test_project_disambiguates_duplicates(self):
        a = Schema([Column("k", INTEGER)], relation_name="a")
        b = Schema([Column("k", INTEGER)], relation_name="b")
        joined = a.concat(b)
        projected = joined.project(["a.k", "b.k"])
        assert projected.position("a.k") == 0
        assert projected.position("b.k") == 1
        assert len(set(projected.names())) == 2


class TestValidateValues:
    def test_accepts_valid_row(self):
        assert make_schema().validate_values((1, "x")) == (1, "x")

    def test_wrong_arity(self):
        with pytest.raises(SchemaError):
            make_schema().validate_values((1,))

    def test_not_null_enforced(self):
        with pytest.raises(SchemaError):
            make_schema().validate_values((None, "x"))

    def test_nullable_allows_none(self):
        assert make_schema().validate_values((1, None)) == (1, None)


class TestEquality:
    def test_equal_schemas(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())

    def test_rename_changes_equality(self):
        assert make_schema("r") != make_schema("s")
        assert make_schema("r").rename("s") == make_schema("s")
