"""Segmented WAL tests: rotation, checkpoint truncation, archive
replay, retention pinning, repair reporting, and ENOSPC probes."""

import os

import pytest

from repro.engine import (
    Column,
    Database,
    INTEGER,
    LogKind,
    TEXT,
    WriteAheadLog,
    recover,
)
from repro.engine.snapshot import checkpoint as snapshot_checkpoint
from repro.engine.wal import LsnRetentionRegistry
from repro.errors import DiskFullError, EngineError, WALCorruptionError


def build_db(wal: WriteAheadLog) -> Database:
    db = Database(wal=wal)
    db.create_relation(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_id", "t", ["id"])
    return db


def segmented(tmp_path, segment_bytes: int = 512, **kwargs) -> WriteAheadLog:
    return WriteAheadLog(
        path=str(tmp_path / "wal"), segment_bytes=segment_bytes, **kwargs
    )


def fill(db: Database, count: int, start: int = 0) -> None:
    for i in range(start, start + count):
        db.insert("t", (i, f"value-{i}"))


def live_segment_files(wal: WriteAheadLog) -> list[str]:
    return sorted(
        name for name in os.listdir(wal.path) if name.startswith("wal-")
    )


class TestRotation:
    def test_appends_rotate_into_multiple_segments(self, tmp_path):
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, 40)
        stats = wal.resource_stats()
        assert stats["segmented"] is True
        assert stats["segments_rotated"] >= 2
        assert stats["live_segments"] == stats["segments_rotated"] + 1
        assert len(live_segment_files(wal)) == stats["live_segments"]
        # The log is one continuous LSN sequence across segments.
        lsns = [r.lsn for r in wal.records()]
        assert lsns == list(range(1, len(lsns) + 1))

    def test_recovery_across_segment_boundaries(self, tmp_path):
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, 40)
        db.delete("t", next(iter(db.catalog.relation("t").scan()))[0])
        wal.close()
        reloaded = WriteAheadLog.load(str(tmp_path / "wal"))
        assert len(reloaded) == len(wal)
        recovered = recover(reloaded)
        want = sorted(tuple(r.values) for r in db.catalog.relation("t").scan_rows())
        got = sorted(
            tuple(r.values) for r in recovered.catalog.relation("t").scan_rows()
        )
        assert got == want


class TestReclaim:
    def test_checkpoint_truncates_to_archive(self, tmp_path):
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, 40)
        before = len(live_segment_files(wal))
        snapshot_checkpoint(db)
        stats = wal.resource_stats()
        assert stats["segments_reclaimed"] >= 1
        assert len(live_segment_files(wal)) < before
        # Reclaimed segments moved (not deleted): archive holds them.
        archived = os.listdir(wal.archive_dir)
        assert len(archived) == stats["segments_reclaimed"]
        # Resident memory shrinks with truncation.
        assert stats["resident_records"] < stats["truncated_lsn"] + len(wal)

    def test_retention_pin_blocks_reclaim_until_released(self, tmp_path):
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, 20)
        wal.retention.update("cdc", 2)  # a consumer still needs LSN 3+
        snapshot_checkpoint(db)
        assert wal.resource_stats()["segments_reclaimed"] == 0
        wal.retention.update("cdc", wal.last_lsn)
        assert wal.reclaim() >= 1

    def test_records_replays_from_archive(self, tmp_path):
        """A consumer attached behind the truncation point (a lagging
        replica, a late CDC drain) reads reclaimed segments back from
        the archive instead of bootstrapping from a snapshot."""
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, 40)
        all_lsns = [r.lsn for r in wal.records()]
        snapshot_checkpoint(db)
        assert wal.truncated_lsn > 0
        replayed = [r.lsn for r in wal.records(after_lsn=0)]
        # Checkpoint record appended after the first listing.
        assert replayed[: len(all_lsns)] == all_lsns
        assert wal.archive_reads >= 1

    def test_archive_prune_bounds_footprint_and_fails_loud(self, tmp_path):
        wal = segmented(tmp_path, archive_max_bytes=600)
        db = build_db(wal)
        fill(db, 60)
        snapshot_checkpoint(db)
        stats = wal.resource_stats()
        assert stats["segments_pruned"] >= 1
        assert stats["archived_bytes"] <= 600
        with pytest.raises(EngineError, match="bootstrap from a snapshot"):
            list(wal.records(after_lsn=0))
        # Past the pruned horizon the archive still serves.
        assert [r.lsn for r in wal.records(after_lsn=wal.pruned_lsn)]

    def test_load_directory_restores_archive_state(self, tmp_path):
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, 40)
        snapshot_checkpoint(db)
        truncated = wal.truncated_lsn
        last = wal.last_lsn
        wal.close()
        reloaded = WriteAheadLog.load(str(tmp_path / "wal"))
        assert reloaded.truncated_lsn == truncated
        assert reloaded.last_lsn == last
        assert [r.lsn for r in reloaded.records(after_lsn=0)] == list(
            range(1, last + 1)
        )


class TestDamage:
    def _grown(self, tmp_path, count: int = 40):
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, count)
        wal.close()
        return wal

    def test_torn_tail_in_final_segment_repaired_and_reported(self, tmp_path):
        wal = self._grown(tmp_path)
        final = sorted(s.path for s in wal._segments)[-1]
        with open(final, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 99, "kind": "insert", "crc"')  # no newline
        log = WriteAheadLog.load(str(tmp_path / "wal"))
        assert log.has_torn_tail
        removed = log.repair()
        assert removed > 0
        assert log.repairs == 1
        assert log.last_repair["reason"] == "torn"
        assert log.last_repair["segment"] == os.path.basename(final)
        assert log.last_repair["bytes_removed"] == removed
        reread = WriteAheadLog.load(str(tmp_path / "wal"))
        assert not reread.has_torn_tail
        assert len(reread) == len(log)

    def test_checksum_damage_mid_earlier_segment_drops_later_segments(
        self, tmp_path
    ):
        wal = self._grown(tmp_path)
        live = sorted(s.path for s in wal._segments)
        assert len(live) >= 3
        victim = live[-3]  # segment N-2: two live segments follow it
        with open(victim, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        assert "value-" in lines[1]
        lines[1] = lines[1].replace("value-", "hacked", 1)  # breaks the CRC
        with open(victim, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        log = WriteAheadLog.load(str(tmp_path / "wal"))
        assert log.needs_repair
        assert not log.has_torn_tail  # not a torn write: a bad checksum
        removed = log.repair()
        assert removed > 0
        assert log.last_repair["reason"] == "checksum"
        assert log.last_repair["segment"] == os.path.basename(victim)
        assert len(log.last_repair["dropped_segments"]) == 2
        reread = WriteAheadLog.load(str(tmp_path / "wal"))
        assert not reread.needs_repair
        # Everything before the damage point survived.
        assert reread.last_lsn >= 1
        recover(reread)  # parses and replays cleanly

    def test_archive_damage_is_not_repairable(self, tmp_path):
        wal = segmented(tmp_path)
        db = build_db(wal)
        fill(db, 40)
        snapshot_checkpoint(db)
        wal.close()
        archived = sorted(os.listdir(wal.archive_dir))
        path = os.path.join(wal.archive_dir, archived[0])
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.replace('"value-0"', '"tampered"', 1))
        with pytest.raises(WALCorruptionError):
            WriteAheadLog.load(str(tmp_path / "wal"))

    def test_single_file_repair_reports_truncation(self, tmp_path):
        path = str(tmp_path / "single.wal")
        wal = WriteAheadLog(path=path)
        db = build_db(wal)
        fill(db, 3)
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        log = WriteAheadLog.load(path)
        assert log.has_torn_tail
        removed = log.repair()
        assert removed > 0
        assert log.repairs == 1
        assert log.last_repair["reason"] == "torn"
        assert log.last_repair["bytes_removed"] == removed


class TestEnospcProbe:
    def test_reserve_fault_refuses_before_rotation(self, tmp_path):
        wal = segmented(tmp_path)
        wal.fault_check = lambda site: site == "wal.enospc"
        with pytest.raises(DiskFullError) as exc_info:
            wal.reserve()
        assert exc_info.value.site == "wal.enospc"
        import errno

        assert exc_info.value.errno == errno.ENOSPC
        assert isinstance(exc_info.value, OSError)

    def test_reserve_rotates_when_due(self, tmp_path):
        wal = segmented(tmp_path, segment_bytes=64)
        db = build_db(wal)
        db.insert("t", (1, "x" * 80))  # overshoots the segment budget
        rotated_before = wal.segments_rotated
        wal.reserve()
        assert wal.segments_rotated == rotated_before + 1


class TestRetentionRegistry:
    def test_floor_is_min_over_consumers(self):
        registry = LsnRetentionRegistry()
        assert registry.floor() is None
        registry.update("cdc", 10)
        registry.update("ship:replica-a", 4)
        assert registry.floor() == 4
        registry.release("ship:replica-a")
        assert registry.floor() == 10
        assert registry.positions() == {"cdc": 10}
