"""Unit tests for the SQL-ish template/query parser."""

import pytest

from repro.engine.parser import parse_query, parse_template, tokenize
from repro.engine.predicate import EqualityDisjunction, Interval, IntervalDisjunction
from repro.engine.template import SlotForm
from repro.errors import ParseError

EQT_SQL = (
    "select r.a, s.e from r, s "
    "where r.c = s.d and r.f = ? and s.g = ?"
)


class TestTokenizer:
    def test_kinds(self):
        tokens = tokenize("select r.a from r where r.f = 1 and r.s = 'x y'")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "keyword", "qident", "keyword", "ident", "keyword",
            "qident", "punct", "literal", "keyword", "qident", "punct", "literal",
        ]

    def test_numbers(self):
        tokens = tokenize("1 2.5 -3")
        assert [t.value for t in tokens] == [1, 2.5, -3]

    def test_string_escapes(self):
        [token] = tokenize(r"'it\'s'")
        assert token.value == "it's"

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("select ; from")

    def test_case_insensitive_keywords(self):
        tokens = tokenize("SELECT r.a FROM r WHERE r.f BETWEEN 1 AND 2")
        assert tokens[0].value == "select"
        assert any(t.value == "between" for t in tokens)


class TestParseTemplate:
    def test_eqt(self):
        template = parse_template("Eqt", EQT_SQL)
        assert template.relations == ("r", "s")
        assert template.select_list == ("r.a", "s.e")
        assert template.joins[0].qualified_left() == "r.c"
        assert [s.column for s in template.slots] == ["r.f", "s.g"]
        assert all(s.form is SlotForm.EQUALITY for s in template.slots)

    def test_interval_slot(self):
        template = parse_template(
            "offers",
            "select related.item, sale.item from related, sale "
            "where related.related_item = sale.item "
            "and related.item = ? and sale.discount between ?",
        )
        assert template.slots[1].form is SlotForm.INTERVAL

    def test_fixed_equality_condition(self):
        template = parse_template(
            "fx",
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.b = 100 and r.f = ? and s.g = ?",
        )
        assert len(template.fixed_conditions) == 1
        fixed = template.fixed_conditions[0]
        assert isinstance(fixed, EqualityDisjunction)
        assert fixed.values == (100,)

    def test_fixed_between_condition(self):
        template = parse_template(
            "fx2",
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.b between 5 and 10 and r.f = ? and s.g = ?",
        )
        fixed = template.fixed_conditions[0]
        assert isinstance(fixed, IntervalDisjunction)
        assert fixed.intervals[0].contains_value(5)
        assert fixed.intervals[0].contains_value(10)

    def test_three_relations(self):
        template = parse_template(
            "T2ish",
            "select o.k, l.s, c.n from o, l, c "
            "where o.k = l.k and o.ck = c.ck and o.d = ? and l.s = ? and c.n = ?",
        )
        assert template.relations == ("o", "l", "c")
        assert len(template.joins) == 2
        assert template.arity == 3

    def test_or_in_template_rejected(self):
        with pytest.raises(ParseError):
            parse_template(
                "bad",
                "select r.a, s.e from r, s "
                "where r.c = s.d and (r.f = 1 or r.f = 2) and s.g = ?",
            )

    def test_string_literals(self):
        template = parse_template(
            "strfix",
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.kind = 'retail' and r.f = ? and s.g = ?",
        )
        assert template.fixed_conditions[0].values == ("retail",)


class TestParseQuery:
    @pytest.fixture
    def template(self):
        return parse_template("Eqt", EQT_SQL)

    def test_figure1_query(self, template):
        query = parse_query(
            template,
            "select r.a, s.e from r, s "
            "where r.c = s.d and (r.f = 1 or r.f = 3) and (s.g = 2 or s.g = 4)",
        )
        assert query.cselect.conditions[0].values == (1, 3)
        assert query.cselect.conditions[1].values == (2, 4)
        assert query.combination_factor == 4

    def test_single_value_conditions(self, template):
        query = parse_query(
            template,
            "select r.a, s.e from r, s where r.c = s.d and r.f = 1 and s.g = 2",
        )
        assert query.combination_factor == 1

    def test_between_disjunction(self):
        template = parse_template(
            "iv",
            "select r.a, s.e from r, s where r.c = s.d and r.f = ? and s.g between ?",
        )
        query = parse_query(
            template,
            "select r.a, s.e from r, s where r.c = s.d and r.f = 1 "
            "and (s.g between 0 and 4 or s.g between 10 and 14)",
        )
        condition = query.cselect.conditions[1]
        assert isinstance(condition, IntervalDisjunction)
        assert len(condition.intervals) == 2
        assert condition.intervals[0] == Interval(0, 4, True, True)

    def test_join_order_insensitive(self, template):
        query = parse_query(
            template,
            "select r.a, s.e from r, s where s.d = r.c and r.f = 1 and s.g = 2",
        )
        assert query.combination_factor == 1

    def test_missing_join_rejected(self, template):
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.e from r, s where r.f = 1 and s.g = 2",
            )

    def test_wrong_relations_rejected(self, template):
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.e from r, t where r.c = t.d and r.f = 1 and t.g = 2",
            )

    def test_wrong_select_list_rejected(self, template):
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.g from r, s where r.c = s.d and r.f = 1 and s.g = 2",
            )

    def test_unknown_attribute_rejected(self, template):
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.e from r, s where r.c = s.d and r.f = 1 "
                "and s.g = 2 and s.z = 9",
            )

    def test_mixed_forms_rejected(self):
        template = parse_template(
            "iv",
            "select r.a, s.e from r, s where r.c = s.d and r.f = ? and s.g between ?",
        )
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.e from r, s where r.c = s.d and r.f = 1 "
                "and (s.g = 2 or s.g between 3 and 4)",
            )

    def test_multi_attribute_disjunction_rejected(self, template):
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.e from r, s where r.c = s.d "
                "and (r.f = 1 or s.g = 2) and s.g = 3",
            )

    def test_fixed_condition_accepted(self):
        template = parse_template(
            "fx",
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.b = 100 and r.f = ? and s.g = ?",
        )
        query = parse_query(
            template,
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.b = 100 and r.f = 1 and s.g = 2",
        )
        assert query.combination_factor == 1

    def test_end_to_end_with_engine(self, eqt_db):
        template = parse_template("EqtP", EQT_SQL)
        eqt_db.register_template(template)
        query = parse_query(
            template,
            "select r.a, s.e from r, s "
            "where r.c = s.d and (r.f = 1 or r.f = 3) and (s.g = 2 or s.g = 4)",
        )
        rows = eqt_db.run(query)
        from tests.conftest import brute_force_eqt

        assert sorted(tuple(r.values) for r in rows) == brute_force_eqt(
            eqt_db, {1, 3}, {2, 4}
        )

    def test_fixed_condition_value_mismatch_rejected(self):
        template = parse_template(
            "fx3",
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.b = 100 and r.f = ? and s.g = ?",
        )
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.e from r, s "
                "where r.c = s.d and r.b = 999 and r.f = 1 and s.g = 2",
            )

    def test_fixed_between_condition_roundtrip(self):
        template = parse_template(
            "fx4",
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.b between 5 and 10 and r.f = ? and s.g = ?",
        )
        query = parse_query(
            template,
            "select r.a, s.e from r, s "
            "where r.c = s.d and r.b between 5 and 10 and r.f = 1 and s.g = 2",
        )
        assert query.combination_factor == 1
        with pytest.raises(ParseError):
            parse_query(
                template,
                "select r.a, s.e from r, s "
                "where r.c = s.d and r.b between 6 and 10 and r.f = 1 and s.g = 2",
            )
