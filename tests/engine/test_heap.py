"""Unit tests for heap relations."""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.datatypes import INTEGER, TEXT
from repro.engine.disk import DiskManager
from repro.engine.heap import HeapRelation
from repro.engine.row import RowId
from repro.engine.schema import Column, Schema
from repro.errors import SchemaError, StorageError


@pytest.fixture
def heap():
    disk = DiskManager()
    pool = BufferPool(disk, capacity=8)
    schema = Schema(
        [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
        relation_name="t",
    )
    return HeapRelation("t", schema, pool)


class TestInsertFetch:
    def test_roundtrip(self, heap):
        row_id = heap.insert((1, "alpha"))
        row = heap.fetch(row_id)
        assert row.values == (1, "alpha")

    def test_row_count(self, heap):
        heap.insert((1, "a"))
        heap.insert((2, "b"))
        assert heap.row_count == 2
        assert len(heap) == 2

    def test_type_checked_on_insert(self, heap):
        with pytest.raises(SchemaError):
            heap.insert((None, "x"))  # id is NOT NULL

    def test_insert_many(self, heap):
        ids = heap.insert_many([(i, f"n{i}") for i in range(5)])
        assert len(ids) == 5
        assert heap.row_count == 5

    def test_spills_to_multiple_pages(self, heap):
        for i in range(2000):
            heap.insert((i, "x" * 20))
        assert heap.page_count > 1
        assert heap.row_count == 2000

    def test_oversized_row_raises(self, heap):
        with pytest.raises(StorageError):
            heap.insert((1, "x" * 20_000))


class TestDelete:
    def test_delete_returns_row(self, heap):
        row_id = heap.insert((1, "a"))
        deleted = heap.delete(row_id)
        assert deleted.values == (1, "a")
        assert heap.row_count == 0

    def test_fetch_deleted_raises(self, heap):
        row_id = heap.insert((1, "a"))
        heap.delete(row_id)
        with pytest.raises(StorageError):
            heap.fetch(row_id)

    def test_foreign_rowid_rejected(self, heap):
        with pytest.raises(StorageError):
            heap.fetch(RowId(999, 0))

    def test_space_reused_after_delete(self, heap):
        ids = [heap.insert((i, "x" * 100)) for i in range(50)]
        pages_before = heap.page_count
        for row_id in ids:
            heap.delete(row_id)
        for i in range(50):
            heap.insert((i, "x" * 100))
        assert heap.page_count == pages_before


class TestUpdate:
    def test_in_place(self, heap):
        row_id = heap.insert((1, "a"))
        old, new, new_id = heap.update(row_id, name="b")
        assert old.values == (1, "a")
        assert new.values == (1, "b")
        assert new_id == row_id

    def test_relocation_when_grown(self, heap):
        # Fill the first page almost completely, then grow a row.
        ids = [heap.insert((i, "x" * 780)) for i in range(10)]
        target = ids[0]
        old, new, new_id = heap.update(target, name="y" * 4000)
        assert heap.fetch(new_id).values == new.values
        assert heap.row_count == 10

    def test_update_is_validated(self, heap):
        row_id = heap.insert((1, "a"))
        with pytest.raises(SchemaError):
            heap.update(row_id, id=None)


class TestScan:
    def test_scan_sees_all_live_rows(self, heap):
        for i in range(10):
            heap.insert((i, f"n{i}"))
        assert sorted(row["id"] for _, row in heap.scan()) == list(range(10))

    def test_scan_skips_deleted(self, heap):
        ids = [heap.insert((i, "x")) for i in range(4)]
        heap.delete(ids[1])
        assert sorted(row["id"] for _, row in heap.scan()) == [0, 2, 3]

    def test_find(self, heap):
        for i in range(10):
            heap.insert((i, f"n{i}"))
        matches = list(heap.find(lambda row: row["id"] % 3 == 0))
        assert sorted(row["id"] for _, row in matches) == [0, 3, 6, 9]

    def test_truncate(self, heap):
        for i in range(10):
            heap.insert((i, "x"))
        heap.truncate()
        assert heap.row_count == 0
        assert list(heap.scan()) == []
        heap.insert((1, "back"))
        assert heap.row_count == 1


class TestScanBatches:
    def test_batches_flatten_to_scan(self, heap):
        for i in range(500):
            heap.insert((i, "x" * 30))
        flat = [row["id"] for batch in heap.scan_batches() for row in batch]
        assert flat == [row["id"] for _, row in heap.scan()]

    def test_one_batch_per_page(self, heap):
        for i in range(2000):
            heap.insert((i, "x" * 20))
        batches = list(heap.scan_batches())
        assert len(batches) == heap.page_count
        assert sum(len(batch) for batch in batches) == 2000

    def test_skips_deleted_and_empty_pages(self, heap):
        ids = [heap.insert((i, "x" * 200)) for i in range(60)]
        for row_id in ids[:40]:
            heap.delete(row_id)
        flat = sorted(row["id"] for batch in heap.scan_batches() for row in batch)
        assert flat == list(range(40, 60))
        # Fully-emptied pages yield no (empty) batches.
        assert all(batch for batch in heap.scan_batches())

    def test_empty_relation_yields_nothing(self, heap):
        assert list(heap.scan_batches()) == []


class TestInsertManyFastPath:
    def test_bulk_equals_singles(self, heap):
        rows = [(i, f"n{i}" * 8) for i in range(800)]
        ids = heap.insert_many(rows)
        assert len(ids) == len(set(ids)) == 800
        assert sorted(row["id"] for _, row in heap.scan()) == list(range(800))

    def test_bulk_validates_each_row(self, heap):
        with pytest.raises(SchemaError):
            heap.insert_many([(1, "ok"), (None, "bad")])

    def test_bulk_oversized_row_raises(self, heap):
        with pytest.raises(StorageError):
            heap.insert_many([(1, "x" * 20_000)])

    def test_delete_reopens_page_for_bulk_insert(self, heap):
        ids = heap.insert_many([(i, "x" * 200) for i in range(100)])
        pages_before = heap.page_count
        for row_id in ids:
            heap.delete(row_id)
        heap.insert_many([(i, "x" * 200) for i in range(100)])
        assert heap.page_count == pages_before

    def test_bulk_after_truncate(self, heap):
        heap.insert_many([(i, "x") for i in range(50)])
        heap.truncate()
        heap.insert_many([(i, "y") for i in range(50)])
        assert heap.row_count == 50


class TestPayloadAccess:
    def test_fetch_payload_roundtrip(self, heap):
        row_id = heap.insert((1, "alpha"))
        assert heap.fetch_payload(row_id) == (1, "alpha")

    def test_fetch_payload_deleted_raises(self, heap):
        row_id = heap.insert((1, "a"))
        heap.delete(row_id)
        with pytest.raises(StorageError):
            heap.fetch_payload(row_id)

    def test_fetch_payloads_in_input_order(self, heap):
        ids = heap.insert_many([(i, f"n{i}") for i in range(6)])
        wanted = [ids[4], ids[1], ids[3]]
        assert heap.fetch_payloads(wanted) == [(4, "n4"), (1, "n1"), (3, "n3")]

    def test_fetch_payloads_one_pin_per_page_run(self, heap):
        ids = heap.insert_many([(i, "x" * 200) for i in range(100)])
        assert heap.page_count > 1
        stats = heap._pool.stats
        fetches_before = stats.hits + stats.misses
        heap.fetch_payloads(ids)  # physical order: one run per page
        assert (stats.hits + stats.misses) - fetches_before == heap.page_count

    def test_fetch_payloads_foreign_rowid_rejected(self, heap):
        heap.insert((1, "a"))
        with pytest.raises(StorageError):
            heap.fetch_payloads([RowId(999, 0)])

    def test_scan_payload_chunks_matches_scan(self, heap):
        heap.insert_many([(i, f"n{i}") for i in range(50)])
        flat = [t for chunk in heap.scan_payload_chunks() for t in chunk]
        assert flat == [row.values for row in heap.scan_rows()]

    def test_scan_payload_chunks_skips_empty_pages(self, heap):
        ids = heap.insert_many([(i, "x" * 200) for i in range(60)])
        # Empty one whole page.
        first_page = ids[0].page_no
        for row_id in ids:
            if row_id.page_no == first_page:
                heap.delete(row_id)
        chunks = list(heap.scan_payload_chunks())
        assert all(chunks)
        assert len(chunks) < heap.page_count


class TestPageSetCache:
    def test_equal_length_page_swap_invalidates_cache(self, heap):
        """Regression: the ownership cache used to key on list length
        only, so replacing ``_page_nos`` with a *different* list of the
        same length kept validating row ids against the stale set."""
        row_id = heap.insert((1, "a"))
        heap.fetch(row_id)  # populate the page-set cache
        heap._page_nos = [page_no + 1000 for page_no in heap._page_nos]
        with pytest.raises(StorageError):
            heap.fetch(row_id)

    def test_swapped_in_pages_become_visible(self, heap):
        row_id = heap.insert((1, "a"))
        heap.fetch(row_id)
        original = heap._page_nos
        heap._page_nos = [page_no + 1000 for page_no in original]
        assert (row_id.page_no + 1000) in heap._page_set
        heap._page_nos = original
        assert heap.fetch(row_id).values == (1, "a")

    def test_in_place_append_still_invalidates(self, heap):
        row_id = heap.insert((1, "a"))
        heap.fetch(row_id)
        # Simulate a snapshot restore appending to the same list object.
        heap._page_nos.append(4242)
        assert 4242 in heap._page_set


class TestIO:
    def test_scan_beyond_pool_generates_reads(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=2)
        schema = Schema([Column("id", INTEGER), Column("pad", TEXT)], relation_name="t")
        heap = HeapRelation("t", schema, pool)
        for i in range(200):
            heap.insert((i, "x" * 200))
        assert heap.page_count > 2
        reads_before = disk.stats.reads
        list(heap.scan())
        assert disk.stats.reads > reads_before
