"""Unit tests for the Volcano operators."""

import pytest

from repro.engine import Column, Database, INTEGER, Interval, TEXT
from repro.engine.operators import (
    Filter,
    IndexEqualityScan,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Materialize,
    Project,
    SeqScan,
)
from repro.errors import PlanningError


@pytest.fixture
def env():
    db = Database()
    db.create_relation(
        "r", [Column("id", INTEGER), Column("k", INTEGER), Column("t", TEXT)]
    )
    db.create_relation("s", [Column("k", INTEGER), Column("u", TEXT)])
    db.create_index("r_k_hash", "r", ["k"])
    db.create_index("r_k_ord", "r", ["k"], ordered=True)
    db.create_index("s_k", "s", ["k"])
    for i in range(30):
        db.insert("r", (i, i % 10, f"t{i}"))
    for j in range(10):
        db.insert("s", (j, f"u{j}"))
    return db


class TestSeqScan:
    def test_full_scan(self, env):
        scan = SeqScan(env.catalog.relation("r"))
        assert len(list(scan.execute())) == 30

    def test_filter_pushdown(self, env):
        scan = SeqScan(env.catalog.relation("r"), predicate=lambda row: row["k"] == 0)
        assert all(row["k"] == 0 for row in scan.execute())
        assert len(list(scan.execute())) == 3


class TestIndexScans:
    def test_equality_scan_multiple_keys(self, env):
        relation = env.catalog.relation("r")
        scan = IndexEqualityScan(relation, env.catalog.index("r_k_hash"), [2, 5])
        ks = sorted(row["k"] for row in scan.execute())
        assert ks == [2, 2, 2, 5, 5, 5]

    def test_equality_scan_residual(self, env):
        relation = env.catalog.relation("r")
        scan = IndexEqualityScan(
            relation,
            env.catalog.index("r_k_hash"),
            [2],
            predicate=lambda row: row["id"] < 10,
        )
        assert [row["id"] for row in scan.execute()] == [2]

    def test_range_scan(self, env):
        relation = env.catalog.relation("r")
        scan = IndexRangeScan(
            relation, env.catalog.index("r_k_ord"), [Interval(2, 5)]
        )
        assert sorted(set(row["k"] for row in scan.execute())) == [3, 4]

    def test_range_scan_multiple_intervals(self, env):
        relation = env.catalog.relation("r")
        scan = IndexRangeScan(
            relation,
            env.catalog.index("r_k_ord"),
            [Interval(0, 2, low_inclusive=True), Interval(7, 9, high_inclusive=True)],
        )
        assert sorted(set(row["k"] for row in scan.execute())) == [0, 1, 8, 9]

    def test_wrong_relation_rejected(self, env):
        with pytest.raises(PlanningError):
            IndexEqualityScan(env.catalog.relation("s"), env.catalog.index("r_k_hash"), [1])

    def test_hash_index_rejected_for_range(self, env):
        with pytest.raises(PlanningError):
            IndexRangeScan(env.catalog.relation("r"), env.catalog.index("r_k_hash"), [])


class TestJoin:
    def test_index_nested_loop_join(self, env):
        outer = SeqScan(env.catalog.relation("r"))
        join = IndexNestedLoopJoin(
            outer, env.catalog.relation("s"), env.catalog.index("s_k"), "r.k"
        )
        rows = list(join.execute())
        assert len(rows) == 30  # every r row matches exactly one s row
        sample = rows[0]
        assert sample["r.k"] == sample["s.k"]

    def test_inner_predicate(self, env):
        outer = SeqScan(env.catalog.relation("r"))
        join = IndexNestedLoopJoin(
            outer,
            env.catalog.relation("s"),
            env.catalog.index("s_k"),
            "r.k",
            inner_predicate=lambda row: row["k"] < 3,
        )
        assert len(list(join.execute())) == 9

    def test_schema_concat_resolves_both_sides(self, env):
        outer = SeqScan(env.catalog.relation("r"))
        join = IndexNestedLoopJoin(
            outer, env.catalog.relation("s"), env.catalog.index("s_k"), "r.k"
        )
        assert join.schema.has_column("r.t")
        assert join.schema.has_column("s.u")


class TestProjectFilterMaterialize:
    def test_project(self, env):
        plan = Project(SeqScan(env.catalog.relation("r")), ["r.t", "r.id"])
        row = next(iter(plan.execute()))
        assert len(row) == 2
        assert row["r.t"].startswith("t")

    def test_filter(self, env):
        plan = Filter(SeqScan(env.catalog.relation("r")), lambda row: row["id"] > 27)
        assert len(list(plan.execute())) == 2

    def test_materialize_blocks(self, env):
        relation = env.catalog.relation("r")
        consumed = []

        class Recording(SeqScan):
            def execute(self):
                for row in super().execute():
                    consumed.append(row)
                    yield row

        plan = Materialize(Recording(relation))
        iterator = plan.execute()
        first = next(iterator)
        # With Materialize, the entire child is drained before the
        # first row is emitted — the paper's blocking behaviour.
        assert len(consumed) == 30
        assert first == consumed[0]

    def test_explain_renders_tree(self, env):
        plan = Materialize(Project(SeqScan(env.catalog.relation("r")), ["r.id"]))
        text = plan.explain()
        assert "Materialize" in text
        assert "Project" in text
        assert "SeqScan(r)" in text


class TestNestedLoopJoinFallback:
    def test_hash_join_matches_index_join(self, env):
        from repro.engine.operators import NestedLoopJoin

        outer = SeqScan(env.catalog.relation("r"))
        via_index = IndexNestedLoopJoin(
            outer, env.catalog.relation("s"), env.catalog.index("s_k"), "r.k"
        )
        outer2 = SeqScan(env.catalog.relation("r"))
        via_hash = NestedLoopJoin(
            outer2, env.catalog.relation("s"), "k", "r.k"
        )
        assert sorted(tuple(r.values) for r in via_hash.execute()) == sorted(
            tuple(r.values) for r in via_index.execute()
        )

    def test_inner_predicate_applied(self, env):
        from repro.engine.operators import NestedLoopJoin

        join = NestedLoopJoin(
            SeqScan(env.catalog.relation("r")),
            env.catalog.relation("s"),
            "k",
            "r.k",
            inner_predicate=lambda row: row["k"] < 2,
        )
        rows = list(join.execute())
        assert rows and all(row["s.k"] < 2 for row in rows)

    def test_empty_inner_yields_nothing(self):
        from repro.engine.operators import NestedLoopJoin

        db = Database()
        db.create_relation("a", [Column("x", INTEGER)])
        db.create_relation("b", [Column("x", INTEGER)])
        db.insert("a", (1,))
        join = NestedLoopJoin(
            SeqScan(db.catalog.relation("a")), db.catalog.relation("b"), "x", "a.x"
        )
        assert list(join.execute()) == []

    def test_explain_mentions_hash(self, env):
        from repro.engine.operators import NestedLoopJoin

        join = NestedLoopJoin(
            SeqScan(env.catalog.relation("r")), env.catalog.relation("s"), "k", "r.k"
        )
        assert "hashed on k" in join.explain()
