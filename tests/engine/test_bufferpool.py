"""Unit tests for the CLOCK buffer pool."""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.disk import DiskManager
from repro.errors import BufferPoolError


@pytest.fixture
def disk():
    return DiskManager()


def fill(pool: BufferPool, disk: DiskManager, n: int) -> list[int]:
    """Allocate n pages through the pool, unpinned; return page numbers."""
    numbers = []
    for _ in range(n):
        page = pool.new_page()
        pool.unpin(page.page_no)
        numbers.append(page.page_no)
    return numbers


class TestFetch:
    def test_hit_costs_no_io(self, disk):
        pool = BufferPool(disk, capacity=4)
        [page_no] = fill(pool, disk, 1)
        reads_before = disk.stats.reads
        pool.fetch(page_no)
        pool.unpin(page_no)
        assert disk.stats.reads == reads_before
        assert pool.stats.hits == 1

    def test_miss_reads_from_disk(self, disk):
        pool = BufferPool(disk, capacity=2)
        numbers = fill(pool, disk, 3)  # first page evicted
        assert not pool.contains(numbers[0])
        reads_before = disk.stats.reads
        pool.fetch(numbers[0])
        pool.unpin(numbers[0])
        assert disk.stats.reads == reads_before + 1
        assert pool.stats.misses >= 1

    def test_capacity_bound_respected(self, disk):
        pool = BufferPool(disk, capacity=3)
        fill(pool, disk, 10)
        assert pool.resident_pages <= 3

    def test_hit_ratio(self, disk):
        pool = BufferPool(disk, capacity=4)
        [page_no] = fill(pool, disk, 1)
        for _ in range(3):
            pool.fetch(page_no)
            pool.unpin(page_no)
        assert pool.stats.hit_ratio == 1.0


class TestPinning:
    def test_pinned_pages_never_evicted(self, disk):
        pool = BufferPool(disk, capacity=2)
        pinned = pool.new_page()  # stays pinned
        fill(pool, disk, 5)
        assert pool.contains(pinned.page_no)

    def test_unpin_unpinned_raises(self, disk):
        pool = BufferPool(disk, capacity=2)
        [page_no] = fill(pool, disk, 1)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_no)

    def test_all_pinned_eviction_fails(self, disk):
        pool = BufferPool(disk, capacity=1)
        pool.new_page()  # pinned
        with pytest.raises(BufferPoolError):
            pool.new_page()

    def test_multiple_pins(self, disk):
        pool = BufferPool(disk, capacity=2)
        page = pool.new_page()
        pool.fetch(page.page_no)  # second pin
        pool.unpin(page.page_no)
        pool.unpin(page.page_no)
        with pytest.raises(BufferPoolError):
            pool.unpin(page.page_no)


class TestEviction:
    def test_dirty_victim_flushed(self, disk):
        pool = BufferPool(disk, capacity=1)
        page = pool.new_page()
        pool.unpin(page.page_no, dirty=True)
        writes_before = disk.stats.writes
        fill(pool, disk, 1)  # forces eviction of the dirty page
        assert disk.stats.writes > writes_before

    def test_second_chance_protects_referenced_page(self, disk):
        pool = BufferPool(disk, capacity=2)
        a, b = fill(pool, disk, 2)
        # Touch `a` so its reference bit is set; the next admission
        # should evict `b` (clock clears a's bit, then victimizes b
        # only if b's bit is clear — both were referenced on admit, so
        # the hand sweeps; ultimately exactly one of them is evicted).
        pool.fetch(a)
        pool.unpin(a)
        fill(pool, disk, 1)
        assert pool.resident_pages == 2
        assert pool.stats.evictions == 1

    def test_clock_eventually_evicts_everything_unreferenced(self, disk):
        pool = BufferPool(disk, capacity=4)
        first_batch = fill(pool, disk, 4)
        fill(pool, disk, 4)
        assert all(not pool.contains(n) for n in first_batch)

    def test_flush_all(self, disk):
        pool = BufferPool(disk, capacity=4)
        numbers = fill(pool, disk, 3)
        for n in numbers:
            pool.fetch(n)
            pool.unpin(n, dirty=True)
        writes_before = disk.stats.writes
        pool.flush_all()
        assert disk.stats.writes == writes_before + 3


class TestValidation:
    def test_zero_capacity_rejected(self, disk):
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)
