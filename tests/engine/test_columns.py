"""Unit tests for ColumnBatch and chunk coalescing."""

import pytest

from repro.engine.columns import ColumnBatch, coalesce_chunks
from repro.engine.datatypes import INTEGER, TEXT
from repro.engine.row import Row
from repro.engine.schema import Column, Schema


@pytest.fixture
def schema():
    return Schema(
        [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
        relation_name="t",
    )


TUPLES = [(1, "a"), (2, "b"), (3, "c"), (4, "d")]


class TestLayouts:
    def test_requires_exactly_one_layout(self, schema):
        with pytest.raises(ValueError):
            ColumnBatch(schema)
        with pytest.raises(ValueError):
            ColumnBatch(schema, tuples=[], columns=[[], []])

    def test_row_major_to_column_major(self, schema):
        batch = ColumnBatch.from_tuples(list(TUPLES), schema)
        assert batch.columns() == [[1, 2, 3, 4], ["a", "b", "c", "d"]]
        assert batch.column(1) == ["a", "b", "c", "d"]

    def test_column_major_to_row_major(self, schema):
        batch = ColumnBatch.from_columns([[1, 2], ["a", "b"]], schema)
        assert batch.tuples() == [(1, "a"), (2, "b")]

    def test_transpose_is_cached(self, schema):
        batch = ColumnBatch.from_tuples(list(TUPLES), schema)
        assert batch.columns() is batch.columns()
        batch2 = ColumnBatch.from_columns([[1], ["a"]], schema)
        assert batch2.tuples() is batch2.tuples()

    def test_empty_batches(self, schema):
        empty_rows = ColumnBatch.from_tuples([], schema)
        assert empty_rows.columns() == [[], []]
        assert len(empty_rows) == 0
        assert not empty_rows
        empty_cols = ColumnBatch.from_columns([[], []], schema)
        assert empty_cols.tuples() == []
        assert len(empty_cols) == 0

    def test_from_rows(self, schema):
        rows = [Row(t, schema) for t in TUPLES]
        batch = ColumnBatch.from_rows(rows, schema)
        assert batch.tuples() == TUPLES

    def test_rows_materialization(self, schema):
        batch = ColumnBatch.from_tuples(list(TUPLES), schema)
        rows = batch.rows()
        assert all(isinstance(row, Row) for row in rows)
        assert [row.values for row in rows] == TUPLES
        assert [row.values for row in batch] == TUPLES


class TestFilter:
    def test_filter_row_major(self, schema):
        batch = ColumnBatch.from_tuples(list(TUPLES), schema)
        kept = batch.filter([(0, lambda v: v % 2 == 0)])
        assert kept.tuples() == [(2, "b"), (4, "d")]

    def test_filter_column_major_uses_selection_vector(self, schema):
        batch = ColumnBatch.from_columns([[1, 2, 3, 4], ["a", "b", "c", "d"]], schema)
        kept = batch.filter([(0, lambda v: v > 1), (1, lambda v: v != "c")])
        assert kept.tuples() == [(2, "b"), (4, "d")]

    def test_filter_no_tests_returns_self(self, schema):
        batch = ColumnBatch.from_tuples(list(TUPLES), schema)
        assert batch.filter([]) is batch

    def test_filter_all_dropped(self, schema):
        batch = ColumnBatch.from_columns([[1, 2], ["a", "b"]], schema)
        kept = batch.filter([(0, lambda v: False), (1, lambda v: True)])
        assert len(kept) == 0

    def test_filter_equal_columns(self):
        schema = Schema([Column("x", INTEGER), Column("y", INTEGER)])
        batch = ColumnBatch.from_columns([[1, 2, 3], [1, 5, 3]], schema)
        assert batch.filter_equal_columns(0, 1).tuples() == [(1, 1), (3, 3)]
        row_major = ColumnBatch.from_tuples([(1, 1), (2, 5)], schema)
        assert row_major.filter_equal_columns(0, 1).tuples() == [(1, 1)]


class TestTakeProject:
    def test_take_preserves_order(self, schema):
        batch = ColumnBatch.from_tuples(list(TUPLES), schema)
        assert batch.take([3, 0]).tuples() == [(4, "d"), (1, "a")]

    def test_take_column_major(self, schema):
        batch = ColumnBatch.from_columns([[1, 2, 3], ["a", "b", "c"]], schema)
        assert batch.take([2, 1]).tuples() == [(3, "c"), (2, "b")]

    def test_project_zero_copy_in_column_major(self, schema):
        batch = ColumnBatch.from_columns([[1, 2], ["a", "b"]], schema)
        narrow = Schema([Column("name", TEXT)], relation_name="t")
        projected = batch.project([1], narrow)
        assert projected.tuples() == [("a",), ("b",)]
        # Zero-copy: the projected batch shares the picked column list.
        assert projected.columns()[0] is batch.columns()[1]


class TestCoalesceChunks:
    def test_small_chunks_merge(self):
        chunks = [[(1,)], [(2,)], [(3,)], [(4,)], [(5,)]]
        merged = list(coalesce_chunks(chunks, batch_rows=2))
        assert merged == [[(1,), (2,)], [(3,), (4,)], [(5,)]]

    def test_large_chunk_passes_through(self):
        big = [(i,) for i in range(10)]
        merged = list(coalesce_chunks([big], batch_rows=4))
        assert merged == [big]
        assert merged[0] is big

    def test_empty_chunks_skipped(self):
        merged = list(coalesce_chunks([[], [(1,)], [], [(2,)]], batch_rows=10))
        assert merged == [[(1,), (2,)]]

    def test_flattened_order_preserved(self):
        chunks = [[(1,), (2,)], [(3,)], [(4,), (5,), (6,)], [(7,)]]
        merged = list(coalesce_chunks(chunks, batch_rows=3))
        flat = [t for chunk in merged for t in chunk]
        assert flat == [(i,) for i in range(1, 8)]

    def test_no_chunks(self):
        assert list(coalesce_chunks([], batch_rows=8)) == []
