"""Unit tests for hash and ordered secondary indexes."""

import pytest

from repro.engine.bufferpool import BufferPool
from repro.engine.datatypes import INTEGER, MINUS_INFINITY, PLUS_INFINITY, TEXT
from repro.engine.disk import DiskManager
from repro.engine.heap import HeapRelation
from repro.engine.index import HashIndex, OrderedIndex, build_index
from repro.engine.schema import Column, Schema
from repro.errors import IndexError_


@pytest.fixture
def heap():
    pool = BufferPool(DiskManager(), capacity=8)
    schema = Schema(
        [Column("k", INTEGER, nullable=False), Column("v", TEXT)], relation_name="t"
    )
    relation = HeapRelation("t", schema, pool)
    return relation


def populate(heap, n=20):
    ids = {}
    for i in range(n):
        row_id = heap.insert((i % 5, f"v{i}"))
        ids.setdefault(i % 5, []).append(row_id)
    return ids


class TestHashIndex:
    def test_probe_finds_all_duplicates(self, heap):
        ids = populate(heap)
        index = build_index("t_k", heap, ["k"])
        assert sorted(index.probe(3)) == sorted(ids[3])

    def test_probe_missing_key_empty(self, heap):
        populate(heap)
        index = build_index("t_k", heap, ["k"])
        assert index.probe(99) == []

    def test_delete_removes_single_posting(self, heap):
        ids = populate(heap)
        index = build_index("t_k", heap, ["k"])
        victim = ids[2][0]
        index.delete(heap.fetch(victim), victim)
        assert victim not in index.probe(2)
        assert len(index.probe(2)) == len(ids[2]) - 1

    def test_delete_unknown_raises(self, heap):
        populate(heap)
        index = build_index("t_k", heap, ["k"])
        from repro.engine.row import Row, RowId

        ghost = Row((77, "x"), heap.schema)
        with pytest.raises(IndexError_):
            index.delete(ghost, RowId(0, 0))

    def test_entry_count(self, heap):
        populate(heap, n=20)
        index = build_index("t_k", heap, ["k"])
        assert index.entry_count == 20

    def test_multi_column_key(self, heap):
        populate(heap)
        index = build_index("t_kv", heap, ["k", "v"])
        row_id, row = next(iter(heap.scan()))
        assert row_id in index.probe((row["k"], row["v"]))

    def test_probe_counter(self, heap):
        populate(heap)
        index = build_index("t_k", heap, ["k"])
        index.probe(1)
        index.probe(2)
        assert index.probes == 2

    def test_no_range_support(self, heap):
        index = build_index("t_k", heap, ["k"])
        assert not index.supports_range()


class TestOrderedIndex:
    def test_equality_probe(self, heap):
        ids = populate(heap)
        index = build_index("t_k", heap, ["k"], ordered=True)
        assert sorted(index.probe(4)) == sorted(ids[4])

    def test_range_probe_open(self, heap):
        populate(heap)
        index = build_index("t_k", heap, ["k"], ordered=True)
        rows = [heap.fetch(rid)["k"] for rid in index.probe_range(1, 4)]
        assert set(rows) == {2, 3}

    def test_range_probe_inclusive(self, heap):
        populate(heap)
        index = build_index("t_k", heap, ["k"], ordered=True)
        rows = [
            heap.fetch(rid)["k"]
            for rid in index.probe_range(1, 4, low_inclusive=True, high_inclusive=True)
        ]
        assert set(rows) == {1, 2, 3, 4}

    def test_range_probe_unbounded(self, heap):
        populate(heap)
        index = build_index("t_k", heap, ["k"], ordered=True)
        all_ids = index.probe_range(MINUS_INFINITY, PLUS_INFINITY)
        assert len(all_ids) == heap.row_count

    def test_min_max(self, heap):
        populate(heap)
        index = build_index("t_k", heap, ["k"], ordered=True)
        assert index.min_key() == 0
        assert index.max_key() == 4

    def test_min_on_empty_raises(self, heap):
        index = OrderedIndex("empty", heap, ["k"])
        with pytest.raises(IndexError_):
            index.min_key()

    def test_delete_collapses_empty_keys(self, heap):
        row_id = heap.insert((9, "only"))
        index = build_index("t_k", heap, ["k"], ordered=True)
        index.delete(heap.fetch(row_id), row_id)
        assert index.probe(9) == []
        assert 9 not in list(index.keys())

    def test_null_key_rejected(self, heap):
        index = OrderedIndex("t_k", heap, ["k"])
        from repro.engine.row import Row, RowId

        with pytest.raises(IndexError_):
            index.insert(Row((None, "x"), heap.schema), RowId(0, 0))

    def test_multi_column_rejected(self, heap):
        with pytest.raises(IndexError_):
            OrderedIndex("t_kv", heap, ["k", "v"])

    def test_string_keys_range(self, heap):
        pool = BufferPool(DiskManager(), capacity=8)
        schema = Schema([Column("s", TEXT, nullable=False)], relation_name="u")
        rel = HeapRelation("u", schema, pool)
        for word in ["apple", "banana", "cherry", "date"]:
            rel.insert((word,))
        index = build_index("u_s", rel, ["s"], ordered=True)
        hits = [rel.fetch(rid)["s"] for rid in index.probe_range("apple", "cherry", low_inclusive=True)]
        assert set(hits) == {"apple", "banana"}


class TestValidation:
    def test_unknown_column_rejected(self, heap):
        with pytest.raises(IndexError_):
            HashIndex("bad", heap, ["missing"])

    def test_empty_key_rejected(self, heap):
        with pytest.raises(IndexError_):
            HashIndex("bad", heap, [])

    def test_build_backfills_existing_rows(self, heap):
        populate(heap, n=10)
        index = build_index("t_k", heap, ["k"])
        assert index.entry_count == 10
