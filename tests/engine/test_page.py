"""Unit tests for slotted pages."""

import pytest

from repro.engine.page import PAGE_HEADER, SLOT_OVERHEAD, Page
from repro.errors import PageFullError, StorageError


class TestInsert:
    def test_insert_returns_slot_numbers(self):
        page = Page(0)
        assert page.insert(("a",), 10) == 0
        assert page.insert(("b",), 10) == 1

    def test_byte_accounting(self):
        page = Page(0)
        page.insert(("a",), 10)
        assert page.used_bytes == PAGE_HEADER + 10 + SLOT_OVERHEAD

    def test_page_full_raises(self):
        page = Page(0, capacity=PAGE_HEADER + 30)
        page.insert(("a",), 20)
        with pytest.raises(PageFullError):
            page.insert(("b",), 20)

    def test_fits_predicts_insert(self):
        page = Page(0, capacity=PAGE_HEADER + 30)
        assert page.fits(20)
        page.insert(("a",), 20)
        assert not page.fits(20)

    def test_none_payload_rejected(self):
        with pytest.raises(StorageError):
            Page(0).insert(None, 4)

    def test_tombstone_slot_reused(self):
        page = Page(0)
        slot = page.insert(("a",), 10)
        page.delete(slot)
        assert page.insert(("b",), 10) == slot


class TestDelete:
    def test_delete_returns_payload(self):
        page = Page(0)
        slot = page.insert(("a",), 10)
        assert page.delete(slot) == ("a",)
        assert page.read(slot) is None

    def test_double_delete_raises(self):
        page = Page(0)
        slot = page.insert(("a",), 10)
        page.delete(slot)
        with pytest.raises(StorageError):
            page.delete(slot)

    def test_delete_frees_bytes(self):
        page = Page(0, capacity=PAGE_HEADER + 30)
        slot = page.insert(("a",), 20)
        page.delete(slot)
        assert page.fits(20)

    def test_other_slots_stable_after_delete(self):
        page = Page(0)
        page.insert(("a",), 10)
        slot_b = page.insert(("b",), 10)
        page.delete(0)
        assert page.read(slot_b) == ("b",)


class TestUpdate:
    def test_in_place_update(self):
        page = Page(0)
        slot = page.insert(("a",), 10)
        page.update(slot, ("bb",), 12)
        assert page.read(slot) == ("bb",)

    def test_update_grows_accounting(self):
        page = Page(0)
        slot = page.insert(("a",), 10)
        used = page.used_bytes
        page.update(slot, ("bb",), 15)
        assert page.used_bytes == used + 5

    def test_update_overflow_raises(self):
        page = Page(0, capacity=PAGE_HEADER + 20)
        slot = page.insert(("a",), 10)
        with pytest.raises(PageFullError):
            page.update(slot, ("b" * 50,), 50)

    def test_update_deleted_slot_raises(self):
        page = Page(0)
        slot = page.insert(("a",), 10)
        page.delete(slot)
        with pytest.raises(StorageError):
            page.update(slot, ("b",), 10)


class TestIteration:
    def test_live_slots_skips_tombstones(self):
        page = Page(0)
        page.insert(("a",), 10)
        page.insert(("b",), 10)
        page.insert(("c",), 10)
        page.delete(1)
        assert [(s, p) for s, p in page.live_slots()] == [(0, ("a",)), (2, ("c",))]

    def test_counts(self):
        page = Page(0)
        page.insert(("a",), 10)
        page.insert(("b",), 10)
        page.delete(0)
        assert page.live_count == 1
        assert page.slot_count == 2

    def test_bad_slot_raises(self):
        with pytest.raises(StorageError):
            Page(0).read(0)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(StorageError):
            Page(0, capacity=PAGE_HEADER)
