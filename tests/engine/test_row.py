"""Unit tests for Row and RowId."""

import pytest

from repro.engine.datatypes import INTEGER, TEXT
from repro.engine.row import Row, RowId
from repro.engine.schema import Column, Schema


@pytest.fixture
def schema():
    return Schema(
        [Column("id", INTEGER, nullable=False), Column("name", TEXT)],
        relation_name="r",
    )


class TestAccess:
    def test_by_position_and_name(self, schema):
        row = Row((7, "x"), schema)
        assert row[0] == 7
        assert row["name"] == "x"
        assert row["r.id"] == 7

    def test_get_with_default(self, schema):
        row = Row((7, "x"), schema)
        assert row.get("name") == "x"
        assert row.get("missing", "fallback") == "fallback"

    def test_as_dict(self, schema):
        assert Row((7, "x"), schema).as_dict() == {"id": 7, "name": "x"}

    def test_iteration_and_len(self, schema):
        row = Row((7, "x"), schema)
        assert list(row) == [7, "x"]
        assert len(row) == 2


class TestEquality:
    def test_value_equality_ignores_schema(self, schema):
        other_schema = Schema([Column("a", INTEGER), Column("b", TEXT)])
        assert Row((1, "x"), schema) == Row((1, "x"), other_schema)
        assert hash(Row((1, "x"), schema)) == hash(Row((1, "x"), other_schema))

    def test_different_values_not_equal(self, schema):
        assert Row((1, "x"), schema) != Row((2, "x"), schema)

    def test_usable_in_sets(self, schema):
        rows = {Row((1, "x"), schema), Row((1, "x"), schema), Row((2, "y"), schema)}
        assert len(rows) == 2


class TestTransforms:
    def test_project(self, schema):
        row = Row((7, "x"), schema)
        projected = row.project(["name"])
        assert projected.values == ("x",)

    def test_project_qualified(self, schema):
        row = Row((7, "x"), schema)
        assert row.project(["r.name", "r.id"]).values == ("x", 7)

    def test_replace(self, schema):
        row = Row((7, "x"), schema)
        replaced = row.replace(name="y")
        assert replaced.values == (7, "y")
        assert row.values == (7, "x"), "original must be untouched"

    def test_concat(self, schema):
        other_schema = Schema([Column("e", TEXT)], relation_name="s")
        joined_schema = schema.concat(other_schema)
        joined = Row((7, "x"), schema).concat(Row(("z",), other_schema), joined_schema)
        assert joined.values == (7, "x", "z")
        assert joined["s.e"] == "z"

    def test_byte_size_counts_columns(self, schema):
        assert Row((7, "ab"), schema).byte_size() == 4 + 4
        assert Row((7, None), schema).byte_size() == 4 + 1


class TestRowId:
    def test_equality_and_hash(self):
        assert RowId(1, 2) == RowId(1, 2)
        assert hash(RowId(1, 2)) == hash(RowId(1, 2))
        assert RowId(1, 2) != RowId(1, 3)

    def test_ordering(self):
        assert RowId(1, 5) < RowId(2, 0)
        assert RowId(1, 1) < RowId(1, 2)
