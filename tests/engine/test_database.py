"""Unit tests for the Database facade: DML with index maintenance and
change notification."""

import pytest

from repro.engine import Column, Database, INTEGER, TEXT
from repro.engine.transactions import ChangeKind


@pytest.fixture
def tdb(db: Database) -> Database:
    db.create_relation(
        "t",
        [Column("id", INTEGER, nullable=False), Column("k", INTEGER), Column("v", TEXT)],
    )
    db.create_index("t_k", "t", ["k"])
    return db


class TestInsert:
    def test_insert_updates_indexes(self, tdb):
        row_id = tdb.insert("t", (1, 5, "x"))
        assert tdb.catalog.index("t_k").probe(5) == [row_id]

    def test_insert_many(self, tdb):
        tdb.insert_many("t", [(i, i % 2, "v") for i in range(6)])
        assert len(tdb.catalog.index("t_k").probe(0)) == 3

    def test_listener_notified(self, tdb):
        seen = []
        tdb.add_change_listener(lambda change, txn: seen.append(change))
        tdb.insert("t", (1, 5, "x"))
        assert len(seen) == 1
        assert seen[0].kind is ChangeKind.INSERT
        assert seen[0].new_row.values == (1, 5, "x")


class TestDelete:
    def test_delete_updates_indexes(self, tdb):
        row_id = tdb.insert("t", (1, 5, "x"))
        tdb.delete("t", row_id)
        assert tdb.catalog.index("t_k").probe(5) == []

    def test_delete_where(self, tdb):
        tdb.insert_many("t", [(i, i % 3, "v") for i in range(9)])
        deleted = tdb.delete_where("t", lambda row: row["k"] == 1)
        assert len(deleted) == 3
        assert tdb.catalog.relation("t").row_count == 6
        assert tdb.catalog.index("t_k").probe(1) == []

    def test_delete_notifies_with_old_row(self, tdb):
        seen = []
        row_id = tdb.insert("t", (1, 5, "x"))
        tdb.add_change_listener(lambda change, txn: seen.append(change))
        tdb.delete("t", row_id)
        assert seen[0].kind is ChangeKind.DELETE
        assert seen[0].old_row.values == (1, 5, "x")


class TestUpdate:
    def test_update_moves_index_entries(self, tdb):
        row_id = tdb.insert("t", (1, 5, "x"))
        _, _, new_id = tdb.update("t", row_id, k=9)
        assert tdb.catalog.index("t_k").probe(5) == []
        assert tdb.catalog.index("t_k").probe(9) == [new_id]

    def test_update_notifies_both_rows(self, tdb):
        seen = []
        row_id = tdb.insert("t", (1, 5, "x"))
        tdb.add_change_listener(lambda change, txn: seen.append(change))
        tdb.update("t", row_id, v="y")
        change = seen[0]
        assert change.kind is ChangeKind.UPDATE
        assert change.old_row.values == (1, 5, "x")
        assert change.new_row.values == (1, 5, "y")

    def test_update_records_in_transaction(self, tdb):
        row_id = tdb.insert("t", (1, 5, "x"))
        with tdb.begin() as txn:
            tdb.update("t", row_id, v="z", txn=txn)
            assert len(txn.changes) == 1


class TestListeners:
    def test_remove_listener(self, tdb):
        seen = []
        listener = lambda change, txn: seen.append(change)  # noqa: E731
        tdb.add_change_listener(listener)
        tdb.insert("t", (1, 1, "a"))
        tdb.remove_change_listener(listener)
        tdb.insert("t", (2, 2, "b"))
        assert len(seen) == 1


class TestIOAccounting:
    def test_io_snapshot_delta(self, tdb):
        before = tdb.io_snapshot()
        for i in range(200):
            tdb.insert("t", (i, i, "x" * 100))
        delta = tdb.io_since(before)
        assert delta.writes > 0
