"""Unit tests for QueryTemplate and Query binding."""

import pytest

from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
)
from repro.engine.template import Query, QueryTemplate, SelectionSlot, SlotForm
from repro.errors import ConditionError, ViewDefinitionError


def make_template(**overrides):
    kwargs = dict(
        name="qt",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.INTERVAL),
        ),
    )
    kwargs.update(overrides)
    return QueryTemplate(**kwargs)


class TestSlot:
    def test_unqualified_column_rejected(self):
        with pytest.raises(ConditionError):
            SelectionSlot("r", "f", SlotForm.EQUALITY)

    def test_wrong_relation_rejected(self):
        with pytest.raises(ConditionError):
            SelectionSlot("r", "s.g", SlotForm.EQUALITY)

    def test_bare_column(self):
        slot = SelectionSlot("r", "r.f", SlotForm.EQUALITY)
        assert slot.bare_column == "f"


class TestTemplateValidation:
    def test_valid_template(self):
        template = make_template()
        assert template.arity == 2

    def test_duplicate_relations_rejected(self):
        with pytest.raises(ViewDefinitionError):
            make_template(relations=("r", "r"))

    def test_slot_on_unknown_relation_rejected(self):
        with pytest.raises(ViewDefinitionError):
            make_template(
                slots=(SelectionSlot("x", "x.f", SlotForm.EQUALITY),)
            )

    def test_join_on_unknown_relation_rejected(self):
        with pytest.raises(ViewDefinitionError):
            make_template(joins=(JoinEquality("r", "c", "x", "d"),))

    def test_too_few_joins_rejected(self):
        with pytest.raises(ViewDefinitionError):
            make_template(joins=())

    def test_no_slots_rejected(self):
        with pytest.raises(ViewDefinitionError):
            make_template(slots=())

    def test_duplicate_slot_column_rejected(self):
        with pytest.raises(ViewDefinitionError):
            make_template(
                slots=(
                    SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                    SelectionSlot("r", "r.f", SlotForm.INTERVAL),
                )
            )

    def test_unqualified_select_item_rejected(self):
        with pytest.raises(ViewDefinitionError):
            make_template(select_list=("a",))

    def test_single_relation_needs_no_join(self):
        template = QueryTemplate(
            name="single",
            relations=("r",),
            select_list=("r.a",),
            joins=(),
            slots=(SelectionSlot("r", "r.f", SlotForm.EQUALITY),),
        )
        assert template.arity == 1


class TestExpandedSelectList:
    def test_adds_missing_cselect_attributes(self):
        template = make_template()
        assert template.expanded_select_list() == ("r.a", "s.e", "r.f", "s.g")

    def test_no_duplicates_when_already_selected(self):
        template = make_template(select_list=("r.a", "r.f", "s.e"))
        expanded = template.expanded_select_list()
        assert expanded.count("r.f") == 1

    def test_slot_index(self):
        template = make_template()
        assert template.slot_index("s.g") == 1
        with pytest.raises(ConditionError):
            template.slot_index("r.a")


class TestBind:
    def test_bind_orders_conditions_by_slot(self):
        template = make_template()
        query = template.bind(
            [
                IntervalDisjunction("s.g", [Interval(0, 10)]),
                EqualityDisjunction("r.f", [1]),
            ]
        )
        assert query.cselect.columns() == ("r.f", "s.g")

    def test_wrong_count_rejected(self):
        with pytest.raises(ConditionError):
            make_template().bind([EqualityDisjunction("r.f", [1])])

    def test_wrong_form_rejected(self):
        template = make_template()
        with pytest.raises(ConditionError):
            template.bind(
                [
                    EqualityDisjunction("r.f", [1]),
                    EqualityDisjunction("s.g", [1]),  # slot wants intervals
                ]
            )

    def test_missing_slot_condition_rejected(self):
        template = make_template()
        with pytest.raises(ConditionError):
            template.bind(
                [
                    EqualityDisjunction("r.f", [1]),
                    EqualityDisjunction("r.a", [1]),
                ]
            )

    def test_combination_factor(self):
        template = make_template()
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1, 2, 3]),
                IntervalDisjunction("s.g", [Interval(0, 5), Interval(5, 10)]),
            ]
        )
        assert query.combination_factor == 6

    def test_query_str_mentions_relations(self):
        template = make_template()
        query = template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(0, 5)]),
            ]
        )
        text = str(query)
        assert "from r, s" in text and "r.c=s.d" in text

    def test_direct_query_construction_checks_columns(self):
        template = make_template()
        from repro.engine.predicate import SelectionConjunction

        with pytest.raises(ConditionError):
            Query(
                template,
                SelectionConjunction([EqualityDisjunction("r.f", [1])]),
            )
