"""Unit tests for the simulated disk manager and I/O accounting."""

import pytest

from repro.engine.disk import DiskManager, IOStats, LatencyModel
from repro.errors import StorageError


class TestAllocation:
    def test_allocate_assigns_sequential_numbers(self):
        disk = DiskManager()
        assert disk.allocate_page().page_no == 0
        assert disk.allocate_page().page_no == 1

    def test_allocation_charged_as_write(self):
        disk = DiskManager()
        disk.allocate_page()
        assert disk.stats.writes == 1
        assert disk.stats.allocations == 1

    def test_page_count(self):
        disk = DiskManager()
        disk.allocate_page()
        disk.allocate_page()
        assert disk.page_count == 2


class TestReadWrite:
    def test_read_charges(self):
        disk = DiskManager()
        page = disk.allocate_page()
        disk.read_page(page.page_no)
        assert disk.stats.reads == 1

    def test_write_clears_dirty(self):
        disk = DiskManager()
        page = disk.allocate_page()
        page.dirty = True
        disk.write_page(page)
        assert not page.dirty
        assert disk.stats.writes == 2  # allocation + flush

    def test_missing_page_raises(self):
        with pytest.raises(StorageError):
            DiskManager().read_page(99)

    def test_write_unallocated_raises(self):
        from repro.engine.page import Page

        with pytest.raises(StorageError):
            DiskManager().write_page(Page(5))

    def test_free_page(self):
        disk = DiskManager()
        page = disk.allocate_page()
        disk.free_page(page.page_no)
        assert not disk.exists(page.page_no)


class TestIOStats:
    def test_snapshot_is_independent(self):
        disk = DiskManager()
        snap = disk.stats.snapshot()
        disk.allocate_page()
        assert snap.writes == 0
        assert disk.stats.writes == 1

    def test_delta(self):
        stats = IOStats(reads=10, writes=5, allocations=2)
        earlier = IOStats(reads=4, writes=1, allocations=1)
        delta = stats.delta(earlier)
        assert (delta.reads, delta.writes, delta.allocations) == (6, 4, 1)

    def test_total_and_add(self):
        a = IOStats(reads=1, writes=2)
        b = IOStats(reads=3, writes=4, allocations=1)
        combined = a + b
        assert combined.total == 10
        assert combined.allocations == 1


class TestLatencyModel:
    def test_defaults_charge_disk_heavily(self):
        model = LatencyModel()
        assert model.cost(reads=1, writes=0) == pytest.approx(0.005)
        assert model.cost(reads=0, writes=0, memory_touches=1) < 1e-6

    def test_cost_is_linear(self):
        model = LatencyModel(read_seconds=0.01, write_seconds=0.02)
        assert model.cost(2, 3) == pytest.approx(2 * 0.01 + 3 * 0.02)
