"""Unit tests for the lock manager (Section 3.6's S/X protocol)."""

import pytest

from repro.engine.locks import LockManager, LockMode
from repro.errors import LockError


@pytest.fixture
def lm():
    return LockManager()


class TestSharedLocks:
    def test_multiple_readers(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(2, "pmv", LockMode.SHARED)
        assert lm.holds(1, "pmv", LockMode.SHARED)
        assert lm.holds(2, "pmv", LockMode.SHARED)

    def test_shared_blocked_by_exclusive(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            lm.acquire(2, "pmv", LockMode.SHARED)

    def test_reacquire_idempotent(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(1, "pmv", LockMode.SHARED)
        shared, exclusive = lm.holders("pmv")
        assert shared == {1} and exclusive is None


class TestExclusiveLocks:
    def test_exclusive_blocked_by_shared(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(2, "pmv", LockMode.EXCLUSIVE)

    def test_exclusive_blocked_by_exclusive(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            lm.acquire(2, "pmv", LockMode.EXCLUSIVE)

    def test_upgrade_when_sole_holder(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        assert lm.holds(1, "pmv", LockMode.EXCLUSIVE)

    def test_upgrade_blocked_by_other_reader(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(2, "pmv", LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(1, "pmv", LockMode.EXCLUSIVE)

    def test_x_subsumes_s(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        assert lm.holds(1, "pmv", LockMode.SHARED)


class TestRelease:
    def test_release_frees_object(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        lm.release(1, "pmv")
        lm.acquire(2, "pmv", LockMode.EXCLUSIVE)

    def test_release_all(self, lm):
        lm.acquire(1, "a", LockMode.SHARED)
        lm.acquire(1, "b", LockMode.EXCLUSIVE)
        lm.release_all(1)
        lm.acquire(2, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)

    def test_release_unheld_is_noop(self, lm):
        lm.release(1, "nothing")

    def test_other_holders_survive_release(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(2, "pmv", LockMode.SHARED)
        lm.release(1, "pmv")
        assert lm.holds(2, "pmv", LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(3, "pmv", LockMode.EXCLUSIVE)


class TestAccounting:
    def test_grants_and_denials_counted(self, lm):
        lm.acquire(1, "a", LockMode.SHARED)
        try:
            lm.acquire(2, "a", LockMode.EXCLUSIVE)
        except LockError:
            pass
        assert lm.grants == 1
        assert lm.denials == 1

    def test_compatibility_matrix(self):
        assert LockMode.SHARED.compatible_with(LockMode.SHARED)
        assert not LockMode.SHARED.compatible_with(LockMode.EXCLUSIVE)
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.EXCLUSIVE)


# ---------------------------------------------------------------------------
# Waiting mode (per-object FIFO queues, PR 3)
# ---------------------------------------------------------------------------

import threading
import time

from repro.errors import DeadlockError


def _spin_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.001)


class TestWaiting:
    def test_waiter_granted_on_release(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        granted = []

        def waiter():
            lm.acquire(2, "pmv", LockMode.SHARED, wait=True, timeout=5.0)
            granted.append(True)

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        _spin_until(lambda: lm.stats()["queued"] == 1)
        assert not granted  # still parked while the X is held
        lm.release(1, "pmv")
        thread.join(5.0)
        assert granted
        assert lm.holds(2, "pmv", LockMode.SHARED)

    def test_shared_batch_granted_together(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        granted = []

        def reader(txn_id):
            lm.acquire(txn_id, "pmv", LockMode.SHARED, wait=True, timeout=5.0)
            granted.append(txn_id)

        threads = [
            threading.Thread(target=reader, args=(t,), daemon=True) for t in (2, 3)
        ]
        for thread in threads:
            thread.start()
        _spin_until(lambda: lm.stats()["queued"] == 2)
        lm.release(1, "pmv")
        for thread in threads:
            thread.join(5.0)
        assert sorted(granted) == [2, 3]
        shared, exclusive = lm.holders("pmv")
        assert shared == {2, 3} and exclusive is None

    def test_fresh_shared_queues_behind_waiting_exclusive(self, lm):
        # Fairness: once an X waits, later S requests must not starve it.
        lm.acquire(1, "pmv", LockMode.SHARED)
        thread = threading.Thread(
            target=lambda: lm.acquire(
                2, "pmv", LockMode.EXCLUSIVE, wait=True, timeout=5.0
            ),
            daemon=True,
        )
        thread.start()
        _spin_until(lambda: lm.stats()["queued"] == 1)
        with pytest.raises(LockError):
            lm.acquire(3, "pmv", LockMode.SHARED)  # no-wait: denied, not granted
        lm.release(1, "pmv")
        thread.join(5.0)
        assert lm.holds(2, "pmv", LockMode.EXCLUSIVE)

    def test_sole_holder_upgrade_jumps_queue(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        thread = threading.Thread(
            target=lambda: lm.acquire(
                2, "pmv", LockMode.EXCLUSIVE, wait=True, timeout=5.0
            ),
            daemon=True,
        )
        thread.start()
        _spin_until(lambda: lm.stats()["queued"] == 1)
        # The sole S holder may upgrade in place even with a queue.
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        assert lm.holds(1, "pmv", LockMode.EXCLUSIVE)
        lm.release_all(1)
        thread.join(5.0)
        assert lm.holds(2, "pmv", LockMode.EXCLUSIVE)

    def test_timeout_raises_deadlock_error(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        started = time.monotonic()
        with pytest.raises(DeadlockError):
            lm.acquire(2, "pmv", LockMode.SHARED, wait=True, timeout=0.05)
        assert time.monotonic() - started < 2.0
        stats = lm.stats()
        assert stats["timeouts"] == 1
        assert stats["queued"] == 0  # the timed-out waiter was withdrawn

    def test_timed_out_waiter_does_not_block_later_grants(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            lm.acquire(2, "pmv", LockMode.EXCLUSIVE, wait=True, timeout=0.05)
        # The withdrawn X waiter must not keep gating fresh S requests.
        lm.acquire(3, "pmv", LockMode.SHARED)
        assert lm.holds(3, "pmv", LockMode.SHARED)


class TestStatsAndReaping:
    def test_state_reaped_when_object_free(self, lm):
        lm.acquire(1, "a", LockMode.SHARED)
        lm.acquire(1, "b", LockMode.EXCLUSIVE)
        assert lm.stats()["active_objects"] == 2
        lm.release_all(1)
        assert lm.stats()["active_objects"] == 0

    def test_stats_counters(self, lm):
        lm.acquire(1, "a", LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(2, "a", LockMode.EXCLUSIVE)
        stats = lm.stats()
        assert stats["grants"] == 1
        assert stats["denials"] == 1
        assert stats["waits"] == 0
        assert stats["timeouts"] == 0
