"""Unit tests for the lock manager (Section 3.6's S/X protocol)."""

import pytest

from repro.engine.locks import LockManager, LockMode
from repro.errors import LockError


@pytest.fixture
def lm():
    return LockManager()


class TestSharedLocks:
    def test_multiple_readers(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(2, "pmv", LockMode.SHARED)
        assert lm.holds(1, "pmv", LockMode.SHARED)
        assert lm.holds(2, "pmv", LockMode.SHARED)

    def test_shared_blocked_by_exclusive(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            lm.acquire(2, "pmv", LockMode.SHARED)

    def test_reacquire_idempotent(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(1, "pmv", LockMode.SHARED)
        shared, exclusive = lm.holders("pmv")
        assert shared == {1} and exclusive is None


class TestExclusiveLocks:
    def test_exclusive_blocked_by_shared(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(2, "pmv", LockMode.EXCLUSIVE)

    def test_exclusive_blocked_by_exclusive(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        with pytest.raises(LockError):
            lm.acquire(2, "pmv", LockMode.EXCLUSIVE)

    def test_upgrade_when_sole_holder(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        assert lm.holds(1, "pmv", LockMode.EXCLUSIVE)

    def test_upgrade_blocked_by_other_reader(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(2, "pmv", LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(1, "pmv", LockMode.EXCLUSIVE)

    def test_x_subsumes_s(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        assert lm.holds(1, "pmv", LockMode.SHARED)


class TestRelease:
    def test_release_frees_object(self, lm):
        lm.acquire(1, "pmv", LockMode.EXCLUSIVE)
        lm.release(1, "pmv")
        lm.acquire(2, "pmv", LockMode.EXCLUSIVE)

    def test_release_all(self, lm):
        lm.acquire(1, "a", LockMode.SHARED)
        lm.acquire(1, "b", LockMode.EXCLUSIVE)
        lm.release_all(1)
        lm.acquire(2, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)

    def test_release_unheld_is_noop(self, lm):
        lm.release(1, "nothing")

    def test_other_holders_survive_release(self, lm):
        lm.acquire(1, "pmv", LockMode.SHARED)
        lm.acquire(2, "pmv", LockMode.SHARED)
        lm.release(1, "pmv")
        assert lm.holds(2, "pmv", LockMode.SHARED)
        with pytest.raises(LockError):
            lm.acquire(3, "pmv", LockMode.EXCLUSIVE)


class TestAccounting:
    def test_grants_and_denials_counted(self, lm):
        lm.acquire(1, "a", LockMode.SHARED)
        try:
            lm.acquire(2, "a", LockMode.EXCLUSIVE)
        except LockError:
            pass
        assert lm.grants == 1
        assert lm.denials == 1

    def test_compatibility_matrix(self):
        assert LockMode.SHARED.compatible_with(LockMode.SHARED)
        assert not LockMode.SHARED.compatible_with(LockMode.EXCLUSIVE)
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.EXCLUSIVE)
