"""Unit tests for table/column statistics and selectivity-aware planning."""

import pytest

from repro.engine import Column, Database, EqualityDisjunction, INTEGER, Interval, TEXT
from repro.engine.stats import StatisticsCollector
from repro.errors import EngineError


@pytest.fixture
def analyzed(db: Database):
    db.create_relation(
        "t",
        [Column("k", INTEGER, nullable=False), Column("skew", INTEGER), Column("v", TEXT)],
    )
    # skew: value 0 appears 50x, values 1..50 once each, 10 NULLs.
    rows = [(i, 0, "hot") for i in range(50)]
    rows += [(100 + i, i, "cold") for i in range(1, 51)]
    rows += [(200 + i, None, "null") for i in range(10)]
    db.insert_many("t", rows)
    collector = StatisticsCollector(mcv_count=5, histogram_buckets=10)
    table = collector.analyze(db.catalog.relation("t"))
    return db, collector, table


class TestCollection:
    def test_row_and_null_counts(self, analyzed):
        _, _, table = analyzed
        assert table.row_count == 110
        assert table.column("skew").null_count == 10
        assert table.column("skew").null_fraction == pytest.approx(10 / 110)

    def test_distinct_count(self, analyzed):
        _, _, table = analyzed
        assert table.column("skew").distinct_count == 51
        assert table.column("v").distinct_count == 3

    def test_min_max(self, analyzed):
        _, _, table = analyzed
        assert table.column("skew").min_value == 0
        assert table.column("skew").max_value == 50

    def test_mcv_captures_heavy_hitter(self, analyzed):
        _, _, table = analyzed
        assert table.column("skew").most_common[0] == 50

    def test_qualified_column_lookup(self, analyzed):
        _, _, table = analyzed
        assert table.column("t.skew").column == "skew"
        with pytest.raises(EngineError):
            table.column("t.missing")

    def test_unanalyzed_relation_raises(self, analyzed):
        _, collector, _ = analyzed
        with pytest.raises(EngineError):
            collector.table("ghost")


class TestSelectivity:
    def test_mcv_equality_selectivity(self, analyzed):
        _, _, table = analyzed
        stats = table.column("skew")
        assert stats.equality_selectivity(0) == pytest.approx(50 / 110)

    def test_rare_value_selectivity_uses_uniformity(self, analyzed):
        _, _, table = analyzed
        stats = table.column("skew")
        rare = stats.equality_selectivity(40)
        assert 0 < rare < stats.equality_selectivity(0)

    def test_unknown_value_nonnegative(self, analyzed):
        _, _, table = analyzed
        assert table.column("skew").equality_selectivity(9999) >= 0.0

    def test_disjunction_capped_at_one(self, analyzed):
        _, _, table = analyzed
        stats = table.column("v")
        assert stats.disjunction_selectivity(["hot", "cold", "null"]) <= 1.0

    def test_interval_selectivity_scales_with_width(self, analyzed):
        _, _, table = analyzed
        stats = table.column("skew")
        narrow = stats.interval_selectivity(Interval(10, 15))
        wide = stats.interval_selectivity(Interval(1, 50, True, True))
        assert 0 <= narrow <= wide <= 1.0

    def test_interval_outside_range_is_zero(self, analyzed):
        _, _, table = analyzed
        assert table.column("skew").interval_selectivity(Interval(500, 600)) == 0.0


class TestPlannerIntegration:
    def test_planner_prefers_selective_slot(self, db: Database):
        from repro.engine import JoinEquality, QueryTemplate, SelectionSlot, SlotForm

        db.create_relation("r", [Column("c", INTEGER), Column("f", INTEGER)])
        db.create_relation("s", [Column("d", INTEGER), Column("g", INTEGER)])
        db.create_index("r_f", "r", ["f"])
        db.create_index("r_c", "r", ["c"])
        db.create_index("s_d", "s", ["d"])
        db.create_index("s_g", "s", ["g"])
        # r.f is non-selective (all rows share f=1); s.g is selective.
        for i in range(200):
            db.insert("r", (i % 20, 1))
        for j in range(200):
            db.insert("s", (j % 20, j))
        template = QueryTemplate(
            "qt",
            ("r", "s"),
            ("r.c", "s.d"),
            (JoinEquality("r", "c", "s", "d"),),
            (
                SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                SelectionSlot("s", "s.g", SlotForm.EQUALITY),
            ),
        )
        query = template.bind(
            [EqualityDisjunction("r.f", [1]), EqualityDisjunction("s.g", [7])]
        )
        # Without statistics: template order wins (drives on r.f).
        assert "IndexEqualityScan(r via r_f" in db.plan(query).explain()
        # With statistics: the selective s.g slot drives.
        db.analyze()
        plan = db.plan(query)
        assert "IndexEqualityScan(s via s_g" in plan.explain()
        # And the answer is unchanged.
        rows = plan.run()
        assert all(row["s.g"] == 7 and row["r.f"] == 1 for row in rows)
        assert len(rows) == 10  # r.c==s.d==7 -> 10 r rows x 1 s row

    def test_analyze_single_relation(self, db: Database):
        db.create_relation("only", [Column("x", INTEGER)])
        db.insert("only", (1,))
        table = db.analyze("only")
        assert table is not None and table.row_count == 1

    def test_bad_collector_parameters(self):
        with pytest.raises(EngineError):
            StatisticsCollector(mcv_count=-1)
        with pytest.raises(EngineError):
            StatisticsCollector(histogram_buckets=1)
