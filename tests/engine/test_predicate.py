"""Unit tests for the predicate AST (intervals, disjunctions, Cselect)."""

import pytest

from repro.engine.datatypes import INTEGER, MINUS_INFINITY, PLUS_INFINITY, TEXT
from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    SelectionConjunction,
)
from repro.engine.row import Row
from repro.engine.schema import Column, Schema
from repro.errors import ConditionError


@pytest.fixture
def row():
    schema = Schema(
        [Column("f", INTEGER), Column("g", INTEGER), Column("name", TEXT)],
        relation_name="r",
    )
    return Row((3, 7, "carol"), schema)


class TestInterval:
    def test_open_membership(self):
        iv = Interval(1, 5)
        assert iv.contains_value(3)
        assert not iv.contains_value(1)
        assert not iv.contains_value(5)

    def test_closed_membership(self):
        iv = Interval(1, 5, low_inclusive=True, high_inclusive=True)
        assert iv.contains_value(1)
        assert iv.contains_value(5)

    def test_unbounded(self):
        iv = Interval(MINUS_INFINITY, 10)
        assert iv.contains_value(-(10**9))
        assert not iv.contains_value(10)
        everything = Interval.everything()
        assert everything.contains_value(0) and everything.contains_value("zzz")

    def test_none_never_contained(self):
        assert not Interval(1, 5).contains_value(None)

    def test_empty_interval_rejected(self):
        with pytest.raises(ConditionError):
            Interval(5, 1)
        with pytest.raises(ConditionError):
            Interval(3, 3)  # open at both ends => empty

    def test_degenerate_point_allowed_when_closed(self):
        iv = Interval(3, 3, low_inclusive=True, high_inclusive=True)
        assert iv.contains_value(3)

    def test_bad_infinity_bounds_rejected(self):
        with pytest.raises(ConditionError):
            Interval(PLUS_INFINITY, 3)
        with pytest.raises(ConditionError):
            Interval(3, MINUS_INFINITY)

    def test_overlaps(self):
        assert Interval(1, 5).overlaps(Interval(4, 8))
        assert not Interval(1, 5).overlaps(Interval(5, 8))
        assert Interval(1, 5, high_inclusive=True).overlaps(
            Interval(5, 8, low_inclusive=True)
        )
        assert Interval(MINUS_INFINITY, PLUS_INFINITY).overlaps(Interval(1, 2))

    def test_contains_interval(self):
        assert Interval(1, 10).contains_interval(Interval(2, 5))
        assert Interval(1, 10, low_inclusive=True).contains_interval(
            Interval(1, 5, low_inclusive=True)
        )
        assert not Interval(1, 10).contains_interval(Interval(1, 5, low_inclusive=True))
        assert Interval.everything().contains_interval(Interval(1, 2))
        assert not Interval(1, 5).contains_interval(Interval(1, 9))

    def test_intersect(self):
        out = Interval(1, 5).intersect(Interval(3, 9))
        assert out == Interval(3, 5)
        assert Interval(1, 2).intersect(Interval(3, 4)) is None

    def test_intersect_respects_closure(self):
        a = Interval(1, 5, high_inclusive=True)
        b = Interval(5, 9, low_inclusive=True)
        point = a.intersect(b)
        assert point is not None and point.contains_value(5)

    def test_intersect_unbounded(self):
        out = Interval(MINUS_INFINITY, 5).intersect(Interval(2, PLUS_INFINITY))
        assert out == Interval(2, 5)


class TestEqualityDisjunction:
    def test_matches(self, row):
        cond = EqualityDisjunction("r.f", [1, 3, 5])
        assert cond.matches(row)
        assert not EqualityDisjunction("r.f", [2]).matches(row)

    def test_fanout(self):
        assert EqualityDisjunction("r.f", [1, 2, 3]).fanout == 3

    def test_empty_rejected(self):
        with pytest.raises(ConditionError):
            EqualityDisjunction("r.f", [])

    def test_duplicates_rejected(self):
        with pytest.raises(ConditionError):
            EqualityDisjunction("r.f", [1, 1])


class TestIntervalDisjunction:
    def test_matches(self, row):
        cond = IntervalDisjunction("r.g", [Interval(0, 2), Interval(5, 9)])
        assert cond.matches(row)

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ConditionError):
            IntervalDisjunction("r.g", [Interval(0, 5), Interval(3, 9)])

    def test_disjoint_touching_ok(self):
        cond = IntervalDisjunction("r.g", [Interval(0, 5), Interval(5, 9)])
        assert cond.fanout == 2

    def test_string_intervals(self, row):
        cond = IntervalDisjunction("r.name", [Interval("b", "d")])
        assert cond.matches(row)


class TestSelectionConjunction:
    def test_matches_requires_all(self, row):
        cselect = SelectionConjunction(
            [
                EqualityDisjunction("r.f", [3]),
                IntervalDisjunction("r.g", [Interval(6, 8)]),
            ]
        )
        assert cselect.matches(row)

    def test_one_false_fails(self, row):
        cselect = SelectionConjunction(
            [EqualityDisjunction("r.f", [3]), EqualityDisjunction("r.g", [1])]
        )
        assert not cselect.matches(row)

    def test_combination_factor(self):
        cselect = SelectionConjunction(
            [EqualityDisjunction("r.f", [1, 2]), EqualityDisjunction("r.g", [1, 2, 3])]
        )
        assert cselect.combination_factor() == 6

    def test_repeated_attribute_rejected(self):
        with pytest.raises(ConditionError):
            SelectionConjunction(
                [EqualityDisjunction("r.f", [1]), EqualityDisjunction("r.f", [2])]
            )

    def test_columns_order_preserved(self):
        cselect = SelectionConjunction(
            [EqualityDisjunction("r.g", [1]), EqualityDisjunction("r.f", [2])]
        )
        assert cselect.columns() == ("r.g", "r.f")


class TestJoinEquality:
    def test_matches(self):
        left_schema = Schema([Column("c", INTEGER)], relation_name="r")
        right_schema = Schema([Column("d", INTEGER)], relation_name="s")
        join = JoinEquality("r", "c", "s", "d")
        assert join.matches(Row((5,), left_schema), Row((5,), right_schema))
        assert not join.matches(Row((5,), left_schema), Row((6,), right_schema))

    def test_qualified_names(self):
        join = JoinEquality("r", "c", "s", "d")
        assert join.qualified_left() == "r.c"
        assert join.qualified_right() == "s.d"
