"""Unit tests for the rule-based planner."""

import pytest

from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.errors import PlanningError
from tests.conftest import brute_force_eqt, eqt_query


class TestEqtPlans:
    def test_driver_uses_first_indexed_slot(self, eqt_db, eqt):
        query = eqt_query(eqt, [1, 3], [2, 4])
        plan = eqt_db.plan(query)
        text = plan.explain()
        assert "IndexEqualityScan(r via r_f" in text
        assert "IndexNestedLoopJoin(inner=s via s_d" in text

    def test_results_match_brute_force(self, eqt_db, eqt):
        query = eqt_query(eqt, [1, 3], [2, 4])
        rows = eqt_db.run(query)
        got = sorted(tuple(row.values) for row in rows)
        assert got == brute_force_eqt(eqt_db, {1, 3}, {2, 4})

    def test_projects_expanded_select_list(self, eqt_db, eqt):
        query = eqt_query(eqt, [1], [2])
        rows = eqt_db.run(query)
        assert rows, "expected some results"
        assert rows[0].schema.has_column("r.f")
        assert rows[0].schema.has_column("s.g")

    def test_blocking_flag(self, eqt_db, eqt):
        query = eqt_query(eqt, [1], [2])
        assert "Materialize" in eqt_db.plan(query, blocking=True).explain()
        assert "Materialize" not in eqt_db.plan(query, blocking=False).explain()

    def test_empty_result(self, eqt_db, eqt):
        query = eqt_query(eqt, [999], [2])
        assert eqt_db.run(query) == []


class TestFallbacks:
    def test_seq_scan_when_no_index(self):
        db = Database()
        db.create_relation("t", [Column("a", INTEGER), Column("b", INTEGER)])
        for i in range(20):
            db.insert("t", (i, i % 4))
        template = QueryTemplate(
            "single",
            ("t",),
            ("t.a",),
            (),
            (SelectionSlot("t", "t.b", SlotForm.EQUALITY),),
        )
        query = template.bind([EqualityDisjunction("t.b", [1, 2])])
        plan = db.plan(query)
        assert "SeqScan(t)" in plan.explain()
        assert sorted(row["t.a"] for row in plan.run()) == sorted(
            i for i in range(20) if i % 4 in (1, 2)
        )

    def test_missing_join_index_falls_back_to_hash_join(self):
        db = Database()
        db.create_relation("r", [Column("c", INTEGER), Column("f", INTEGER)])
        db.create_relation("s", [Column("d", INTEGER), Column("g", INTEGER)])
        db.create_index("r_f", "r", ["f"])
        for i in range(30):
            db.insert("r", (i % 5, i % 3))
            db.insert("s", (i % 5, i % 4))
        template = QueryTemplate(
            "qt",
            ("r", "s"),
            ("r.c", "s.d"),
            (JoinEquality("r", "c", "s", "d"),),
            (
                SelectionSlot("r", "r.f", SlotForm.EQUALITY),
                SelectionSlot("s", "s.g", SlotForm.EQUALITY),
            ),
        )
        query = template.bind(
            [EqualityDisjunction("r.f", [1]), EqualityDisjunction("s.g", [1])]
        )
        plan = db.plan(query)
        assert "NestedLoopJoin(inner=s hashed on d" in plan.explain()
        r_rows = list(db.catalog.relation("r").scan_rows())
        s_rows = list(db.catalog.relation("s").scan_rows())
        expect = sorted(
            (r["c"], s["d"], r["f"], s["g"])
            for r in r_rows
            for s in s_rows
            if r["c"] == s["d"] and r["f"] == 1 and s["g"] == 1
        )
        assert sorted(tuple(row.values) for row in plan.run()) == expect

    def test_interval_slot_needs_ordered_index_for_driving(self):
        db = Database()
        db.create_relation("t", [Column("a", INTEGER), Column("b", INTEGER)])
        db.create_index("t_b_hash", "t", ["b"])  # hash: no ranges
        for i in range(20):
            db.insert("t", (i, i))
        template = QueryTemplate(
            "iv",
            ("t",),
            ("t.a",),
            (),
            (SelectionSlot("t", "t.b", SlotForm.INTERVAL),),
        )
        query = template.bind([IntervalDisjunction("t.b", [Interval(3, 8)])])
        plan = db.plan(query)
        # Falls back to a filtered SeqScan rather than misusing the hash index.
        assert "SeqScan" in plan.explain()
        assert sorted(row["t.a"] for row in plan.run()) == [4, 5, 6, 7]

    def test_interval_slot_uses_ordered_index(self):
        db = Database()
        db.create_relation("t", [Column("a", INTEGER), Column("b", INTEGER)])
        db.create_index("t_b", "t", ["b"], ordered=True)
        for i in range(20):
            db.insert("t", (i, i))
        template = QueryTemplate(
            "iv",
            ("t",),
            ("t.a",),
            (),
            (SelectionSlot("t", "t.b", SlotForm.INTERVAL),),
        )
        query = template.bind([IntervalDisjunction("t.b", [Interval(3, 8)])])
        plan = db.plan(query)
        assert "IndexRangeScan" in plan.explain()
        assert sorted(row["t.a"] for row in plan.run()) == [4, 5, 6, 7]


class TestThreeWayJoin:
    @pytest.fixture
    def db3(self):
        db = Database()
        db.create_relation("a", [Column("x", INTEGER), Column("fa", INTEGER)])
        db.create_relation("b", [Column("x", INTEGER), Column("y", INTEGER)])
        db.create_relation("c", [Column("y", INTEGER), Column("fc", INTEGER)])
        db.create_index("a_fa", "a", ["fa"])
        db.create_index("a_x", "a", ["x"])
        db.create_index("b_x", "b", ["x"])
        db.create_index("b_y", "b", ["y"])
        db.create_index("c_y", "c", ["y"])
        for i in range(12):
            db.insert("a", (i % 4, i % 3))
            db.insert("b", (i % 4, i % 6))
            db.insert("c", (i % 6, i % 2))
        return db

    def test_chain_join_matches_brute_force(self, db3):
        template = QueryTemplate(
            "abc",
            ("a", "b", "c"),
            ("a.fa", "c.fc"),
            (JoinEquality("a", "x", "b", "x"), JoinEquality("b", "y", "c", "y")),
            (
                SelectionSlot("a", "a.fa", SlotForm.EQUALITY),
                SelectionSlot("c", "c.fc", SlotForm.EQUALITY),
            ),
        )
        query = template.bind(
            [EqualityDisjunction("a.fa", [1]), EqualityDisjunction("c.fc", [0])]
        )
        rows = db3.run(query)
        a_rows = list(db3.catalog.relation("a").scan_rows())
        b_rows = list(db3.catalog.relation("b").scan_rows())
        c_rows = list(db3.catalog.relation("c").scan_rows())
        expect = sorted(
            (ra["fa"], rc["fc"], rc["fc"])
            for ra in a_rows
            for rb in b_rows
            for rc in c_rows
            if ra["x"] == rb["x"] and rb["y"] == rc["y"] and ra["fa"] == 1 and rc["fc"] == 0
        )
        got = sorted((row["a.fa"], row["c.fc"], row["c.fc"]) for row in rows)
        assert got == expect

    def test_disconnected_join_graph_raises(self, db3):
        template = QueryTemplate(
            "broken",
            ("a", "b", "c"),
            ("a.fa", "c.fc"),
            # Only one edge for three relations passes the >= n-1 check
            # if we add a redundant self-ish edge; instead check the
            # planner error by removing reachability.
            (JoinEquality("a", "x", "b", "x"), JoinEquality("a", "x", "b", "y")),
            (
                SelectionSlot("a", "a.fa", SlotForm.EQUALITY),
                SelectionSlot("c", "c.fc", SlotForm.EQUALITY),
            ),
        )
        query = template.bind(
            [EqualityDisjunction("a.fa", [1]), EqualityDisjunction("c.fc", [0])]
        )
        with pytest.raises(PlanningError):
            db3.plan(query)
