"""Tests for snapshots, checkpoints, and snapshot-based recovery."""

import pytest

from repro.engine import Column, Database, INTEGER, TEXT, WriteAheadLog
from repro.engine.snapshot import (
    checkpoint,
    recover_from_snapshot,
    restore_snapshot,
    snapshot_from_json,
    snapshot_to_json,
    take_snapshot,
)
from repro.errors import EngineError


def build_db(wal=None) -> Database:
    db = Database(wal=wal)
    db.create_relation(
        "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
    )
    db.create_index("t_id", "t", ["id"])
    return db


def contents(db, name="t"):
    return sorted(tuple(r.values) for r in db.catalog.relation(name).scan_rows())


def physical(db, name="t"):
    return {rid: row.values for rid, row in db.catalog.relation(name).scan()}


class TestSnapshotRestore:
    def test_roundtrip_contents_and_addresses(self):
        db = build_db()
        ids = [db.insert("t", (i, f"v{i}")) for i in range(25)]
        db.delete("t", ids[3])
        db.delete("t", ids[17])
        restored = restore_snapshot(take_snapshot(db))
        assert contents(restored) == contents(db)
        assert physical(restored) == physical(db)

    def test_indexes_rebuilt(self):
        db = build_db()
        for i in range(10):
            db.insert("t", (i % 3, "x"))
        restored = restore_snapshot(take_snapshot(db))
        index = restored.catalog.index("t_id")
        assert index.entry_count == 10
        assert len(index.probe(1)) == len(db.catalog.index("t_id").probe(1))

    def test_tombstones_preserve_slot_numbering(self):
        db = build_db()
        ids = [db.insert("t", (i, "x")) for i in range(5)]
        db.delete("t", ids[1])
        restored = restore_snapshot(take_snapshot(db))
        # The surviving row ids must address the same rows.
        for rid in (ids[0], ids[2], ids[4]):
            assert restored.catalog.relation("t").fetch(rid).values == (
                db.catalog.relation("t").fetch(rid).values
            )

    def test_writes_continue_after_restore(self):
        db = build_db()
        ids = [db.insert("t", (i, "pad" * 10)) for i in range(8)]
        db.delete("t", ids[2])
        restored = restore_snapshot(take_snapshot(db))
        new_id = restored.insert("t", (99, "fresh"))
        assert restored.catalog.relation("t").fetch(new_id)["id"] == 99
        assert restored.catalog.index("t_id").probe(99) == [new_id]

    def test_json_serialization_roundtrip(self):
        db = build_db()
        db.insert("t", (1, "hello"))
        text = snapshot_to_json(take_snapshot(db))
        restored = restore_snapshot(snapshot_from_json(text))
        assert contents(restored) == [(1, "hello")]

    def test_bad_format_rejected(self):
        with pytest.raises(EngineError):
            restore_snapshot({"format": 99})


class TestCheckpointRecovery:
    def test_recovery_replays_only_tail(self):
        wal = WriteAheadLog()
        db = build_db(wal=wal)
        for i in range(10):
            db.insert("t", (i, "early"))
        snap = checkpoint(db)
        tail_start = len(wal)
        db.insert("t", (100, "late"))
        db.delete_where("t", lambda row: row["id"] == 4)
        recovered = recover_from_snapshot(snap, wal)
        assert contents(recovered) == contents(db)
        assert physical(recovered) == physical(db)
        # Only the post-checkpoint records were needed.
        assert len(list(wal.records(after_lsn=snap["checkpoint_lsn"]))) == (
            len(wal) - tail_start
        )

    def test_checkpoint_requires_wal(self):
        with pytest.raises(EngineError):
            checkpoint(build_db())

    def test_post_checkpoint_ddl_replayed(self):
        wal = WriteAheadLog()
        db = build_db(wal=wal)
        db.insert("t", (1, "a"))
        snap = checkpoint(db)
        db.create_relation("extra", [Column("x", INTEGER)])
        db.create_index("extra_x", "extra", ["x"])
        db.insert("extra", (7,))
        recovered = recover_from_snapshot(snap, wal)
        assert contents(recovered, "extra") == [(7,)]
        assert recovered.catalog.index("extra_x").probe(7)

    def test_empty_tail_is_fine(self):
        wal = WriteAheadLog()
        db = build_db(wal=wal)
        db.insert("t", (1, "a"))
        snap = checkpoint(db)
        recovered = recover_from_snapshot(snap, wal)
        assert contents(recovered) == [(1, "a")]

    def test_chained_checkpoints(self):
        wal = WriteAheadLog()
        db = build_db(wal=wal)
        db.insert("t", (1, "a"))
        checkpoint(db)
        db.insert("t", (2, "b"))
        snap2 = checkpoint(db)
        db.insert("t", (3, "c"))
        recovered = recover_from_snapshot(snap2, wal)
        assert contents(recovered) == [(1, "a"), (2, "b"), (3, "c")]


class TestSnapshotChecksum:
    """CRC32 over the canonical snapshot body: a rotten checkpoint must
    refuse to restore instead of resurrecting a subtly wrong heap."""

    def test_serialized_snapshot_carries_matching_crc(self):
        import json

        from repro.engine.snapshot import snapshot_crc

        db = build_db()
        db.insert("t", (1, "a"))
        data = json.loads(snapshot_to_json(take_snapshot(db)))
        crc = data.pop("crc")
        assert crc == snapshot_crc(data)

    def test_roundtrip_restores_identical_database(self):
        db = build_db()
        for i in range(12):
            db.insert("t", (i, f"v{i}"))
        text = snapshot_to_json(take_snapshot(db))
        restored = restore_snapshot(snapshot_from_json(text))
        assert contents(restored) == contents(db)
        assert physical(restored) == physical(db)

    def test_corrupted_body_refused(self):
        from repro.errors import SnapshotCorruptionError

        db = build_db()
        db.insert("t", (1, "payload"))
        text = snapshot_to_json(take_snapshot(db))
        tampered = text.replace('"payload"', '"tampered"')
        with pytest.raises(SnapshotCorruptionError):
            snapshot_from_json(tampered)

    def test_garbage_and_truncation_refused(self):
        from repro.errors import SnapshotCorruptionError

        db = build_db()
        text = snapshot_to_json(take_snapshot(db))
        for bad in ("not json at all", text[: len(text) // 2], "[1, 2, 3]"):
            with pytest.raises(SnapshotCorruptionError):
                snapshot_from_json(bad)

    def test_legacy_snapshot_without_crc_accepted(self):
        import json

        db = build_db()
        db.insert("t", (1, "a"))
        data = json.loads(snapshot_to_json(take_snapshot(db)))
        del data["crc"]
        restored = restore_snapshot(snapshot_from_json(json.dumps(data)))
        assert contents(restored) == [(1, "a")]


class TestRestoredHeapPlacement:
    def test_restored_heap_tracks_open_pages_like_the_live_heap(self):
        """Regression: ``restore_snapshot`` must rebuild the open-page
        *set* alongside the open-page list.  With a stale empty set,
        the first delete on an already-open page re-appends it, and the
        next insert lands on a different page than the live heap's —
        replayed physical addresses then point at the wrong rows."""
        from repro.engine import WriteAheadLog

        db = Database(wal=WriteAheadLog(), page_size=256, buffer_pool_pages=8)
        db.create_relation(
            "t", [Column("id", INTEGER, nullable=False), Column("v", TEXT)]
        )
        # Enough rows to close the first page and open a second.
        ids = [db.insert("t", (i, "x" * 24)) for i in range(20)]
        relation = db.catalog.relation("t")
        assert len(relation._page_nos) >= 2
        restored = restore_snapshot(take_snapshot(db), buffer_pool_pages=8)
        restored_rel = restored.catalog.relation("t")
        assert restored_rel._open_page_set == relation._open_page_set
        # Delete from a closed page and from the open page, then
        # insert: both heaps must pick the same page and slot.
        for target in (db, restored):
            target.delete("t", ids[0])
            target.delete("t", ids[-1])
        assert db.insert("t", (777, "y" * 24)) == restored.insert(
            "t", (777, "y" * 24)
        )
        assert physical(restored) == physical(db)
