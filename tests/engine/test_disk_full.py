"""Disk-full (ENOSPC) degradation: typed refusals, reads keep serving,
auto-recovery, and the serving gate's resource report."""

import errno

import pytest

from repro.core import Discretization, PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
    WriteAheadLog,
)
from repro.errors import DiskFullError
from repro.faults import FaultInjector, FaultMode, FaultPlan, FaultSpec
from repro.qos.gate import ServingGate


def _template() -> QueryTemplate:
    return QueryTemplate(
        name="dq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def _build(injector: FaultInjector, tmp_path):
    wal = WriteAheadLog(path=str(tmp_path / "wal"), segment_bytes=4096)
    wal.fault_check = injector.check
    db = Database(wal=wal)
    db.disk.fault_check = injector.check
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    for i in range(8):
        db.insert("r", (i, i % 4, i % 2, f"a{i}"))
    for j in range(4):
        db.insert("s", (j % 4, j % 2, f"e{j}"))
    return db


def _window(site: str, start: int, length: int) -> FaultPlan:
    return FaultPlan(
        [FaultSpec(site, occ, FaultMode.ERROR) for occ in range(start, start + length)]
    )


class TestRefusal:
    @pytest.mark.parametrize("site", ["wal.enospc", "disk.full"])
    def test_dml_refused_typed_with_no_durable_effect(self, site, tmp_path):
        # Setup DML counts arrivals too: 12 seed writes precede the test.
        injector = FaultInjector(_window(site, 13, 3))
        db = _build(injector, tmp_path)
        lsn = db.wal.last_lsn
        rows = sorted(tuple(r.values) for r in db.catalog.relation("r").scan_rows())
        with pytest.raises(DiskFullError) as exc_info:
            db.insert("r", (100, 0, 0, "nope"))
        assert exc_info.value.site == site
        assert exc_info.value.errno == errno.ENOSPC
        assert isinstance(exc_info.value, OSError)
        assert db.wal.last_lsn == lsn
        assert rows == sorted(
            tuple(r.values) for r in db.catalog.relation("r").scan_rows()
        )
        assert db.disk_full is True
        assert db.disk_full_refusals == 1

    def test_all_dml_kinds_refused(self, tmp_path):
        injector = FaultInjector(_window("wal.enospc", 13, 6))
        db = _build(injector, tmp_path)
        row_id = next(iter(db.catalog.relation("r").scan()))[0]
        with pytest.raises(DiskFullError):
            db.insert("r", (100, 0, 0, "nope"))
        with pytest.raises(DiskFullError):
            db.delete("r", row_id)
        with pytest.raises(DiskFullError):
            db.update("r", row_id, a="nope")
        assert db.disk_full_refusals == 3

    def test_reads_keep_serving_while_disk_full(self, tmp_path):
        injector = FaultInjector(_window("disk.full", 13, 8))
        db = _build(injector, tmp_path)
        template = _template()
        manager = PMVManager(db)
        manager.create_view(template, Discretization(template), tuples_per_entry=4)
        with pytest.raises(DiskFullError):
            db.insert("r", (100, 0, 0, "nope"))
        assert db.disk_full
        query = template.bind(
            [
                EqualityDisjunction("r.f", [0]),
                EqualityDisjunction("s.g", [0]),
            ]
        )
        got = sorted(
            (tuple(r.values) for r in manager.execute(query).all_rows()), key=repr
        )
        want = sorted((tuple(r.values) for r in db.run(query)), key=repr)
        assert got == want

    def test_auto_recovery_on_next_successful_probe(self, tmp_path):
        injector = FaultInjector(_window("wal.enospc", 13, 2))
        db = _build(injector, tmp_path)
        with pytest.raises(DiskFullError):
            db.insert("r", (100, 0, 0, "a"))
        with pytest.raises(DiskFullError):
            db.insert("r", (100, 0, 0, "a"))
        assert db.disk_full
        db.insert("r", (100, 0, 0, "recovered"))  # window passed: accepted
        assert not db.disk_full
        assert db.disk_full_recoveries == 1
        assert db.disk_full_refusals == 2

    def test_gate_stats_surface_resource_state(self, tmp_path):
        injector = FaultInjector(_window("disk.full", 13, 1))
        db = _build(injector, tmp_path)
        template = _template()
        manager = PMVManager(db)
        manager.create_view(template, Discretization(template), tuples_per_entry=4)
        gate = ServingGate(manager)
        with pytest.raises(DiskFullError):
            db.insert("r", (100, 0, 0, "nope"))
        report = gate.stats()
        assert report["disk_full"]["active"] is True
        assert report["disk_full"]["refusals"] == 1
        assert report["wal_resources"]["segmented"] is True
        assert report["wal_repairs"] == 0
        db.insert("r", (100, 0, 0, "back"))
        report = gate.stats()
        assert report["disk_full"]["active"] is False
        assert report["disk_full"]["recoveries"] == 1
