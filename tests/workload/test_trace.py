"""Unit tests for query-trace recording, analysis, and replay."""

import pytest

from repro.core import learn_dividing_values
from repro.engine import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
)
from repro.errors import WorkloadError
from repro.workload import QueryTraceRecorder, make_eqt
from tests.conftest import eqt_query


@pytest.fixture
def interval_template():
    return QueryTemplate(
        "ivt",
        ("r", "s"),
        ("r.a", "s.e"),
        (JoinEquality("r", "c", "s", "d"),),
        (
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.INTERVAL),
        ),
    )


class TestRecording:
    def test_record_accumulates_in_order(self):
        template = make_eqt()
        recorder = QueryTraceRecorder(template)
        q1 = eqt_query(template, [1], [2])
        q2 = eqt_query(template, [3], [4])
        recorder.record(q1)
        recorder.record(q2)
        assert list(recorder.trace) == [q1, q2]
        assert len(recorder.trace) == 2

    def test_wrong_template_rejected(self):
        recorder = QueryTraceRecorder(make_eqt())
        other = make_eqt(name="other")
        with pytest.raises(WorkloadError):
            recorder.record(eqt_query(other, [1], [2]))

    def test_capacity_keeps_most_recent(self):
        template = make_eqt()
        recorder = QueryTraceRecorder(template, capacity=3)
        queries = [eqt_query(template, [i], [0]) for i in range(5)]
        recorder.record_all(queries)
        assert list(recorder.trace) == queries[2:]

    def test_invalid_capacity(self):
        with pytest.raises(WorkloadError):
            QueryTraceRecorder(make_eqt(), capacity=0)

    def test_wrap_records_and_forwards(self):
        template = make_eqt()
        recorder = QueryTraceRecorder(template)
        executed = []
        recording = recorder.wrap(lambda q: executed.append(q) or "ran")
        result = recording(eqt_query(template, [1], [2]))
        assert result == "ran"
        assert len(executed) == 1
        assert len(recorder.trace) == 1


class TestAnalysis:
    def test_observed_equality_values(self):
        template = make_eqt()
        recorder = QueryTraceRecorder(template)
        recorder.record(eqt_query(template, [1, 3], [2]))
        recorder.record(eqt_query(template, [1], [4]))
        assert sorted(recorder.trace.observed_values("r.f")) == [1, 1, 3]
        assert sorted(recorder.trace.observed_values("s.g")) == [2, 4]

    def test_observed_interval_endpoints(self, interval_template):
        recorder = QueryTraceRecorder(interval_template)
        query = interval_template.bind(
            [
                EqualityDisjunction("r.f", [1]),
                IntervalDisjunction("s.g", [Interval(5, 10), Interval(20, 30)]),
            ]
        )
        recorder.record(query)
        assert sorted(recorder.trace.observed_values("s.g")) == [5, 10, 20, 30]

    def test_value_frequencies(self):
        template = make_eqt()
        recorder = QueryTraceRecorder(template)
        for _ in range(3):
            recorder.record(eqt_query(template, [7], [0]))
        recorder.record(eqt_query(template, [9], [0]))
        freq = recorder.trace.value_frequencies("r.f")
        assert freq[7] == 3 and freq[9] == 1

    def test_hot_cells(self):
        template = make_eqt()
        recorder = QueryTraceRecorder(template)
        for _ in range(4):
            recorder.record(eqt_query(template, [1], [2]))
        recorder.record(eqt_query(template, [1, 5], [2, 6]))
        [(cell, count), *_] = recorder.trace.hot_cells(top=1)
        assert cell == (1, 2)
        assert count == 5

    def test_hot_cells_rejects_interval_templates(self, interval_template):
        recorder = QueryTraceRecorder(interval_template)
        recorder.record(
            interval_template.bind(
                [
                    EqualityDisjunction("r.f", [1]),
                    IntervalDisjunction("s.g", [Interval(0, 5)]),
                ]
            )
        )
        with pytest.raises(WorkloadError):
            recorder.trace.hot_cells()

    def test_trace_feeds_discretization_learner(self, interval_template):
        """The Section 3.1 pipeline: record interval endpoints from a
        trace, learn dividing values from them."""
        recorder = QueryTraceRecorder(interval_template)
        for low in range(0, 100, 5):
            recorder.record(
                interval_template.bind(
                    [
                        EqualityDisjunction("r.f", [1]),
                        IntervalDisjunction("s.g", [Interval(low, low + 5)]),
                    ]
                )
            )
        endpoints = recorder.trace.observed_values("s.g")
        cuts = learn_dividing_values(endpoints, bins=5)
        assert len(cuts) >= 3
        assert cuts == sorted(cuts)


class TestReplay:
    def test_replay_preserves_order_and_results(self, eqt_db, eqt, eqt_executor):
        recorder = QueryTraceRecorder(eqt)
        recording_execute = recorder.wrap(eqt_executor.execute)
        for fs, gs in [([1], [2]), ([3], [4]), ([1], [2])]:
            recording_execute(eqt_query(eqt, fs, gs))
        # Replay the recorded day against a fresh PMV configuration.
        from repro.core import Discretization, PartialMaterializedView, PMVExecutor

        view = PartialMaterializedView(eqt, Discretization(eqt), 3, 8, policy="2q")
        fresh = PMVExecutor(eqt_db, view)
        results = recorder.trace.replay(fresh.execute)
        assert len(results) == 3
        assert sorted(tuple(r.values) for r in results[0].all_rows()) == sorted(
            tuple(r.values) for r in results[2].all_rows()
        )
