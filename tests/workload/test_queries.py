"""Unit tests for query-stream generators."""

import pytest

from repro.errors import WorkloadError
from repro.workload.queries import ControlledQueryFactory, ZipfianQueryStream, factorize
from repro.workload.templates import make_t1, make_t2


class TestFactorize:
    @pytest.mark.parametrize(
        "h,dims,expected",
        [
            (1, 2, (1, 1)),
            (4, 2, (2, 2)),
            (6, 2, (3, 2)),
            (7, 2, (7, 1)),
            (10, 2, (5, 2)),
            (4, 3, (2, 2, 1)),
            (8, 3, (2, 2, 2)),
            (12, 3, (3, 2, 2)),
        ],
    )
    def test_balanced_descending(self, h, dims, expected):
        assert factorize(h, dims) == expected

    def test_product_invariant(self):
        import math

        for h in range(1, 31):
            for dims in (1, 2, 3):
                assert math.prod(factorize(h, dims)) == h

    def test_invalid_rejected(self):
        with pytest.raises(WorkloadError):
            factorize(0, 2)
        with pytest.raises(WorkloadError):
            factorize(4, 0)


@pytest.fixture
def t1_factory():
    dates = [f"1994-01-{d:02d}" for d in range(1, 21)]
    suppliers = list(range(1, 11))
    return ControlledQueryFactory(make_t1(), [dates, suppliers], seed=5)


class TestControlledFactory:
    def test_query_has_exact_h(self, t1_factory):
        for h in (1, 2, 4, 6, 9):
            query = t1_factory.query(h)
            assert query.combination_factor == h

    def test_hot_cell_always_included(self, t1_factory):
        hot = ("1994-01-03", 7)
        query = t1_factory.query(6, hot)
        dates = query.cselect.conditions[0].values
        supps = query.cselect.conditions[1].values
        assert hot[0] in dates and hot[1] in supps

    def test_values_are_distinct(self, t1_factory):
        query = t1_factory.query(9)
        for condition in query.cselect.conditions:
            assert len(set(condition.values)) == len(condition.values)

    def test_h_too_large_for_domain_rejected(self, t1_factory):
        with pytest.raises(WorkloadError):
            t1_factory.query(1000)

    def test_t2_three_dimensions(self):
        dates = [f"1994-02-{d:02d}" for d in range(1, 11)]
        factory = ControlledQueryFactory(
            make_t2(), [dates, list(range(1, 6)), list(range(3))], seed=5
        )
        query = factory.query(4)
        assert query.combination_factor == 4
        assert len(query.cselect.conditions) == 3

    def test_domain_count_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            ControlledQueryFactory(make_t1(), [[1, 2]])

    def test_tiny_domain_rejected(self):
        with pytest.raises(WorkloadError):
            ControlledQueryFactory(make_t1(), [[1], [1, 2]])

    def test_wrong_hot_arity_rejected(self, t1_factory):
        with pytest.raises(WorkloadError):
            t1_factory.query(2, hot=("1994-01-03",))


class TestZipfianStream:
    @pytest.fixture
    def stream(self):
        dates = [f"1994-01-{d:02d}" for d in range(1, 29)]
        return ZipfianQueryStream(
            make_t1(), [dates, list(range(1, 21))], alpha=1.2, seed=3
        )

    def test_queries_bind_to_template(self, stream):
        query = stream.next_query()
        assert query.template.name == "T1"
        assert query.combination_factor == 4  # 2 x 2 defaults

    def test_values_within_domains(self, stream):
        for query in stream.queries(20):
            dates, supps = query.cselect.conditions
            assert all(d.startswith("1994-01-") for d in dates.values)
            assert all(1 <= s <= 20 for s in supps.values)

    def test_skew_is_visible(self, stream):
        from collections import Counter

        counts = Counter()
        for query in stream.queries(300):
            counts.update(query.cselect.conditions[1].values)
        most = counts.most_common()
        assert most[0][1] > 3 * most[-1][1]

    def test_values_per_slot(self):
        stream = ZipfianQueryStream(
            make_t1(),
            [[f"1994-01-{d:02d}" for d in range(1, 11)], list(range(1, 11))],
            values_per_slot=[3, 1],
            seed=3,
        )
        query = stream.next_query()
        assert len(query.cselect.conditions[0].values) == 3
        assert len(query.cselect.conditions[1].values) == 1

    def test_bad_values_per_slot(self):
        with pytest.raises(WorkloadError):
            ZipfianQueryStream(
                make_t1(), [["a", "b"], [1, 2]], values_per_slot=[3, 1]
            )
