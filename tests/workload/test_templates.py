"""Unit tests for the T1/T2/Eqt template builders."""

import pytest

from repro.core import Discretization
from repro.workload.templates import (
    T1_SELECT_LIST,
    T2_SELECT_LIST,
    equality_discretization,
    make_eqt,
    make_t1,
    make_t2,
)


class TestT1:
    def test_shape(self):
        t1 = make_t1()
        assert t1.relations == ("orders", "lineitem")
        assert t1.arity == 2
        assert [s.column for s in t1.slots] == ["orders.orderdate", "lineitem.suppkey"]

    def test_join_on_orderkey(self):
        t1 = make_t1()
        join = t1.joins[0]
        assert join.qualified_left() == "orders.orderkey"
        assert join.qualified_right() == "lineitem.orderkey"

    def test_expanded_list_contains_cselect_attrs(self):
        expanded = make_t1().expanded_select_list()
        assert "orders.orderdate" in expanded
        assert "lineitem.suppkey" in expanded

    def test_custom_name_and_select_list(self):
        t1 = make_t1(name="mine", select_list=("orders.orderkey", "lineitem.suppkey"))
        assert t1.name == "mine"
        assert t1.select_list == ("orders.orderkey", "lineitem.suppkey")


class TestT2:
    def test_shape(self):
        t2 = make_t2()
        assert t2.relations == ("orders", "lineitem", "customer")
        assert t2.arity == 3
        assert [s.column for s in t2.slots] == [
            "orders.orderdate",
            "lineitem.suppkey",
            "customer.nationkey",
        ]

    def test_two_join_edges(self):
        t2 = make_t2()
        edges = {(j.qualified_left(), j.qualified_right()) for j in t2.joins}
        assert ("orders.orderkey", "lineitem.orderkey") in edges
        assert ("orders.custkey", "customer.custkey") in edges

    def test_select_list_superset_of_t1(self):
        assert set(T1_SELECT_LIST) <= set(T2_SELECT_LIST)


class TestEqt:
    def test_default_shape(self):
        eqt = make_eqt()
        assert eqt.relations == ("r", "s")
        assert [s.column for s in eqt.slots] == ["r.f", "s.g"]

    def test_custom_relations(self):
        eqt = make_eqt(left="items", right="sales", join_left="k", join_right="k2",
                       slot_left="cat", slot_right="disc",
                       select_list=("items.a", "sales.e"))
        assert eqt.relations == ("items", "sales")
        assert eqt.joins[0].qualified_left() == "items.k"
        assert [s.column for s in eqt.slots] == ["items.cat", "sales.disc"]


class TestDiscretization:
    @pytest.mark.parametrize("maker", [make_t1, make_t2, make_eqt])
    def test_all_equality_templates_need_no_grids(self, maker):
        template = maker()
        disc = equality_discretization(template)
        assert isinstance(disc, Discretization)
        for slot in template.slots:
            assert not disc.has_grid(slot.column)
