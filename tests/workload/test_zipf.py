"""Unit tests for the Zipfian distribution."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.zipf import ZipfianDistribution


class TestProbabilities:
    def test_probabilities_sum_to_one(self):
        dist = ZipfianDistribution(1000, 1.07, seed=1)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_rank_order(self):
        dist = ZipfianDistribution(100, 1.07, seed=1)
        probs = dist.probabilities
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_probability_lookup(self):
        dist = ZipfianDistribution(10, 1.0, seed=1)
        assert dist.probability(0) == pytest.approx(float(dist.probabilities[0]))
        with pytest.raises(WorkloadError):
            dist.probability(10)

    def test_higher_alpha_more_skewed(self):
        low = ZipfianDistribution(1000, 1.01, seed=1)
        high = ZipfianDistribution(1000, 1.07, seed=1)
        assert high.probability(0) > low.probability(0)


class TestPaperCharacterization:
    def test_alpha_107_ten_percent_cover_ninety(self):
        """Paper: at α=1.07 over 1M cells, 10% of the bcps get 90% of
        the accesses."""
        dist = ZipfianDistribution(1_000_000, 1.07, seed=1)
        assert dist.coverage_fraction(0.9) == pytest.approx(0.10, abs=0.03)

    def test_alpha_101_twenty_one_percent_cover_ninety(self):
        """Paper: at α=1.01, 21% of the bcps get 90% of the accesses."""
        dist = ZipfianDistribution(1_000_000, 1.01, seed=1)
        assert dist.coverage_fraction(0.9) == pytest.approx(0.21, abs=0.04)

    def test_coverage_bounds(self):
        dist = ZipfianDistribution(100, 1.07, seed=1)
        assert dist.coverage_fraction(1.0) == 1.0
        with pytest.raises(WorkloadError):
            dist.coverage_fraction(0.0)


class TestSampling:
    def test_samples_in_range(self):
        dist = ZipfianDistribution(50, 1.07, seed=3)
        samples = dist.sample(10_000)
        assert samples.min() >= 0
        assert samples.max() < 50

    def test_empirical_frequencies_track_probabilities(self):
        dist = ZipfianDistribution(20, 1.2, seed=3)
        samples = dist.sample(200_000)
        counts = np.bincount(samples, minlength=20) / len(samples)
        assert counts[0] == pytest.approx(dist.probability(0), rel=0.05)
        assert counts[5] == pytest.approx(dist.probability(5), rel=0.15)

    def test_deterministic_for_seed(self):
        a = ZipfianDistribution(100, 1.07, seed=9).sample(1000)
        b = ZipfianDistribution(100, 1.07, seed=9).sample(1000)
        assert (a == b).all()

    def test_sample_one(self):
        value = ZipfianDistribution(10, 1.0, seed=1).sample_one()
        assert isinstance(value, int) and 0 <= value < 10

    def test_negative_size_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfianDistribution(10, 1.0).sample(-1)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfianDistribution(0, 1.0)
        with pytest.raises(WorkloadError):
            ZipfianDistribution(10, 0.0)
