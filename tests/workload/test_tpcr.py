"""Unit tests for the TPC-R-like data generator (Table 1)."""

import pytest

from repro.engine import Database
from repro.errors import WorkloadError
from repro.workload.tpcr import (
    CUSTOMER_TUPLE_BYTES,
    LINEITEM_TUPLE_BYTES,
    ORDERS_TUPLE_BYTES,
    TPCRConfig,
    load_tpcr,
    table1_rows,
)


@pytest.fixture(scope="module")
def loaded():
    db = Database(buffer_pool_pages=256)
    config = TPCRConfig(
        scale_factor=1.0,
        downscale=5000,
        seed=11,
        distinct_order_dates=15,
        suppliers=6,
        nations=4,
    )
    dataset = load_tpcr(db, config)
    return db, config, dataset


class TestRowCounts:
    def test_paper_ratios(self, loaded):
        _, config, dataset = loaded
        assert dataset.row_counts["orders"] == 10 * dataset.row_counts["customer"]
        assert dataset.row_counts["lineitem"] == 4 * dataset.row_counts["orders"]

    def test_scale_factor_scales_counts(self):
        half = TPCRConfig(scale_factor=0.5, downscale=1000)
        full = TPCRConfig(scale_factor=1.0, downscale=1000)
        assert full.customers == 2 * half.customers
        assert full.lineitems == 2 * half.lineitems

    def test_paper_counts_at_downscale_one(self):
        config = TPCRConfig(scale_factor=1.0, downscale=1)
        assert config.customers == 150_000
        assert config.orders == 1_500_000
        assert config.lineitems == 6_000_000


class TestJoinStructure:
    def test_every_order_has_a_customer(self, loaded):
        db, config, _ = loaded
        for order in db.catalog.relation("orders").scan_rows():
            assert 1 <= order["custkey"] <= config.customers

    def test_each_customer_has_ten_orders(self, loaded):
        db, config, _ = loaded
        from collections import Counter

        counts = Counter(
            order["custkey"] for order in db.catalog.relation("orders").scan_rows()
        )
        assert all(count == 10 for count in counts.values())

    def test_each_order_has_four_lineitems(self, loaded):
        db, _, _ = loaded
        from collections import Counter

        counts = Counter(
            li["orderkey"] for li in db.catalog.relation("lineitem").scan_rows()
        )
        assert all(count == 4 for count in counts.values())

    def test_domains_respected(self, loaded):
        db, config, _ = loaded
        dates = set(config.order_dates())
        for order in db.catalog.relation("orders").scan_rows():
            assert order["orderdate"] in dates
        for li in db.catalog.relation("lineitem").scan_rows():
            assert 1 <= li["suppkey"] <= config.suppliers
        for customer in db.catalog.relation("customer").scan_rows():
            assert 0 <= customer["nationkey"] < config.nations


class TestPhysicalDesign:
    def test_selection_and_join_indexes_exist(self, loaded):
        db, _, _ = loaded
        for name in (
            "customer_custkey",
            "customer_nationkey",
            "orders_orderkey",
            "orders_custkey",
            "orders_orderdate",
            "lineitem_orderkey",
            "lineitem_suppkey",
        ):
            assert db.catalog.index(name) is not None

    def test_orderdate_index_supports_ranges(self, loaded):
        db, _, _ = loaded
        assert db.catalog.index("orders_orderdate").supports_range()


class TestSizes:
    def test_tuple_sizes_near_paper_values(self, loaded):
        _, _, dataset = loaded
        per_tuple = {
            "customer": CUSTOMER_TUPLE_BYTES,
            "orders": ORDERS_TUPLE_BYTES,
            "lineitem": LINEITEM_TUPLE_BYTES,
        }
        for name, expected in per_tuple.items():
            actual = dataset.byte_sizes[name] / dataset.row_counts[name]
            assert actual == pytest.approx(expected, rel=0.25)

    def test_table1_reproduces_paper_numbers(self):
        rows = {r["relation"]: r for r in table1_rows(1.0)}
        assert rows["customer"]["tuples"] == 150_000
        assert rows["customer"]["megabytes"] == pytest.approx(23, rel=0.05)
        assert rows["orders"]["megabytes"] == pytest.approx(114, rel=0.05)
        assert rows["lineitem"]["megabytes"] == pytest.approx(755, rel=0.05)

    def test_table1_scales_linearly(self):
        one = {r["relation"]: r for r in table1_rows(1.0)}
        two = {r["relation"]: r for r in table1_rows(2.0)}
        for name in one:
            assert two[name]["tuples"] == 2 * one[name]["tuples"]


class TestDeterminism:
    def test_same_seed_same_data(self):
        def checksum(seed):
            db = Database(buffer_pool_pages=256)
            load_tpcr(db, TPCRConfig(downscale=20_000, seed=seed))
            return [
                tuple(row.values)
                for row in db.catalog.relation("lineitem").scan_rows()
            ]

        assert checksum(5) == checksum(5)
        assert checksum(5) != checksum(6)


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(WorkloadError):
            TPCRConfig(scale_factor=0)
        with pytest.raises(WorkloadError):
            TPCRConfig(downscale=0)
        with pytest.raises(WorkloadError):
            TPCRConfig(suppliers=0)
