"""The partition nemesis drill, integration-sized.

Two runs of the same surgical schedule — an asymmetric
coordinator→primary cut that hides the primary from the coordinator
while clients can still reach everything:

- **lease-gated** (the fix): the deposed primary self-isolates before
  promotion is allowed, so the stale-router zombie probe is *refused*
  and the history checker passes;
- **fence-only legacy** (``lease_ttl=None``, the pre-lease
  configuration): the deposed primary keeps serving through the stale
  router, and the checker *catches* the zombie-read window — the
  regression this drill exists to keep caught.
"""

from __future__ import annotations

import pytest

from repro.bench.nemesis import NemesisConfig, run_nemesis
from repro.faults.partition import PartitionPlan

# Cut only the primary->coordinator direction: the coordinator suspects
# (silence) and eventually promotes; clients meanwhile reach the old
# primary just fine — the exact shape of the zombie-read window.
ZOMBIE_SCHEDULE = "4:cut:coord-primary:up,26:heal:coord-primary:both"


def _config(**overrides) -> NemesisConfig:
    defaults = dict(
        seed=0,
        steps=36,
        clients=2,
        schedule=ZOMBIE_SCHEDULE,
        quiesce=6,
    )
    defaults.update(overrides)
    return NemesisConfig(**defaults)


@pytest.fixture(scope="module")
def lease_run():
    return run_nemesis(_config())


@pytest.fixture(scope="module")
def legacy_run():
    return run_nemesis(_config(lease_ttl=None))


class TestLeaseGatedRun:
    def test_all_invariants_hold(self, lease_run):
        assert lease_run.violations == []
        assert lease_run.ok

    def test_failover_happened_after_lease_refusals(self, lease_run):
        assert lease_run.failovers >= 1
        # Suspicion fires before the lease expires: the coordinator
        # provably waited the old primary out instead of racing it.
        assert lease_run.promotions_refused_lease >= 1

    def test_zombie_probes_refused(self, lease_run):
        assert lease_run.zombie_probe_refusals >= 1
        assert lease_run.zombie_probe_serves == 0

    def test_isolated_node_refused_real_traffic(self, lease_run):
        assert lease_run.isolated_refusals >= 1

    def test_replay_handle_reproduces_schedule(self, lease_run):
        assert lease_run.schedule == PartitionPlan.parse(
            ZOMBIE_SCHEDULE
        ).describe()


class TestLegacyZombieRegression:
    def test_checker_catches_the_zombie_window(self, legacy_run):
        """Without leases the deposed-but-reachable primary keeps
        serving — and the history checker must say so."""
        assert legacy_run.failovers >= 1
        assert legacy_run.zombie_probe_serves >= 1
        assert any("zombie-read" in v for v in legacy_run.violations)
        assert not legacy_run.ok

    def test_acked_writes_still_survive_without_leases(self, legacy_run):
        """Fence-only mode lies about serving, but semi-sync still
        protects durability: no acked-write-loss flavour violations."""
        assert not any(
            "acked-write-loss" in v or "duplicate-application" in v
            for v in legacy_run.violations
        )


class TestSeededSweepDeterminism:
    def test_generated_schedule_is_stable(self):
        first = run_nemesis(NemesisConfig(seed=5, steps=30, clients=1))
        second = run_nemesis(NemesisConfig(seed=5, steps=30, clients=1))
        assert first.schedule == second.schedule
        assert first.epochs == second.epochs
