"""The deterministic interleaving scheduler and the stress driver.

Covers the PR 3 serving-layer claims end to end at tiny scales:

- :class:`repro.faults.InterleavingScheduler` replays the same seed as
  the same decision trace and orders managed threads cooperatively;
- :mod:`repro.bench.stress` proves a concurrent run row-for-row
  equivalent to its single-threaded op-log replay, in both free-running
  and scheduled mode.
"""

import threading

from repro.bench.stress import StressConfig, run_stress, sweep_interleavings
from repro.faults import InterleavingScheduler


def _run_counter_workload(seed: int) -> tuple[list[str], list[str]]:
    """Three managed workers appending at switch points; returns
    (event order, decision trace)."""
    sched = InterleavingScheduler(seed)
    events: list[str] = []

    def work(name: str) -> None:
        for step in range(4):
            sched.switch(f"{name}.{step}")
            events.append(f"{name}.{step}")

    threads = [sched.spawn(f"w{i}", work, f"w{i}") for i in range(3)]
    for thread in threads:
        thread.start()
    sched.launch()
    for thread in threads:
        thread.join(10.0)
    assert not any(thread.is_alive() for thread in threads)
    return events, list(sched.trace)


class TestInterleavingScheduler:
    def test_same_seed_same_trace_and_event_order(self):
        events1, trace1 = _run_counter_workload(7)
        events2, trace2 = _run_counter_workload(7)
        assert trace1 == trace2
        assert events1 == events2
        assert len(events1) == 12  # every step of every worker ran

    def test_different_seeds_diverge(self):
        # Not guaranteed for every pair, but for this workload these
        # two seeds are known to pick different interleavings.
        _, trace_a = _run_counter_workload(0)
        _, trace_b = _run_counter_workload(1)
        assert trace_a != trace_b

    def test_unmanaged_threads_pass_through(self):
        sched = InterleavingScheduler(0)
        # The calling (unregistered) thread must not be perturbed.
        sched.switch("anywhere")
        sched.block("anywhere")
        sched.resume()
        sched.unblock(threading.get_ident())
        assert sched.decisions == 0

    def test_handle_and_stats(self):
        sched = InterleavingScheduler(42)
        assert sched.handle() == "sched/42"
        stats = sched.stats()
        assert stats == {"decisions": 0, "deadlocks_seen": 0, "threads": 0}


class TestStressDriver:
    def test_free_running_smoke(self):
        config = StressConfig(
            seed=3, clients=3, writers=1, queries_per_client=4, ops_per_writer=4
        )
        result = run_stress(config)
        assert result.ok, (result.mismatches, result.thread_errors)
        assert result.queries_checked == 12
        assert result.thread_errors == []
        assert result.handle == "free/3"
        # Nothing may stay locked once every worker has finished.
        assert result.lock_stats["active_objects"] == 0
        assert result.lock_stats["queued"] == 0

    def test_scheduled_run_is_deterministic(self):
        outcomes = sweep_interleavings(
            [1], clients=2, writers=1, queries_per_client=3, ops_per_writer=3
        )
        (outcome,) = outcomes
        assert outcome["ok"], outcome
        assert outcome["deterministic_replay"]
        assert outcome["handle"] == "sched/1"
        assert outcome["decisions"] > 0
