"""Full-stack scenario tests combining subsystems that individual test
files exercise in isolation: manager + 2Q + budget + WAL + trace +
extensions, all at once."""

import pytest

from repro.core import (
    AggregatePMVExecutor,
    AggregateSpec,
    Discretization,
    ExistsAccelerator,
    MaintenanceStrategy,
    MaterializedView,
    PMVManager,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
    RankedPMVExecutor,
)
from repro.engine import Database, EqualityDisjunction, WriteAheadLog, recover
from repro.workload import (
    QueryTraceRecorder,
    TPCRConfig,
    ZipfianQueryStream,
    load_tpcr,
    make_t1,
)
from tests.conftest import eqt_query


class TestBudgetedTwoQManagedFleet:
    def test_budgeted_2q_views_stay_consistent_under_churn(self, eqt_db, eqt):
        """A 2Q view with a tight byte budget, managed maintenance, and
        a shifting workload — every answer must stay exact."""
        manager = PMVManager(eqt_db, maintenance_strategy=MaintenanceStrategy.AUX_INDEX)
        view = manager.create_view(
            eqt,
            tuples_per_entry=2,
            max_entries=500,
            policy="2q",
            aux_index_columns=("r.a", "s.e"),
            upper_bound_bytes=400,
        )
        oracle = MaterializedView(eqt_db, eqt).attach()
        for round_no in range(3):
            for f in range(6):
                query = eqt_query(eqt, [f], [round_no % 5])
                got = sorted(
                    tuple(r.values) for r in manager.execute(query).all_rows()
                )
                assert got == sorted(tuple(r.values) for r in oracle.answer(query))
            eqt_db.delete_where("r", lambda row: row["id"] == 10 + round_no)
            eqt_db.insert("r", (500 + round_no, round_no, round_no, f"new{round_no}"))
        view.check_invariants()
        assert view.current_bytes <= 400 or view.entry_count <= 1


class TestDurableWarehouse:
    def test_trace_survives_crash_and_tunes_recovered_instance(self):
        """Record a morning, crash, recover, and use the trace to size
        the replacement PMV — the full operational loop."""
        wal = WriteAheadLog()
        db = Database(buffer_pool_pages=64, wal=wal)
        config = TPCRConfig(
            scale_factor=1.0, downscale=5000, seed=3,
            distinct_order_dates=12, suppliers=6, nations=3,
        )
        load_tpcr(db, config)
        t1 = make_t1()
        db.register_template(t1)
        view = PartialMaterializedView(t1, Discretization(t1), 2, 64, policy="2q")
        executor = PMVExecutor(db, view)
        PMVMaintainer(db, view).attach()
        recorder = QueryTraceRecorder(t1)
        stream = ZipfianQueryStream(
            t1, [config.order_dates(), list(range(1, 7))], alpha=1.3, seed=8
        )
        run = recorder.wrap(executor.execute)
        results = [run(q) for q in stream.queries(60)]
        reference = sorted(tuple(r.values) for r in results[0].all_rows())

        recovered = recover(wal)
        hot_cells = recorder.trace.hot_cells(top=5)
        sized = max(8, 2 * len(hot_cells))
        fresh_view = PartialMaterializedView(t1, Discretization(t1), 2, sized)
        fresh_executor = PMVExecutor(recovered, fresh_view)
        replayed = recorder.trace.replay(fresh_executor.execute)
        assert sorted(tuple(r.values) for r in replayed[0].all_rows()) == reference
        # The trace-sized PMV serves the recorded hot set.
        fresh_view.metrics.reset()
        for query in recorder.trace.queries[-20:]:
            fresh_executor.execute(query)
        assert fresh_view.metrics.hit_probability > 0.5


class TestExtensionsCompose:
    def test_aggregate_over_ranked_executor_base(self, eqt_db, eqt, eqt_executor):
        """Aggregates, EXISTS, and ranking all share one executor/PMV."""
        agg = AggregatePMVExecutor(eqt_executor)
        ranked = RankedPMVExecutor(eqt_executor)
        exists = ExistsAccelerator(eqt_executor)
        query = eqt_query(eqt, [1, 3], [2, 4])
        ranked.execute(query)
        result = agg.execute(query, ["s.g"], [AggregateSpec("count")])
        assert result.exact_groups
        verdict, _ = exists.check(eqt_query(eqt, [1], [2]))
        assert verdict
        # Sharing paid off: the two executions warmed the PMV enough
        # that the EXISTS check was answered by a probe alone.
        assert exists.stats.pmv_confirmations == 1
        assert eqt_executor.view.metrics.queries == 2

    def test_distinct_preview_and_order_by_together(self, eqt_db, eqt, eqt_executor):
        eqt_db.insert("r", (2000, 1, 1, "a1"))  # force duplicates
        query = eqt_query(eqt, [1], [2])
        eqt_executor.execute(query, distinct=True)
        warm = eqt_executor.execute(query, distinct=True)
        ordered = warm.ordered_rows(["r.a"], partial_first=False)
        keys = [row["r.a"] for row in ordered]
        assert keys == sorted(keys)
        assert len(set(map(tuple, (r.values for r in ordered)))) == len(ordered)
        glimpse = eqt_executor.preview(query)
        assert {tuple(r.values) for r in glimpse.partial_rows} <= {
            tuple(r.values) for r in warm.all_rows()
        }


class TestStatisticsWithPMV:
    def test_analyze_keeps_pmv_answers_identical(self, eqt_db, eqt, eqt_executor):
        """Switching the plan driver via ANALYZE must not change what
        the PMV pipeline returns — only how O3 computes it."""
        query = eqt_query(eqt, [1, 3], [2, 4])
        before = sorted(tuple(r.values) for r in eqt_executor.execute(query).all_rows())
        eqt_db.analyze()
        after = sorted(tuple(r.values) for r in eqt_executor.execute(query).all_rows())
        assert before == after
