"""End-to-end scenarios on the TPC-R-like data: T1/T2 through the full
stack (generator → planner → PMV executor → maintenance)."""

import pytest

from repro.core import (
    Discretization,
    MaintenanceStrategy,
    MaterializedView,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
)
from repro.engine import EqualityDisjunction
from repro.workload import ControlledQueryFactory, ZipfianQueryStream, make_t1, make_t2


@pytest.fixture
def t1_world(tiny_tpcr):
    template = make_t1()
    tiny_tpcr.register_template(template)
    view = PartialMaterializedView(
        template, Discretization(template), tuples_per_entry=3, max_entries=32
    )
    executor = PMVExecutor(tiny_tpcr, view)
    return tiny_tpcr, template, view, executor


@pytest.fixture
def t2_world(tiny_tpcr):
    template = make_t2()
    tiny_tpcr.register_template(template)
    view = PartialMaterializedView(
        template, Discretization(template), tuples_per_entry=3, max_entries=32
    )
    executor = PMVExecutor(tiny_tpcr, view)
    return tiny_tpcr, template, view, executor


def t1_query(template, dates, supps):
    return template.bind(
        [
            EqualityDisjunction("orders.orderdate", dates),
            EqualityDisjunction("lineitem.suppkey", supps),
        ]
    )


def t2_query(template, dates, supps, nations):
    return template.bind(
        [
            EqualityDisjunction("orders.orderdate", dates),
            EqualityDisjunction("lineitem.suppkey", supps),
            EqualityDisjunction("customer.nationkey", nations),
        ]
    )


class TestT1:
    def test_cold_then_warm_matches_oracle(self, t1_world):
        db, template, view, executor = t1_world
        oracle = MaterializedView(db, template)
        dates = sorted({o["orderdate"] for o in db.catalog.relation("orders").scan_rows()})
        query = t1_query(template, dates[:2], [1, 2])
        expected = sorted(tuple(r.values) for r in oracle.answer(query))
        cold = executor.execute(query)
        assert sorted(tuple(r.values) for r in cold.all_rows()) == expected
        warm = executor.execute(query)
        assert sorted(tuple(r.values) for r in warm.all_rows()) == expected
        if expected:
            assert warm.metrics.bcp_hits > 0

    def test_zipfian_stream_drives_hits_up(self, t1_world):
        db, template, view, executor = t1_world
        dates = sorted({o["orderdate"] for o in db.catalog.relation("orders").scan_rows()})
        stream = ZipfianQueryStream(
            template, [dates, list(range(1, 7))], alpha=1.3, seed=17
        )
        for query in stream.queries(40):
            executor.execute(query)
        view.metrics.reset()
        for query in stream.queries(40):
            executor.execute(query)
        assert view.metrics.hit_probability > 0.3
        view.check_invariants()


class TestT2:
    def test_three_way_join_consistency(self, t2_world):
        db, template, view, executor = t2_world
        oracle = MaterializedView(db, template)
        dates = sorted({o["orderdate"] for o in db.catalog.relation("orders").scan_rows()})
        query = t2_query(template, dates[:2], [1, 2, 3], [0, 1])
        expected = sorted(tuple(r.values) for r in oracle.answer(query))
        for _ in range(2):
            result = executor.execute(query)
            assert sorted(tuple(r.values) for r in result.all_rows()) == expected

    def test_maintenance_through_three_relations(self, t2_world):
        db, template, view, executor = t2_world
        PMVMaintainer(db, view, strategy=MaintenanceStrategy.DELTA_JOIN).attach()
        dates = sorted({o["orderdate"] for o in db.catalog.relation("orders").scan_rows()})
        query = t2_query(template, dates[:3], [1, 2], [0, 1, 2])
        executor.execute(query)
        # Delete some customers, which invalidates join results two hops
        # away from lineitem.
        db.delete_where("customer", lambda row: row["nationkey"] == 0)
        oracle = MaterializedView(db, template)
        result = executor.execute(query)
        assert sorted(tuple(r.values) for r in result.all_rows()) == sorted(
            tuple(r.values) for r in oracle.answer(query)
        )
        view.check_invariants()


class TestControlledProtocol:
    def test_hot_cell_hits_after_warming(self, t1_world):
        db, template, view, executor = t1_world
        config = None
        dates = sorted({o["orderdate"] for o in db.catalog.relation("orders").scan_rows()})
        factory = ControlledQueryFactory(template, [dates, list(range(1, 7))], seed=3)
        hot = factory.hot_cell()
        executor.execute(factory.query(1, hot))
        for h in (2, 4, 6):
            result = executor.execute(factory.query(h, hot))
            assert result.metrics.bcp_hits >= 1

    def test_partial_latency_below_execution(self, t1_world):
        """The headline claim: partial results arrive much sooner than
        the full (blocking) execution finishes."""
        db, template, view, executor = t1_world
        dates = sorted({o["orderdate"] for o in db.catalog.relation("orders").scan_rows()})
        factory = ControlledQueryFactory(template, [dates, list(range(1, 7))], seed=3)
        hot = factory.hot_cell()
        executor.execute(factory.query(1, hot))
        result = executor.execute(factory.query(4, hot))
        metrics = result.metrics
        assert metrics.partial_latency_seconds < metrics.execution_seconds * 5
        # (On real data sizes the gap is orders of magnitude; the tiny
        # test fixture only supports a sanity bound.)


class TestMultiplePMVs:
    def test_t1_and_t2_pmvs_coexist(self, tiny_tpcr):
        """'Many PMVs can reside in the RDBMS simultaneously.'"""
        db = tiny_tpcr
        t1, t2 = make_t1(), make_t2()
        v1 = PartialMaterializedView(t1, Discretization(t1), 2, 16)
        v2 = PartialMaterializedView(t2, Discretization(t2), 2, 16)
        e1, e2 = PMVExecutor(db, v1), PMVExecutor(db, v2)
        PMVMaintainer(db, v1).attach()
        PMVMaintainer(db, v2).attach()
        dates = sorted({o["orderdate"] for o in db.catalog.relation("orders").scan_rows()})
        q1 = t1_query(t1, dates[:2], [1, 2])
        q2 = t2_query(t2, dates[:2], [1, 2], [0, 1])
        for _ in range(2):
            r1, r2 = e1.execute(q1), e2.execute(q2)
        db.delete_where("orders", lambda row: row["orderdate"] == dates[0])
        oracle1 = MaterializedView(db, t1)
        oracle2 = MaterializedView(db, t2)
        assert sorted(tuple(r.values) for r in e1.execute(q1).all_rows()) == sorted(
            tuple(r.values) for r in oracle1.answer(q1)
        )
        assert sorted(tuple(r.values) for r in e2.execute(q2).all_rows()) == sorted(
            tuple(r.values) for r in oracle2.answer(q2)
        )
        v1.check_invariants()
        v2.check_invariants()
