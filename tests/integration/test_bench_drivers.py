"""Smoke/shape tests for the benchmark drivers (tiny scales)."""

import pytest

from repro.bench.figures import (
    build_experiment_database,
    measure_overhead,
    run_fig6,
    run_fig7,
    run_fig11,
    run_fig12,
    run_table1,
)
from repro.bench.reporting import Series, format_series, format_table


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_series_requires_shared_x(self):
        s1 = Series("one", [1, 2], [0.1, 0.2])
        s2 = Series("two", [1, 3], [0.3, 0.4])
        with pytest.raises(ValueError):
            format_series("x", [s1, s2])

    def test_format_series_output(self):
        s1 = Series("one", [1, 2], [0.1, 0.2])
        text = format_series("x", [s1])
        assert "one" in text and "0.1" in text


class TestTable1:
    def test_rows_cover_all_scales(self):
        rows = run_table1(scale_factors=(0.5, 1.0), verbose=False)
        assert len(rows) == 6
        scales = {r["scale"] for r in rows}
        assert scales == {0.5, 1.0}


class TestSimulationFigures:
    def test_fig6_shape(self):
        series = run_fig6(scale=0.002, hs=(1, 3), verbose=False)
        assert len(series) == 4  # 2 policies x 2 alphas
        for line in series:
            assert line.x == [1, 3]
            assert line.y[0] <= line.y[1] + 0.05  # rises with h

    def test_fig7_shape(self):
        series = run_fig7(scale=0.002, verbose=False)
        assert len(series) == 2
        for line in series:
            assert len(line.x) == 3
            # hit probability rises with N
            assert line.y[0] <= line.y[-1] + 0.05


class TestEngineMeasurement:
    @pytest.fixture(scope="class")
    def env(self):
        return build_experiment_database(
            scale_factor=1.0,
            downscale=5000,
            distinct_order_dates=20,
            suppliers=8,
            nations=3,
        )

    def test_measure_overhead_t1(self, env):
        m = measure_overhead(env, "T1", h=2, tuples_per_entry=2, runs=3)
        assert m.mean_overhead_seconds > 0
        assert m.hit_fraction == 1.0  # the hot cell is always resident
        assert m.mean_partial_tuples > 0

    def test_measure_overhead_t2(self, env):
        m = measure_overhead(env, "T2", h=2, tuples_per_entry=2, runs=3)
        assert m.mean_overhead_seconds > 0
        assert m.template == "T2"

    def test_overhead_far_below_simulated_execution(self, env):
        m = measure_overhead(env, "T1", h=2, tuples_per_entry=2, runs=3)
        assert m.mean_overhead_seconds < m.mean_simulated_execution_seconds


class TestOverloadDriver:
    """The QoS overload driver, at a bounded smoke scale."""

    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.bench.overload import OverloadConfig, run_overload

        config = OverloadConfig(
            clients=6,
            queries_per_client=8,
            ops_per_writer=5,
            max_concurrency=2,
            max_queue_depth=3,
            cooldown_queries=40,
        )
        return run_overload(config, verbose=False)

    def test_run_passes_slo_story(self, outcome):
        assert outcome.ok, (outcome.failures, outcome.thread_errors)

    def test_no_silently_incomplete_answers(self, outcome):
        assert outcome.silently_incomplete == 0
        assert outcome.subset_violations == 0
        assert outcome.queries_checked > 0

    def test_partial_answers_are_explicit(self, outcome):
        # The deterministic zero-budget probes guarantee at least these.
        assert outcome.partial_answers >= 3

    def test_recovers_to_normal(self, outcome):
        assert outcome.final_state == "NORMAL"

    def test_cli_report(self, tmp_path, capsys):
        import json

        from repro.bench.overload import main

        path = tmp_path / "overload.json"
        code = main(
            [
                "--clients", "5",
                "--queries", "6",
                "--max-concurrency", "2",
                "--report", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[overload] OK" in out
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert data["silently_incomplete"] == 0
        assert data["final_state"] == "NORMAL"
        assert data["partial_answers"] >= 3


class TestAnalyticalFigures:
    def test_fig11_shapes(self):
        mv, pmv = run_fig11(verbose=False)
        assert mv.y[0] > pmv.y[0] * 100  # >= 2 orders of magnitude at p=0
        assert pmv.y[-1] == 0.0  # p=1 -> zero PMV maintenance
        assert all(a >= b for a, b in zip(mv.y, mv.y[1:]))
        assert all(a >= b for a, b in zip(pmv.y, pmv.y[1:]))

    def test_fig12_speedup_increases(self):
        line = run_fig12(verbose=False)
        finite = [y for y in line.y if y != float("inf")]
        assert all(a < b for a, b in zip(finite, finite[1:]))
        assert line.y[-1] == float("inf")


class TestFailoverDriver:
    """The replication failover drill, at a bounded smoke scale."""

    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.bench.failover import FailoverConfig, crash_sites_for, run_drill

        seed = 0
        config = FailoverConfig(seed=seed, ops=80)
        specs = crash_sites_for(seed, config)
        results = [run_drill(seed, spec, config) for spec in specs]
        return specs, results

    def test_reaches_at_least_three_distinct_crash_sites(self, outcome):
        specs, _ = outcome
        assert len({spec.site for spec in specs}) >= 3

    def test_every_drill_passes(self, outcome):
        _, results = outcome
        assert results
        for result in results:
            assert result.ok, (result.replay, result.error)
            assert result.status == "failed-over"
            assert result.promoted is not None

    def test_zero_acked_write_loss_is_checked_on_real_traffic(self, outcome):
        _, results = outcome
        # Every drill had acknowledged writes to verify against.
        assert all(result.acked_records > 0 for result in results)

    def test_warm_standby_hit_rate_survives_promotion(self, outcome):
        _, results = outcome
        for result in results:
            assert result.post_hit_rate >= 0.5 * result.pre_hit_rate

    def test_lagged_replica_answers_were_served_and_verified(self, outcome):
        _, results = outcome
        assert sum(result.replica_answers for result in results) > 0
        assert sum(result.lagged_answers for result in results) > 0

    def test_fault_free_run_completes_and_converges(self):
        from repro.bench.failover import FailoverConfig, run_drill

        result = run_drill(3, None, FailoverConfig(seed=3, ops=80))
        assert result.ok, result.error
        assert result.status == "completed"

    def test_cli_report(self, tmp_path, capsys):
        import json

        from repro.bench.failover import main

        path = tmp_path / "failover.json"
        code = main(["--seeds", "1", "--ops", "60", "--report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ALL DRILLS PASSED" in out
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert data["points_run"] >= 3
        assert data["divergences"] == []

    def test_cli_replay_one_point(self, capsys):
        import json

        from repro.bench.failover import main

        code = main(["--replay", "0/wal.append:30:torn", "--ops", "60"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["ok"] is True
