"""Scripted interleavings of the Section 3.6 locking protocol.

The paper's argument: a query S-locks the PMV across O2→O3, so no
concurrent transaction can change what the query already read from the
PMV — "Q would not have read anomaly."  These tests script the
interleavings directly (the engine is single-process, so interleaving
points are explicit calls):

1. maintenance attempted *while a query holds its S lock* is denied;
2. with the protocol disabled (an unsafe maintainer that skips the X
   lock), the exact anomaly the paper warns about appears: the PMV
   serves a tuple in O2 that full execution no longer derives, and the
   DS invariant catches it;
3. a caller-scoped transaction serializes a full read-then-read
   sequence against writers.
"""

import pytest

from repro.core import PMVMaintainer
from repro.core.maintenance import MaintenanceStrategy
from repro.errors import LockError, PMVError
from tests.conftest import eqt_query


class _UnsafeMaintainer(PMVMaintainer):
    """A maintainer that violates the protocol: no X lock, neither in
    the prepare phase nor before touching the PMV."""

    def prepare_change(self, change, txn):
        pass

    def abort_change(self, change, txn):
        pass

    def _remove_derived(self, relation, old_row, txn):
        if self.strategy is MaintenanceStrategy.AUX_INDEX:
            self._remove_via_aux_index(relation, old_row)
        else:
            self._remove_via_delta_join(relation, old_row)


class _SkippingMaintainer(PMVMaintainer):
    """Worse: a 'maintainer' that silently does nothing on deletes,
    leaving stale tuples in the PMV."""

    def prepare_change(self, change, txn):
        pass

    def abort_change(self, change, txn):
        pass

    def _remove_derived(self, relation, old_row, txn):
        pass


class TestProtocolEnforced:
    def test_maintenance_denied_while_query_holds_s_lock(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        PMVMaintainer(eqt_db, eqt_pmv).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        reader = eqt_db.begin(read_only=True)
        # The query is "between O2 and O3": it holds the S lock.
        reader.lock_shared(eqt_pmv.name)
        with pytest.raises(LockError):
            eqt_db.delete_where("r", lambda row: row["f"] == 1)
        reader.commit()
        # After the reader finishes, maintenance proceeds.
        eqt_db.delete_where("r", lambda row: row["f"] == 1)
        assert eqt_pmv.tuple_count((1, 2)) == 0

    def test_writer_blocks_new_queries_until_done(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        writer = eqt_db.begin()
        writer.lock_exclusive(eqt_pmv.name)
        with pytest.raises(LockError):
            eqt_executor.execute(eqt_query(eqt, [1], [2]))
        writer.commit()
        result = eqt_executor.execute(eqt_query(eqt, [1], [2]))
        assert result.metrics.remaining_tuples > 0

    def test_two_readers_coexist(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        txn_a = eqt_db.begin(read_only=True)
        txn_b = eqt_db.begin(read_only=True)
        ra = eqt_executor.execute(eqt_query(eqt, [1], [2]), txn=txn_a)
        rb = eqt_executor.execute(eqt_query(eqt, [1], [2]), txn=txn_b)
        assert sorted(tuple(r.values) for r in ra.all_rows()) == sorted(
            tuple(r.values) for r in rb.all_rows()
        )
        txn_a.commit()
        txn_b.commit()


class TestAnomalyWithoutProtocol:
    def test_stale_partial_detected_when_maintenance_skipped(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """With a broken maintainer that never removes stale tuples,
        the PMV serves O2 results that O3 cannot re-derive — exactly
        the inconsistency the protocol + maintenance rule out — and the
        DS emptiness check raises."""
        _SkippingMaintainer(eqt_db, eqt_pmv).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))  # cache (1,2)
        eqt_db.delete_where("r", lambda row: row["f"] == 1)  # silently unmaintained
        with pytest.raises(PMVError, match="DS not empty"):
            eqt_executor.execute(eqt_query(eqt, [1], [2]))

    def test_unsafe_maintainer_mutates_under_readers(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """An X-lock-skipping maintainer changes the PMV even while a
        reader transaction holds the S lock — demonstrating what the
        protocol exists to prevent (the engine is single-threaded, so
        this shows the *permission*, not a torn read)."""
        _UnsafeMaintainer(eqt_db, eqt_pmv).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        assert eqt_pmv.tuple_count((1, 2)) == 2
        reader = eqt_db.begin(read_only=True)
        reader.lock_shared(eqt_pmv.name)
        # No LockError: the unsafe maintainer ignores the protocol and
        # shrinks the PMV out from under the reader.
        eqt_db.delete_where("s", lambda row: row["g"] == 2)
        assert eqt_pmv.tuple_count((1, 2)) == 0
        reader.commit()


class TestSerializableSequences:
    def test_repeatable_pmv_reads_within_transaction(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """Two O2 probes inside one transaction see the same PMV state
        because the S lock is held for the transaction's duration and
        writers are denied in between."""
        PMVMaintainer(eqt_db, eqt_pmv).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        txn = eqt_db.begin(read_only=True)
        first = eqt_executor.preview(eqt_query(eqt, [1], [2]), txn=txn)
        with pytest.raises(LockError):
            eqt_db.delete_where("s", lambda row: row["g"] == 2)
        second = eqt_executor.preview(eqt_query(eqt, [1], [2]), txn=txn)
        assert [tuple(r.values) for r in first.partial_rows] == [
            tuple(r.values) for r in second.partial_rows
        ]
        txn.commit()
