"""Scripted interleavings of the Section 3.6 locking protocol.

The paper's argument: a query S-locks the PMV across O2→O3, so no
concurrent transaction can change what the query already read from the
PMV — "Q would not have read anomaly."  These tests script the
interleavings directly (the engine is single-process, so interleaving
points are explicit calls):

1. maintenance attempted *while a query holds its S lock* is denied;
2. with the protocol disabled (an unsafe maintainer that skips the X
   lock), the exact anomaly the paper warns about appears: the PMV
   serves a tuple in O2 that full execution no longer derives, and the
   DS invariant catches it;
3. a caller-scoped transaction serializes a full read-then-read
   sequence against writers.
"""

import pytest

from repro.core import PMVExecutor, PMVMaintainer
from repro.core.maintenance import MaintenanceStrategy
from repro.errors import LockError, PMVError
from tests.conftest import eqt_query


class _UnsafeMaintainer(PMVMaintainer):
    """A maintainer that violates the protocol: no X lock, neither in
    the prepare phase nor before touching the PMV."""

    def prepare_change(self, change, txn):
        pass

    def abort_change(self, change, txn):
        pass

    def _remove_derived(self, relation, old_row, txn):
        if self.strategy is MaintenanceStrategy.AUX_INDEX:
            self._remove_via_aux_index(relation, old_row)
        else:
            self._remove_via_delta_join(relation, old_row)


class _SkippingMaintainer(PMVMaintainer):
    """Worse: a 'maintainer' that silently does nothing on deletes,
    leaving stale tuples in the PMV."""

    def prepare_change(self, change, txn):
        pass

    def abort_change(self, change, txn):
        pass

    def _remove_derived(self, relation, old_row, txn):
        pass


class TestProtocolEnforced:
    def test_maintenance_denied_while_query_holds_s_lock(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        # Fast-fail knobs: the reader never releases, so waiting is
        # pointless and the statement must abort with a LockError.
        PMVMaintainer(
            eqt_db, eqt_pmv, x_lock_timeout=0.01, x_lock_retries=1,
            x_lock_backoff=0.001,
        ).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        reader = eqt_db.begin(read_only=True)
        # The query is "between O2 and O3": it holds the S lock.
        reader.lock_shared(eqt_pmv.name)
        with pytest.raises(LockError):
            eqt_db.delete_where("r", lambda row: row["f"] == 1)
        reader.commit()
        # After the reader finishes, maintenance proceeds.
        eqt_db.delete_where("r", lambda row: row["f"] == 1)
        assert eqt_pmv.tuple_count((1, 2)) == 0

    def test_writer_degrades_new_queries_to_bypass(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        # The O2 lock-denial bugfix: a held X lock no longer raises
        # LockError out of execute(); the query bypasses the PMV and
        # still returns the complete answer.
        eqt_executor.lock_timeout = 0.01
        writer = eqt_db.begin()
        writer.lock_exclusive(eqt_pmv.name)
        degraded = eqt_executor.execute(eqt_query(eqt, [1], [2]))
        assert degraded.metrics.bypassed_lock
        assert degraded.metrics.remaining_tuples > 0
        writer.commit()
        result = eqt_executor.execute(eqt_query(eqt, [1], [2]))
        assert not result.metrics.bypassed_lock
        assert sorted(tuple(r.values) for r in result.all_rows()) == sorted(
            tuple(r.values) for r in degraded.all_rows()
        )

    def test_two_readers_coexist(self, eqt_db, eqt, eqt_pmv, eqt_executor):
        txn_a = eqt_db.begin(read_only=True)
        txn_b = eqt_db.begin(read_only=True)
        ra = eqt_executor.execute(eqt_query(eqt, [1], [2]), txn=txn_a)
        rb = eqt_executor.execute(eqt_query(eqt, [1], [2]), txn=txn_b)
        assert sorted(tuple(r.values) for r in ra.all_rows()) == sorted(
            tuple(r.values) for r in rb.all_rows()
        )
        txn_a.commit()
        txn_b.commit()


class TestAnomalyWithoutProtocol:
    def test_stale_partial_detected_when_maintenance_skipped(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """With a broken maintainer that never removes stale tuples,
        the PMV serves O2 results that O3 cannot re-derive — exactly
        the inconsistency the protocol + maintenance rule out — and the
        DS emptiness check raises."""
        _SkippingMaintainer(eqt_db, eqt_pmv).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))  # cache (1,2)
        eqt_db.delete_where("r", lambda row: row["f"] == 1)  # silently unmaintained
        with pytest.raises(PMVError, match="DS not empty"):
            eqt_executor.execute(eqt_query(eqt, [1], [2]))

    def test_unsafe_maintainer_mutates_under_readers(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """An X-lock-skipping maintainer changes the PMV even while a
        reader transaction holds the S lock — demonstrating what the
        protocol exists to prevent (the engine is single-threaded, so
        this shows the *permission*, not a torn read)."""
        _UnsafeMaintainer(eqt_db, eqt_pmv).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        assert eqt_pmv.tuple_count((1, 2)) == 2
        reader = eqt_db.begin(read_only=True)
        reader.lock_shared(eqt_pmv.name)
        # No LockError: the unsafe maintainer ignores the protocol and
        # shrinks the PMV out from under the reader.
        eqt_db.delete_where("s", lambda row: row["g"] == 2)
        assert eqt_pmv.tuple_count((1, 2)) == 0
        reader.commit()


class TestSerializableSequences:
    def test_repeatable_pmv_reads_within_transaction(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """Two O2 probes inside one transaction see the same PMV state
        because the S lock is held for the transaction's duration and
        writers are denied in between."""
        PMVMaintainer(
            eqt_db, eqt_pmv, x_lock_timeout=0.01, x_lock_retries=1,
            x_lock_backoff=0.001,
        ).attach()
        eqt_executor.execute(eqt_query(eqt, [1], [2]))
        txn = eqt_db.begin(read_only=True)
        first = eqt_executor.preview(eqt_query(eqt, [1], [2]), txn=txn)
        with pytest.raises(LockError):
            eqt_db.delete_where("s", lambda row: row["g"] == 2)
        second = eqt_executor.preview(eqt_query(eqt, [1], [2]), txn=txn)
        assert [tuple(r.values) for r in first.partial_rows] == [
            tuple(r.values) for r in second.partial_rows
        ]
        txn.commit()


# ---------------------------------------------------------------------------
# Real-thread interleavings (PR 3: the waiting lock manager)
# ---------------------------------------------------------------------------

import random
import threading
import time

from repro.engine.locks import LockMode
from repro.errors import DeadlockError
from repro.faults.check import check_view_against_database


class TestThreadedProtocol:
    def test_dml_waits_for_reader_commit_then_succeeds(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """A maintenance X request against a live S holder PARKS (it no
        longer fails fast) and completes once the reader commits."""
        PMVMaintainer(eqt_db, eqt_pmv, x_lock_timeout=10.0).attach()
        reader = eqt_db.begin(read_only=True)
        eqt_executor.execute(eqt_query(eqt, {1}, {2}), txn=reader)  # holds S
        errors = []
        done = threading.Event()

        def writer():
            try:
                eqt_db.delete_where("r", lambda row: row["id"] == 13)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while eqt_db.lock_manager.stats()["queued"] == 0:
            assert time.monotonic() < deadline, "writer never queued"
            time.sleep(0.001)
        assert not done.is_set()  # parked behind the S lock, not failed
        reader.commit()
        assert done.wait(10.0) and not errors
        thread.join(5.0)
        check_view_against_database(eqt_db, eqt_pmv)

    def test_dual_upgrade_deadlock_resolved_by_timeout(self, eqt_db, eqt_pmv):
        """Two S holders that both upgrade wait on each other — a true
        deadlock; the timeout policy must break it, not hang."""
        lm = eqt_db.lock_manager
        lm.acquire(1, eqt_pmv.name, LockMode.SHARED)
        lm.acquire(2, eqt_pmv.name, LockMode.SHARED)
        outcomes = {}

        def upgrade(txn_id):
            try:
                lm.acquire(
                    txn_id, eqt_pmv.name, LockMode.EXCLUSIVE, wait=True, timeout=0.3
                )
                outcomes[txn_id] = "granted"
            except DeadlockError:
                lm.release_all(txn_id)  # abort: break the cycle
                outcomes[txn_id] = "aborted"

        threads = [
            threading.Thread(target=upgrade, args=(t,), daemon=True) for t in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert not any(thread.is_alive() for thread in threads), "deadlock hung"
        # At least one side must have been aborted by timeout; aborting
        # it may let the survivor's upgrade through (sole-holder rule).
        assert "aborted" in outcomes.values()

    def test_o2_bypass_under_writer_thread_lockout(self, eqt_db, eqt, eqt_pmv):
        """Reader threads racing a long X hold degrade to bypass —
        complete answers, zero LockErrors."""
        executor = PMVExecutor(eqt_db, eqt_pmv, lock_timeout=0.02)
        writer = eqt_db.begin()
        writer.lock_exclusive(eqt_pmv.name)
        results, errors = [], []

        def reader(index):
            try:
                result = executor.execute(eqt_query(eqt, {index % 6}, {2}))
                results.append(result)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        writer.commit()
        assert not errors
        assert len(results) == 4
        assert all(r.metrics.bypassed_lock for r in results)
        for i, result in enumerate(results):
            assert sorted(tuple(r.values) for r in result.all_rows())

    def test_reader_and_writer_threads_stay_consistent(
        self, eqt_db, eqt, eqt_pmv, eqt_executor
    ):
        """A miniature free-running soak on the shared fixtures: PMV
        reads racing relevant DML must neither error nor go stale."""
        PMVMaintainer(eqt_db, eqt_pmv).attach()
        errors = []

        def reader(index):
            rng = random.Random(index)
            try:
                for _ in range(8):
                    eqt_executor.execute(
                        eqt_query(eqt, {rng.randrange(6)}, {rng.randrange(5)})
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(("reader", exc))

        def writer():
            try:
                for k in range(6):
                    row_id = eqt_db.insert("r", (1000 + k, k % 12, k % 6, f"w{k}"))
                    eqt_db.update("r", row_id, a=f"w{k}x")
                    eqt_db.delete("r", row_id)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(("writer", exc))

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True) for i in range(4)
        ] + [threading.Thread(target=writer, daemon=True)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors
        eqt_pmv.check_invariants()
        check_view_against_database(eqt_db, eqt_pmv)
        assert eqt_db.lock_manager.stats()["active_objects"] == 0
