"""Tests for the ``python -m repro.bench`` command-line runner."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_single_experiment(self, capsys, monkeypatch):
        monkeypatch.delenv("PMV_BENCH_SCALE", raising=False)
        code = main(["fig11"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig11" in out
        assert "MV TW (I/Os)" in out

    def test_multiple_experiments(self, capsys):
        code = main(["fig11", "fig12"])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup ratio" in out
        assert out.index("fig11") < out.index("fig12")

    def test_scale_override(self, capsys, monkeypatch):
        monkeypatch.delenv("PMV_BENCH_SCALE", raising=False)
        code = main(["fig7", "--scale", "0.002"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0.20%" in out

    def test_downscale_and_runs_override(self, capsys, monkeypatch):
        monkeypatch.delenv("PMV_BENCH_DOWNSCALE", raising=False)
        monkeypatch.delenv("PMV_BENCH_RUNS", raising=False)
        code = main(["table1", "--downscale", "4000", "--runs", "3"])
        assert code == 0
        assert "customer" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_all_covers_every_experiment(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "overload", "failover", "cdc", "netload", "nemesis", "endurance",
        }


class TestJSONExport:
    def test_json_dump(self, tmp_path, capsys):
        import json

        path = tmp_path / "results.json"
        code = main(["fig11", "fig12", "--json", str(path)])
        assert code == 0
        data = json.loads(path.read_text())
        assert set(data) == {"fig11", "fig12"}
        mv, pmv = data["fig11"]
        assert mv["label"].startswith("MV")
        assert len(mv["x"]) == len(mv["y"])
        assert data["fig12"]["label"] == "speedup ratio"
        assert data["fig12"]["y"][-1] == "inf" or data["fig12"]["y"][-1] == float("inf")
