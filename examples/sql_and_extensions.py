"""The SQL surface and the Section 3.6 extensions, end to end.

Shows four features on top of the core PMV loop:

1. defining templates and queries in the paper's own SQL syntax
   (``parse_template`` / ``parse_query``);
2. GROUP-BY aggregate queries with provisional partial aggregates;
3. EXISTS-subquery acceleration through a PMV;
4. popularity-ranked answers (the conclusion's extension).

Run:  python examples/sql_and_extensions.py
"""

from repro import Database, Discretization, PartialMaterializedView, PMVExecutor
from repro.core import (
    AggregatePMVExecutor,
    AggregateSpec,
    ExistsAccelerator,
    ExistsVerdictSource,
    RankedPMVExecutor,
)
from repro.engine import Column, FLOAT, INTEGER, TEXT, parse_query, parse_template


def main() -> None:
    db = Database()
    db.create_relation(
        "products",
        [Column("pid", INTEGER), Column("category", INTEGER), Column("name", TEXT)],
    )
    db.create_relation(
        "orders",
        [Column("pid", INTEGER), Column("region", INTEGER), Column("amount", FLOAT)],
    )
    db.create_index("products_category", "products", ["category"])
    db.create_index("products_pid", "products", ["pid"])
    db.create_index("orders_pid", "orders", ["pid"])
    db.create_index("orders_region", "orders", ["region"])
    for pid in range(300):
        db.insert("products", (pid, pid % 12, f"product-{pid}"))
    for i in range(1500):
        # i // 300 shifts the region each cycle so every product sells
        # in several regions.
        db.insert("orders", (i % 300, (i + i // 300) % 6, float(10 + i % 90)))

    # 1. SQL-defined template: which products of a category sold in a
    #    region (the qt form, with ? marking the parameter slots).
    template = parse_template(
        "sales",
        "select products.name, orders.amount from products, orders "
        "where products.pid = orders.pid "
        "and products.category = ? and orders.region = ?",
    )
    db.register_template(template)
    pmv = PartialMaterializedView(
        template, Discretization(template), tuples_per_entry=4, max_entries=500
    )
    executor = PMVExecutor(db, pmv)

    query = parse_query(
        template,
        "select products.name, orders.amount from products, orders "
        "where products.pid = orders.pid "
        "and (products.category = 2 or products.category = 5) "
        "and (orders.region = 1 or orders.region = 3)",
    )
    executor.execute(query)  # warm
    print(f"SQL query -> {len(executor.execute(query).partial_rows)} immediate tuples")

    # 2. Aggregates: revenue per region, with provisional numbers from
    #    the PMV shown before the exact ones.
    agg = AggregatePMVExecutor(executor)
    result = agg.execute(
        query,
        group_by=["orders.region"],
        aggregates=[AggregateSpec("count"), AggregateSpec("sum", "orders.amount", "revenue")],
    )
    print("\nprovisional group aggregates (from cached tuples):")
    for key, values in sorted(result.partial_groups.items()):
        print(f"  region {key[0]}: >= {values['count(*)']} sales, revenue >= {values['revenue']:.0f}")
    print("exact group aggregates (after full execution):")
    for key, values in sorted(result.exact_groups.items()):
        print(f"  region {key[0]}: {values['count(*)']} sales, revenue {values['revenue']:.0f}")
    print(f"partial coverage of final groups: {result.partial_coverage():.0%}")

    # 3. EXISTS acceleration: "which categories have any sale in region 1?"
    #    — the correlated subquery is answered by PMV probes once warm.
    accelerator = ExistsAccelerator(executor)
    confirmed = []
    for category in list(range(12)) * 2:  # second pass hits the PMV
        sub = parse_query(
            template,
            "select products.name, orders.amount from products, orders "
            "where products.pid = orders.pid "
            f"and products.category = {category} and orders.region = 1",
        )
        exists, source = accelerator.check(sub)
        if exists and source is ExistsVerdictSource.PMV_PROBE:
            confirmed.append(category)
    stats = accelerator.stats
    print(
        f"\nEXISTS checks: {stats.checks} total, "
        f"{stats.pmv_confirmations} answered by PMV probe alone "
        f"({stats.short_circuit_fraction:.0%} short-circuited)"
    )

    # 4. Popularity ranking: hot tuples first.
    ranked = RankedPMVExecutor(executor)
    for _ in range(5):
        ranked.execute(query)  # builds popularity history
    top = ranked.tracker.top(3)
    print("\nmost popular result tuples so far:")
    for row, count in top:
        print(f"  {row['products.name']:>12} (amount {row['orders.amount']}): delivered {count}x")


if __name__ == "__main__":
    main()
