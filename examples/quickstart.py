"""Quickstart: a partial materialized view in ~60 lines.

Builds the paper's Figure 1 schema (two relations r and s joined on
r.c = s.d), defines the query template Eqt, attaches a PMV, and shows
the core behaviour: the first query fills the PMV, the second gets
*immediate partial results* from it, and a base-relation delete is
handled by deferred maintenance without ever serving stale tuples.

Run:  python examples/quickstart.py
"""

from repro import (
    Column,
    Database,
    Discretization,
    EqualityDisjunction,
    JoinEquality,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
)
from repro.engine import INTEGER, TEXT


def main() -> None:
    # 1. Create the base relations with indexes on every
    #    selection/join attribute (the paper's physical design).
    db = Database()
    db.create_relation(
        "r",
        [Column("id", INTEGER), Column("c", INTEGER), Column("f", INTEGER), Column("a", TEXT)],
    )
    db.create_relation(
        "s", [Column("d", INTEGER), Column("g", INTEGER), Column("e", TEXT)]
    )
    for name, rel, col in [("r_f", "r", "f"), ("r_c", "r", "c"), ("s_d", "s", "d"), ("s_g", "s", "g")]:
        db.create_index(name, rel, [col])
    for i in range(500):
        db.insert("r", (i, i % 25, i % 10, f"item-{i}"))
    for j in range(250):
        db.insert("s", (j % 25, j % 8, f"detail-{j}"))

    # 2. Define the template Eqt (Figure 1) and its PMV.
    eqt = QueryTemplate(
        name="Eqt",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )
    db.register_template(eqt)
    pmv = PartialMaterializedView(
        eqt,
        Discretization(eqt),          # all slots are equality-form
        tuples_per_entry=3,           # the paper's F
        max_entries=1000,             # the paper's L
        policy="clock",
        aux_index_columns=("r.a",),   # enables join-free maintenance
    )
    executor = PMVExecutor(db, pmv)
    PMVMaintainer(db, pmv).attach()   # deferred maintenance, Section 3.4

    query = eqt.bind(
        [EqualityDisjunction("r.f", [1, 3]), EqualityDisjunction("s.g", [2, 4])]
    )

    # 3. Cold query: everything comes from full execution; the PMV
    #    fills itself "for free" from the result stream.
    cold = executor.execute(query)
    print(f"cold : {len(cold.partial_rows):2d} partial + {len(cold.remaining_rows):3d} remaining tuples")

    # 4. Warm query: the hot cells now answer immediately.
    warm = executor.execute(query)
    print(
        f"warm : {len(warm.partial_rows):2d} partial + {len(warm.remaining_rows):3d} remaining tuples "
        f"(partial results in {warm.metrics.partial_latency_seconds * 1e6:.0f} µs, "
        f"full execution {warm.metrics.execution_seconds * 1e6:.0f} µs)"
    )
    assert warm.had_partial_results

    # 5. Delete base rows: inserts are free, deletes purge exactly the
    #    affected cached tuples — the next query is still correct.
    db.delete_where("r", lambda row: row["f"] == 1 and row["id"] < 100)
    after = executor.execute(query)
    print(f"after delete: {len(after.all_rows()):3d} tuples, still consistent")
    pmv.check_invariants()

    print(
        f"\nPMV state: {pmv.entry_count} bcp entries, "
        f"{pmv.stored_tuple_count} cached tuples, ~{pmv.current_bytes} bytes, "
        f"hit probability {pmv.metrics.hit_probability:.0%} over {pmv.metrics.queries} queries"
    )


if __name__ == "__main__":
    main()
