"""Exploring a data warehouse with PMVs (the Section 4.2 setting).

Loads the TPC-R-like dataset, attaches PMVs to both templates T1
(orders ⋈ lineitem) and T2 (orders ⋈ lineitem ⋈ customer), and drives a
skewed Zipfian analyst workload against them while a trickle of
updates hits the base relations.  Prints the quantities the paper's
evaluation cares about: hit probability, partial-result latency vs.
execution time, and maintenance effort.

Run:  python examples/warehouse_exploration.py
"""

import numpy as np

from repro import (
    Discretization,
    MaintenanceStrategy,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
)
from repro.engine import Database
from repro.workload import (
    TPCRConfig,
    ZipfianQueryStream,
    load_tpcr,
    make_t1,
    make_t2,
)


def main() -> None:
    db = Database(buffer_pool_pages=64)
    config = TPCRConfig(
        scale_factor=1.0,
        downscale=1000,
        seed=42,
        distinct_order_dates=90,
        suppliers=25,
        nations=5,
    )
    dataset = load_tpcr(db, config)
    print(
        "loaded TPC-R-like data:",
        ", ".join(f"{name}={count}" for name, count in dataset.row_counts.items()),
    )

    views, executors = {}, {}
    for template in (make_t1(), make_t2()):
        db.register_template(template)
        view = PartialMaterializedView(
            template,
            Discretization(template),
            tuples_per_entry=3,
            max_entries=2_000,
            policy="2q",
        )
        PMVMaintainer(db, view, strategy=MaintenanceStrategy.DELTA_JOIN).attach()
        views[template.name] = view
        executors[template.name] = PMVExecutor(db, view)

    dates = config.order_dates()
    streams = {
        "T1": ZipfianQueryStream(
            views["T1"].template, [dates, list(range(1, config.suppliers + 1))],
            alpha=1.07, seed=11,
        ),
        "T2": ZipfianQueryStream(
            views["T2"].template,
            [dates, list(range(1, config.suppliers + 1)), list(range(config.nations))],
            alpha=1.07, values_per_slot=[2, 2, 1], seed=12,
        ),
    }

    # Phase 1: warm-up — the analysts start exploring.
    print("\nphase 1: 120 warm-up queries per template")
    for name in ("T1", "T2"):
        for query in streams[name].queries(120):
            executors[name].execute(query)
        views[name].metrics.reset()

    # Phase 2: measured exploration with concurrent updates.
    print("phase 2: 120 measured queries per template + concurrent updates")
    rng = np.random.default_rng(3)
    order_ids = [row_id for row_id, _ in db.catalog.relation("orders").scan()]
    for step in range(120):
        for name in ("T1", "T2"):
            executors[name].execute(streams[name].next_query())
        if step % 10 == 0:  # a trickle of OLTP-style changes
            db.insert(
                "orders",
                (
                    10_000_000 + step,
                    int(rng.integers(1, config.customers + 1)),
                    dates[int(rng.integers(0, len(dates)))],
                    float(rng.uniform(100, 1000)),
                    "late order",
                ),
            )
            victim = order_ids[int(rng.integers(0, len(order_ids)))]
            try:
                db.delete("orders", victim)
            except Exception:
                pass  # already deleted in an earlier step

    print("\n== results ==")
    for name in ("T1", "T2"):
        view, metrics = views[name], views[name].metrics
        mean_partial = (
            metrics.partial_tuples / metrics.query_hits if metrics.query_hits else 0.0
        )
        print(
            f"{name}: hit probability {metrics.hit_probability:.0%}  "
            f"mean overhead {metrics.mean_overhead_seconds * 1e6:7.0f} µs  "
            f"mean execution {metrics.mean_execution_seconds * 1e6:7.0f} µs  "
            f"~{mean_partial:.1f} immediate tuples per hit"
        )
        print(
            f"    maintenance: {metrics.maintenance_inserts_ignored} inserts ignored "
            f"(free), {metrics.maintenance_deletes} deletes handled, "
            f"{metrics.maintenance_tuples_removed} cached tuples purged"
        )
        view.check_invariants()

    print(
        "\nthe PMVs stayed consistent through every update — no query ever "
        "received a stale partial result (DS invariant checked per query)."
    )


if __name__ == "__main__":
    main()
