"""A day in operations: durability, trace-driven tuning, and previews.

Walks the operational side of running PMVs in production:

1. the engine runs with a **write-ahead log**; a simulated crash loses
   all in-memory state and `recover()` replays the log — the PMVs
   restart empty (they are caches) and refill on first touch;
2. a **query trace** recorded during the morning identifies the hot
   cells and feeds the workload analysis that sizes the PMV;
3. analysts use **previews** (O1+O2 only) to decide whether a broad
   query is worth running — the paper's Benefit 2, measured here as
   I/O the RDBMS never had to do;
4. a **PMVManager** keeps one PMV per template and reports fleet-wide
   memory, showing "the RDBMS can afford storing many PMVs".

Run:  python examples/operations_day.py
"""

from repro.core import PMVManager
from repro.engine import Database, WriteAheadLog, recover
from repro.workload import (
    QueryTraceRecorder,
    TPCRConfig,
    ZipfianQueryStream,
    load_tpcr,
    make_t1,
    make_t2,
)


def main() -> None:
    # --- 1. a durable engine -------------------------------------------------
    wal = WriteAheadLog()  # pass a path for on-disk durability
    db = Database(buffer_pool_pages=64, wal=wal)
    config = TPCRConfig(
        scale_factor=1.0, downscale=2000, seed=9,
        distinct_order_dates=40, suppliers=12, nations=4,
    )
    dataset = load_tpcr(db, config)
    print(f"engine up with WAL: {len(wal)} log records after load "
          f"({dataset.row_counts['lineitem']} lineitems)")

    manager = PMVManager(db)
    t1, t2 = make_t1(), make_t2()
    manager.create_view(t1, tuples_per_entry=3, max_entries=300, policy="2q")
    manager.create_view(t2, tuples_per_entry=3, max_entries=300, policy="2q")

    # --- 2. the morning's trace ------------------------------------------------
    recorder = QueryTraceRecorder(t1)
    stream = ZipfianQueryStream(
        t1, [config.order_dates(), list(range(1, config.suppliers + 1))],
        alpha=1.2, seed=4,
    )
    run_t1 = recorder.wrap(lambda q: manager.execute(q))
    for query in stream.queries(150):
        run_t1(query)
    hot = recorder.trace.hot_cells(top=3)
    print("\nmorning trace analysis — hottest (date, supplier) cells:")
    for cell, count in hot:
        print(f"  {cell}: requested {count}x")
    print(f"  T1 hit probability so far: "
          f"{manager.view('T1').metrics.hit_probability:.0%}")

    # --- 3. preview before committing to a broad query --------------------------
    executor = manager.executor("T1")
    broad = stream.next_query()
    executor.execute(broad)  # make its cells warm for the demo
    io_before = db.io_snapshot()
    glimpse = executor.preview(broad)
    io_spent = db.io_since(io_before).total
    print(f"\npreview of a broad query: {len(glimpse.partial_rows)} rows "
          f"instantly, {io_spent} page I/Os spent (full run skipped)")

    # --- 4. fleet accounting ------------------------------------------------------
    print("\nPMV fleet:")
    for row in manager.summary():
        print(f"  {row['template']}: {row['entries']} cells, "
              f"{row['tuples']} tuples, {row['bytes']}B, "
              f"hit {row['hit_probability']:.0%} over {row['queries']} queries")
    print(f"  total fleet memory: {manager.total_bytes}B")

    # --- 5. the crash --------------------------------------------------------------
    answer_before = sorted(
        tuple(r.values) for r in manager.execute(recorder.trace.queries[0]).all_rows()
    )
    del db, manager  # power cable meets foot
    recovered = recover(wal)
    print(f"\ncrash! recovered {recovered.catalog.relation('lineitem').row_count} "
          f"lineitems from {len(wal)} log records")

    fresh_manager = PMVManager(recovered)
    # Templates are identity-keyed: reuse the same t1 object so the
    # morning's recorded queries bind to the recreated view.
    fresh_manager.create_view(t1, tuples_per_entry=3, max_entries=300, policy="2q")
    cold = fresh_manager.execute(recorder.trace.queries[0])
    assert cold.partial_rows == []  # caches restart empty — and that's correct
    answer_after = sorted(tuple(r.values) for r in cold.all_rows())
    assert answer_after == answer_before
    print("post-recovery answers identical; PMVs restarted empty and will "
          "refill from the afternoon's queries")


if __name__ == "__main__":
    main()
