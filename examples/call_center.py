"""The paper's motivating scenario: a retailer's customer-service call
center (Section 1).

When a customer calls in, the operator queries two relations:

- ``related(item, related_item)`` — items related to what the customer
  recently purchased;
- ``sale(item, discount, store, description)`` — items currently on
  sale, one logical partition per store.

The operator needs *some* on-sale suggestions before the customer hangs
up, not the complete list, and the suggestions must be current (an item
whose sale just ended must never be offered) — exactly transactionally
consistent, immediate partial results.

The discount predicate is an interval condition ("at least p % off",
with p depending on customer loyalty), so this example also exercises
the interval-form slots with dividing values.

Run:  python examples/call_center.py
"""

import numpy as np

from repro import (
    Column,
    Database,
    Discretization,
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
    JoinEquality,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
)
from repro.core import BasicIntervals
from repro.engine import FLOAT, INTEGER, TEXT, PLUS_INFINITY


def build_store(seed: int = 20260705) -> Database:
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_relation(
        "related", [Column("item", INTEGER), Column("related_item", INTEGER)]
    )
    db.create_relation(
        "sale",
        [
            Column("item", INTEGER),
            Column("discount", FLOAT),
            Column("store", INTEGER),
            Column("description", TEXT),
        ],
    )
    db.create_index("related_item_idx", "related", ["item"])
    db.create_index("related_target_idx", "related", ["related_item"])
    db.create_index("sale_item_idx", "sale", ["item"])
    db.create_index("sale_discount_idx", "sale", ["discount"], ordered=True)
    # 2,000 catalogue items, each related to a handful of others.
    for item in range(2000):
        for _ in range(rng.integers(2, 5)):
            db.insert("related", (item, int(rng.integers(0, 2000))))
    # A quarter of the catalogue is on sale somewhere.
    for item in rng.choice(2000, size=500, replace=False):
        db.insert(
            "sale",
            (
                int(item),
                float(np.round(rng.uniform(5, 60), 1)),
                int(rng.integers(0, 4)),
                f"promo for item {item}",
            ),
        )
    return db


def main() -> None:
    db = build_store()

    # Template: items related to one of the customer's purchases that
    # are on sale with a discount of at least p%.
    template = QueryTemplate(
        name="offers",
        relations=("related", "sale"),
        select_list=("related.item", "sale.item", "sale.discount", "sale.description"),
        joins=(JoinEquality("related", "related_item", "sale", "item"),),
        slots=(
            SelectionSlot("related", "related.item", SlotForm.EQUALITY),
            SelectionSlot("sale", "sale.discount", SlotForm.INTERVAL),
        ),
    )
    db.register_template(template)

    # Loyalty tiers define the natural dividing values for the
    # discount axis: [0,10), [10,25), [25,40), [40,+inf).
    discount_grid = BasicIntervals([10.0, 25.0, 40.0], low=0.0)
    pmv = PartialMaterializedView(
        template,
        Discretization(template, {"sale.discount": discount_grid}),
        tuples_per_entry=5,
        max_entries=5_000,
        policy="2q",
        aux_index_columns=("sale.item",),
    )
    executor = PMVExecutor(db, pmv)
    PMVMaintainer(db, pmv).attach()

    def offers_query(purchased_items, min_discount):
        return template.bind(
            [
                EqualityDisjunction("related.item", purchased_items),
                IntervalDisjunction(
                    "sale.discount",
                    [Interval(min_discount, PLUS_INFINITY, low_inclusive=True)],
                ),
            ]
        )

    # A stream of calls; popular items repeat, so their cells get hot.
    rng = np.random.default_rng(7)
    popular = [3, 17, 42, 99, 123]
    print("warming the PMV with 60 calls...")
    for _ in range(60):
        purchased = sorted(set(int(rng.choice(popular)) for _ in range(2)))
        executor.execute(offers_query(purchased, 10.0))

    # The call that matters: a loyal customer (p=25%) who bought
    # popular items — the operator sees offers within the O2 latency.
    call = offers_query([3, 42], 25.0)
    result = executor.execute(call)
    print(
        f"\ncustomer call: {len(result.partial_rows)} offer(s) available immediately "
        f"({result.metrics.partial_latency_seconds * 1e6:.0f} µs), "
        f"{len(result.remaining_rows)} more after full execution "
        f"({result.metrics.execution_seconds * 1e6:.0f} µs)"
    )
    for row in result.partial_rows[:5]:
        print(
            f"  offer now: item {row['sale.item']} at {row['sale.discount']}% off "
            f"(related to purchased item {row['related.item']})"
        )

    # A sale ends mid-shift: deferred maintenance purges the cached
    # offers for that item, so the next call never sees it.
    ended = result.all_rows()[0]["sale.item"]
    db.delete_where("sale", lambda row: row["item"] == ended)
    followup = executor.execute(call)
    assert all(row["sale.item"] != ended for row in followup.all_rows())
    print(f"\nsale on item {ended} ended -> no stale offer served "
          f"({len(followup.all_rows())} offers remain)")
    print(
        f"\nPMV: {pmv.entry_count} hot cells cached, hit probability "
        f"{pmv.metrics.hit_probability:.0%} across {pmv.metrics.queries} calls"
    )


if __name__ == "__main__":
    main()
