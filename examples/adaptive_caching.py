"""Replacement policies and workload drift (Sections 3.2 and 3.5).

The PMV continuously adapts its contents to the current query pattern.
This example compares CLOCK, the simplified 2Q, LRU, and FIFO under a
workload whose hot set *shifts* halfway through, and shows the
trace-driven discretization learner picking dividing values for an
interval-form slot.

Run:  python examples/adaptive_caching.py
"""

import numpy as np

from repro import (
    Column,
    Database,
    Discretization,
    EqualityDisjunction,
    JoinEquality,
    PartialMaterializedView,
    PMVExecutor,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    learn_dividing_values,
)
from repro.core import BasicIntervals
from repro.engine import INTEGER, TEXT


def build_db(seed: int = 5) -> Database:
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_relation(
        "r", [Column("id", INTEGER), Column("c", INTEGER), Column("f", INTEGER), Column("a", TEXT)]
    )
    db.create_relation("s", [Column("d", INTEGER), Column("g", INTEGER), Column("e", TEXT)])
    for name, rel, col in [("r_f", "r", "f"), ("s_d", "s", "d"), ("s_g", "s", "g")]:
        db.create_index(name, rel, [col])
    for i in range(1200):
        db.insert("r", (i, i % 40, int(rng.integers(0, 50)), f"a{i}"))
    for j in range(600):
        db.insert("s", (j % 40, int(rng.integers(0, 30)), f"e{j}"))
    return db


def make_template() -> QueryTemplate:
    return QueryTemplate(
        name="Eqt",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def drifting_workload(rng, phase: int):
    """Hot f-values 0..9 in phase 0, 25..34 in phase 1."""
    base = 0 if phase == 0 else 25
    f = base + int(rng.integers(0, 10))
    g = int(rng.integers(0, 6))
    return [f], [g]


def main() -> None:
    db = build_db()
    template = make_template()
    db.register_template(template)

    print("== policy comparison under workload drift ==")
    print(f"{'policy':>7}  {'phase-1 hits':>12}  {'post-drift hits':>15}")
    for policy in ("clock", "2q", "lru", "fifo"):
        view = PartialMaterializedView(
            template, Discretization(template), tuples_per_entry=2,
            max_entries=40, policy=policy,
        )
        executor = PMVExecutor(db, view)
        rng = np.random.default_rng(99)
        # Phase 0: warm on the first hot set, then measure.
        for _ in range(150):
            fs, gs = drifting_workload(rng, 0)
            executor.execute(template.bind(
                [EqualityDisjunction("r.f", fs), EqualityDisjunction("s.g", gs)]
            ))
        view.metrics.reset()
        for _ in range(100):
            fs, gs = drifting_workload(rng, 0)
            executor.execute(template.bind(
                [EqualityDisjunction("r.f", fs), EqualityDisjunction("s.g", gs)]
            ))
        steady = view.metrics.hit_probability
        # Drift: the hot set moves; measure again after a short
        # adaptation window.
        for _ in range(150):
            fs, gs = drifting_workload(rng, 1)
            executor.execute(template.bind(
                [EqualityDisjunction("r.f", fs), EqualityDisjunction("s.g", gs)]
            ))
        view.metrics.reset()
        for _ in range(100):
            fs, gs = drifting_workload(rng, 1)
            executor.execute(template.bind(
                [EqualityDisjunction("r.f", fs), EqualityDisjunction("s.g", gs)]
            ))
        adapted = view.metrics.hit_probability
        print(f"{policy:>7}  {steady:>11.0%}  {adapted:>14.0%}")

    # Trace-driven discretization: learn dividing values for an
    # interval slot from the endpoints users actually queried.
    print("\n== learning dividing values from a query trace ==")
    rng = np.random.default_rng(1)
    trace_endpoints = np.concatenate(
        [rng.normal(20, 3, 400), rng.normal(60, 8, 200)]
    ).round(1)
    cuts = learn_dividing_values(trace_endpoints.tolist(), bins=8)
    grid = BasicIntervals(cuts)
    print(f"learned {len(cuts)} dividing values: {cuts}")
    print(f"-> {grid.count} basic intervals; e.g. value 21.0 falls in "
          f"basic interval #{grid.id_for_value(21.0)} = {grid.interval(grid.id_for_value(21.0))}")


if __name__ == "__main__":
    main()
