"""Hot-path regression: the default executor must beat the legacy path.

Runs a 1000-query Zipfian workload through two identically-built
databases — once with every hot-path optimization on (O1 memo, plan
cache, batched O3) and once with all of them off (the original
per-row, re-derive-everything path) — and asserts:

- the PMV overhead (O1 + O2 + O3's checking) drops by at least 2x;
- both paths return row-for-row identical results for every query.

The measured summary is persisted to ``BENCH_hotpath.json`` at the
repository root so CI can archive the trend.
"""

import json
import math
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.bench.hotpath import run_hotpath_benchmark

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"


@pytest.mark.benchmark(group="hotpath")
def test_hotpath_overhead_regression(benchmark, report):
    result = run_once(benchmark, lambda: run_hotpath_benchmark())
    config = result.config

    report("\n== Hot-path regression: cached/batched vs legacy executor ==")
    report(
        f"workload: {config.queries} queries, Zipf alpha={config.alpha}, "
        f"h={math.prod(config.values_per_slot)}, F={config.tuples_per_entry}"
    )
    report(
        f"overhead: fast {result.fast_overhead_seconds * 1e3:.1f} ms, "
        f"slow {result.slow_overhead_seconds * 1e3:.1f} ms "
        f"-> {result.speedup:.2f}x reduction"
    )
    report(
        f"O1 memo hit ratio {result.o1_cache_hit_ratio:.1%}, "
        f"bcp hit probability {result.bcp_hit_probability:.1%}, "
        f"plan cache {result.plan_cache}"
    )

    RESULT_PATH.write_text(json.dumps(result.as_dict(), indent=2) + "\n")
    report(f"wrote {RESULT_PATH.name}")

    # The hot path must never change query answers.
    assert result.rows_identical, "cached/batched path altered query results"
    assert result.result_rows > 0

    # The workload actually exercises the caches.
    assert result.o1_cache_hit_ratio > 0.5
    assert result.plan_cache.get("hits", 0) > 0

    # The acceptance bar: >= 2x cheaper per-query PMV overhead.
    assert result.speedup >= 2.0, (
        f"hot path speedup {result.speedup:.2f}x below the 2x bar "
        f"(fast {result.fast_overhead_seconds:.4f}s, "
        f"slow {result.slow_overhead_seconds:.4f}s)"
    )
