"""Hot-path regression: the default executor must beat its ancestors.

Runs a 1000-query Zipfian workload through three identically-built
databases — the default columnar batch pipeline, the previous
row-at-a-time hot path (``columnar=False``), and the original
per-row, re-derive-everything path (every knob off) — and asserts:

- the columnar pipeline cuts PMV overhead (O1 + O2 + O3's checking)
  by at least 2x over the row hot path, measured within one run so
  machine speed divides out;
- the legacy path stays at least 2x more expensive than the default
  (the historical gate);
- all three paths return row-for-row identical results for every
  query.

The measured summary is persisted to ``BENCH_hotpath.json`` at the
repository root so CI can archive the trend.
"""

import json
import math
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.bench.hotpath import run_hotpath_benchmark

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"


@pytest.mark.benchmark(group="hotpath")
def test_hotpath_overhead_regression(benchmark, report):
    result = run_once(benchmark, lambda: run_hotpath_benchmark())
    config = result.config

    report("\n== Hot-path regression: columnar vs row vs legacy executor ==")
    report(
        f"workload: {config.queries} queries, Zipf alpha={config.alpha}, "
        f"h={math.prod(config.values_per_slot)}, F={config.tuples_per_entry}"
    )
    report(
        f"overhead: fast {result.fast_overhead_seconds * 1e3:.1f} ms, "
        f"row {result.row_overhead_seconds * 1e3:.1f} ms, "
        f"slow {result.slow_overhead_seconds * 1e3:.1f} ms "
        f"-> slow/fast {result.speedup:.2f}x, "
        f"row/fast {result.columnar_speedup:.2f}x"
    )
    report(
        f"O1 memo hit ratio {result.o1_cache_hit_ratio:.1%}, "
        f"bcp hit probability {result.bcp_hit_probability:.1%}, "
        f"plan cache {result.plan_cache}"
    )

    RESULT_PATH.write_text(json.dumps(result.as_dict(), indent=2) + "\n")
    report(f"wrote {RESULT_PATH.name}")

    # No pipeline may ever change query answers.
    assert result.rows_identical, "a pipeline altered query results"
    assert result.result_rows > 0

    # The workload actually exercises the caches.
    assert result.o1_cache_hit_ratio > 0.5
    assert result.plan_cache.get("hits", 0) > 0

    # The historical bar: >= 2x cheaper than the legacy path.
    assert result.speedup >= 2.0, (
        f"hot path speedup {result.speedup:.2f}x below the 2x bar "
        f"(fast {result.fast_overhead_seconds:.4f}s, "
        f"slow {result.slow_overhead_seconds:.4f}s)"
    )

    # The columnar bar: >= 2x cheaper than the row hot path it replaced.
    assert result.columnar_speedup >= 2.0, (
        f"columnar speedup {result.columnar_speedup:.2f}x below the 2x bar "
        f"(fast {result.fast_overhead_seconds:.4f}s, "
        f"row {result.row_overhead_seconds:.4f}s)"
    )
