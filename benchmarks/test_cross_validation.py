"""Cross-validation: the real engine's hit probability vs. the
Section 4.1 simulator.

The paper evaluates hit probability with an abstract simulation and
overhead with a real prototype; this bench closes the loop by measuring
hit probability *on the engine* — a Zipfian T1 workload against a real
PMV over real TPC-R data — and comparing it with the simulator's
prediction for a matched configuration (same universe of cells, same
capacity ratio, same α, same h).

The two setups are not identical (engine queries select *grids* of
cells — 2 dates × 2 suppliers — while the simulator draws h independent
cells), so the assertion is agreement in band and ordering, not
equality.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import build_experiment_database
from repro.bench.reporting import format_table
from repro.core import Discretization, PartialMaterializedView, PMVExecutor
from repro.sim.hitprob import SimulationConfig, simulate_hit_probability
from repro.workload import ZipfianQueryStream, make_t1

ALPHA = 1.07
CAPACITY_FRACTION = 0.1  # PMV entries as a share of the cell universe


@pytest.mark.benchmark(group="cross-validation")
def test_engine_hit_probability_matches_simulator_band(benchmark, report):
    def run():
        env = build_experiment_database(downscale=2000)
        db = env.database
        template = make_t1()
        universe = len(env.dates) * len(env.suppliers)
        capacity = max(1, round(universe * CAPACITY_FRACTION))
        view = PartialMaterializedView(
            template,
            Discretization(template),
            tuples_per_entry=2,
            max_entries=capacity,
            policy="2q",
        )
        executor = PMVExecutor(db, view)
        stream = ZipfianQueryStream(
            template,
            [env.dates, env.suppliers],
            alpha=ALPHA,
            values_per_slot=[2, 2],
            seed=31,
        )
        for query in stream.queries(400):  # warm-up
            executor.execute(query)
        view.metrics.reset()
        for query in stream.queries(400):  # measured
            executor.execute(query)
        engine_hit = view.metrics.hit_probability

        sim = simulate_hit_probability(
            SimulationConfig(
                universe=universe,
                cells_per_query=4,  # h = 2 dates x 2 suppliers
                alpha=ALPHA,
                policy="2q",
                capacity=capacity,
                warmup_queries=400,
                measured_queries=400,
                seed=31,
            )
        )
        return universe, capacity, engine_hit, sim.hit_probability

    universe, capacity, engine_hit, sim_hit = run_once(benchmark, run)
    report("\n== Cross-validation: engine vs simulator hit probability ==")
    report(
        format_table(
            ["setup", "universe", "capacity", "hit probability"],
            [
                ["engine (T1, Zipf grid queries)", universe, capacity, round(engine_hit, 3)],
                ["simulator (iid cells, h=4)", universe, capacity, round(sim_hit, 3)],
            ],
        )
    )
    # Both see a hot, cacheable workload...
    assert engine_hit > 0.5
    assert sim_hit > 0.5
    # ...and agree within a generous band despite the structural
    # difference between grid queries and iid cell draws.  Per-slot
    # Zipf sampling concentrates whole query *grids* on hot rows and
    # columns, which caches better than independent cells, so the
    # engine may exceed the simulator — it must not fall far below.
    assert engine_hit > sim_hit - 0.15
