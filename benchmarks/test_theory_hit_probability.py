"""Theory vs. simulation: Che's approximation over the Figure 6 grid.

The paper evaluates hit probability purely by simulation; this bench
overlays the closed-form prediction (see ``repro/sim/analytic.py``) on
the same grid and asserts agreement: the LRU-class prediction tracks
the simulated CLOCK curve within a few points at every (α, h), which
validates both the simulator (it converges to theory) and the choice
of CLOCK as an LRU stand-in (Section 3.2).
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import sim_scale
from repro.bench.reporting import Series, format_series
from repro.sim import SimulationConfig, che_approximation, simulate_hit_probability


@pytest.mark.benchmark(group="theory")
def test_theory_tracks_simulated_clock(benchmark, report):
    scale = sim_scale()
    base = SimulationConfig().scaled(scale)
    clock_capacity = round(base.capacity * base.clock_budget_factor)

    def sweep():
        series = []
        for alpha in (1.07, 1.01):
            theory = Series(f"theory, alpha={alpha}")
            simulated = Series(f"CLOCK sim, alpha={alpha}")
            for h in (1, 2, 3, 4, 5):
                prediction = che_approximation(
                    base.universe, alpha, clock_capacity, cells_per_query=h
                )
                theory.add(h, prediction.query_hit_probability)
                result = simulate_hit_probability(
                    SimulationConfig(
                        universe=base.universe,
                        capacity=base.capacity,
                        alpha=alpha,
                        cells_per_query=h,
                        warmup_queries=base.warmup_queries,
                        measured_queries=base.measured_queries,
                        policy="clock",
                        seed=base.seed,
                    )
                )
                simulated.add(h, result.hit_probability)
            series.extend([theory, simulated])
        return series

    series = run_once(benchmark, sweep)
    report(f"\n== Theory (Che) vs simulated CLOCK (scale {scale:.2%}) ==")
    report(format_series("h", series))

    by_label = {line.label: line for line in series}
    for alpha in (1.07, 1.01):
        theory = by_label[f"theory, alpha={alpha}"]
        simulated = by_label[f"CLOCK sim, alpha={alpha}"]
        for y_theory, y_sim in zip(theory.y, simulated.y):
            assert abs(y_theory - y_sim) < 0.05, (
                f"theory {y_theory:.3f} vs sim {y_sim:.3f} at alpha={alpha}"
            )
