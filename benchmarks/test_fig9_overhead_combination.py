"""Figure 9: PMV overhead vs. combination factor h.

Paper setup: F=3, s=1, h = 1..10 on templates T1 and T2.  Expected
shape: overhead grows with h (more condition parts to generate, probe,
and more result tuples to check), staying far below execution time.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import engine_downscale, run_fig9
from repro.bench.reporting import format_series


@pytest.mark.benchmark(group="fig9")
def test_fig9_overhead_vs_combination_factor(benchmark, report):
    series = run_once(benchmark, lambda: run_fig9(verbose=False))
    report(f"\n== Figure 9: overhead vs h (F=3, s=1, downscale x{engine_downscale()}) ==")
    report(format_series("h", series))

    by_label = {line.label: line for line in series}
    t1 = by_label["T1 overhead (s)"]
    t2 = by_label["T2 overhead (s)"]

    for line in (t1, t2):
        # Clear overall growth with h: the h=10 point dominates h=1 by
        # a wide margin, and the sweep is near-monotone.
        assert line.y[-1] > 2 * line.y[0]
        dips = sum(1 for a, b in zip(line.y, line.y[1:]) if b < a * 0.8)
        assert dips <= 2, f"{line.label} not rising with h: {line.y}"
        # Still sub-10ms everywhere.
        assert all(y < 0.01 for y in line.y)

    # Per-tuple complexity ordering (see fig8's rationale).
    t1_per = by_label["T1 per-tuple (s)"]
    t2_per = by_label["T2 per-tuple (s)"]
    higher = sum(1 for y1, y2 in zip(t1_per.y, t2_per.y) if y2 > y1)
    assert higher >= len(t1_per.y) - 2
