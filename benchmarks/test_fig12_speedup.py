"""Figure 12: speedup ratio TW(MV) / TW(PMV) vs. insert fraction p.

Expected shape (all asserted): the ratio increases monotonically with
p — the more inserts, the bigger the PMV's advantage, because PMVs pay
nothing at all for inserts — starting around 10² and reaching many
hundreds as p → 1 (unbounded at exactly p = 1).
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import run_fig12
from repro.bench.reporting import format_series


@pytest.mark.benchmark(group="fig12")
def test_fig12_speedup_ratio(benchmark, report):
    line = run_once(benchmark, lambda: run_fig12(verbose=False))
    report("\n== Figure 12: speedup ratio TW(MV)/TW(PMV) vs p ==")
    report(format_series("p", [line]))

    finite = [(x, y) for x, y in zip(line.x, line.y) if not math.isinf(y)]
    ys = [y for _, y in finite]

    # Strictly increasing with p.
    assert all(a < b for a, b in zip(ys, ys[1:]))

    # Starts around two orders of magnitude...
    assert 50 <= ys[0] <= 500
    # ...and reaches many hundreds by p=0.9 (the paper's plot tops out
    # around 500-600).
    y_at_09 = dict(finite)[0.9]
    assert y_at_09 >= 300

    # Unbounded at p=1 (PMV maintenance cost is exactly zero there).
    assert math.isinf(line.y[-1])
