"""Ablation: the F tradeoff under a fixed storage budget (Section 3.2).

The paper: "Given the storage limit UB of VPM, for a query Q, this F
makes a tradeoff between (a) the probability that VPM can provide some
partial results to Q, and (b) ... the number of partial result tuples
that VPM can provide."

Holding UB fixed and sweeping F: entry count L = UB / (1.04 · F · At)
shrinks as F grows, so the hit probability falls while each hit
delivers more tuples.  This bench quantifies both sides of the
tradeoff and asserts their monotonicity — the design rationale for
keeping F small (the paper's examples use F = 2-5).
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.reporting import Series, format_series
from repro.core.view import entries_for_budget
from repro.sim.hitprob import SimulationConfig, simulate_hit_probability

UB_BYTES = 42_000  # holds ~400 entries at F=2, At=50 (2% of paper's 1MB example)
AVG_TUPLE_BYTES = 50


@pytest.mark.benchmark(group="ablation")
def test_ablation_f_tradeoff_under_fixed_budget(benchmark, report):
    def sweep():
        hit_line = Series("hit probability")
        entries_line = Series("entries L")
        tuples_line = Series("tuples per hit (=F)")
        for f in (1, 2, 3, 5, 8):
            capacity = entries_for_budget(UB_BYTES, f, AVG_TUPLE_BYTES)
            config = SimulationConfig(
                universe=20_000,
                cells_per_query=2,
                alpha=1.07,
                policy="clock",
                capacity=capacity,
                clock_budget_factor=1.0,  # budget already folded into L
                warmup_queries=20_000,
                measured_queries=20_000,
                seed=7,
            )
            hit_line.add(f, simulate_hit_probability(config).hit_probability)
            entries_line.add(f, float(capacity))
            tuples_line.add(f, float(f))
        return hit_line, entries_line, tuples_line

    hit_line, entries_line, tuples_line = run_once(benchmark, sweep)
    report(f"\n== Ablation: F tradeoff at fixed UB={UB_BYTES}B, At={AVG_TUPLE_BYTES}B ==")
    report(format_series("F", [hit_line, entries_line, tuples_line]))

    # (a) hit probability strictly falls as F eats the budget...
    assert all(a > b for a, b in zip(hit_line.y, hit_line.y[1:]))
    # ...because the entry count falls.
    assert all(a > b for a, b in zip(entries_line.y, entries_line.y[1:]))
    # (b) while each hit delivers proportionally more tuples.
    assert tuples_line.y == [1.0, 2.0, 3.0, 5.0, 8.0]
    # The paper's operating range (small F) keeps hits useful: F=2
    # loses only modest probability vs F=1.
    assert hit_line.y[0] - hit_line.y[1] < 0.15
