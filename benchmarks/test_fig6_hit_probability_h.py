"""Figure 6: hit probability vs. number of bcps per query (h).

Paper setup: 1M bcps, N=20K, α ∈ {1.07, 1.01}, h = 1..5, CLOCK vs the
simplified 2Q, 1M warm-up + 1M measured queries.  We run a linearly
downscaled configuration (``PMV_BENCH_SCALE``, default 2 %) that keeps
every ratio.

Expected shape (all asserted): hit probability starts around 50-80 % at
h=1 and climbs toward 100 % as h grows; larger α gives higher hits;
2Q dominates CLOCK at every point.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import run_fig6, sim_scale
from repro.bench.reporting import format_series


@pytest.mark.benchmark(group="fig6")
def test_fig6_hit_probability_vs_h(benchmark, report):
    series = run_once(benchmark, lambda: run_fig6(verbose=False))
    report(f"\n== Figure 6: hit probability vs h (sim scale {sim_scale():.2%}) ==")
    report(format_series("h", series))

    by_label = {line.label: line for line in series}
    q2_hot = by_label["2Q, alpha=1.07"]
    q2_mild = by_label["2Q, alpha=1.01"]
    clock_hot = by_label["CLOCK, alpha=1.07"]
    clock_mild = by_label["CLOCK, alpha=1.01"]

    for line in series:
        # Monotone non-decreasing in h (small simulation noise allowed).
        for a, b in zip(line.y, line.y[1:]):
            assert b >= a - 0.01, f"{line.label} dipped: {line.y}"
        # Approaches 100% quickly: by h=5 every configuration is high.
        assert line.y[-1] > 0.90
        # Meaningful y-range, as in the paper's 50%-100% axis.
        assert line.y[0] > 0.40

    # Higher skew -> higher hit probability (fixed policy, fixed h).
    for hot, mild in ((q2_hot, q2_mild), (clock_hot, clock_mild)):
        for y_hot, y_mild in zip(hot.y, mild.y):
            assert y_hot >= y_mild - 0.01

    # 2Q beats CLOCK at every (alpha, h).
    for q2, clock in ((q2_hot, clock_hot), (q2_mild, clock_mild)):
        for y_q2, y_clock in zip(q2.y, clock.y):
            assert y_q2 >= y_clock - 0.005
