"""Shared helpers for the figure-regeneration benchmarks.

Each ``test_fig*.py`` regenerates one table/figure of the paper's
Section 4: it runs the corresponding driver (timed once under
pytest-benchmark), prints the same rows/series the paper reports, and
asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment rows past pytest's output capture.

    The regenerated figure rows are the deliverable of these
    benchmarks, so they must reach the terminal (and any tee'd log)
    even on passing runs.
    """

    def _report(text: str) -> None:
        with capsys.disabled():
            print(text, flush=True)

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    The figure drivers are full experiments (many queries / simulated
    runs), so repeating them for statistical timing would multiply the
    wall-clock for no benefit; the single-round time is the experiment
    duration.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
