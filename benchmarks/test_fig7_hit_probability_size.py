"""Figure 7: hit probability vs. PMV size N.

Paper setup: α=1.07, h=2, N ∈ {10K, 20K, 30K} over 1M bcps.  Expected
shape: hit probability climbs toward 100 % with N, and 2Q stays above
CLOCK at every size (the paper's y axis starts at 70 %).
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import run_fig7, sim_scale
from repro.bench.reporting import format_series


@pytest.mark.benchmark(group="fig7")
def test_fig7_hit_probability_vs_size(benchmark, report):
    series = run_once(benchmark, lambda: run_fig7(verbose=False))
    report(f"\n== Figure 7: hit probability vs N (sim scale {sim_scale():.2%}) ==")
    report(format_series("N", series))

    by_label = {line.label: line for line in series}
    q2, clock = by_label["2Q"], by_label["CLOCK"]

    for line in series:
        # Rises with N.
        for a, b in zip(line.y, line.y[1:]):
            assert b >= a - 0.01, f"{line.label} dipped: {line.y}"
        # Within the paper's displayed band at the largest N.
        assert line.y[-1] > 0.85

    # 2Q >= CLOCK at every N.
    for y_q2, y_clock in zip(q2.y, clock.y):
        assert y_q2 >= y_clock - 0.005

    # The smallest PMV already provides a solid hit rate (paper y-axis
    # starts at 70%).
    assert min(q2.y[0], clock.y[0]) > 0.55
