"""Figure 8: PMV overhead vs. F (number of tuples per PMV entry).

Paper setup: h=4, s=1, F = 1..5, templates T1 and T2, each query built
so exactly one of its h basic condition parts is resident.  Expected
shape: overhead grows with F (more cached tuples are checked in O2),
and stays in the sub-millisecond band.

The paper's absolute T2-above-T1 ordering is cardinality-sensitive; at
our downscale T1 queries process more result tuples, so the comparable
statement — asserted here — is the *per-tuple* overhead, where T2's
more complex bcps and longer tuples cost more (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import engine_downscale, run_fig8
from repro.bench.reporting import format_series


@pytest.mark.benchmark(group="fig8")
def test_fig8_overhead_vs_tuples_per_entry(benchmark, report):
    series = run_once(benchmark, lambda: run_fig8(verbose=False))
    report(f"\n== Figure 8: overhead vs F (h=4, s=1, downscale x{engine_downscale()}) ==")
    report(format_series("F", series))

    by_label = {line.label: line for line in series}
    t1 = by_label["T1 overhead (s)"]
    t2 = by_label["T2 overhead (s)"]
    t1_per = by_label["T1 per-tuple (s)"]
    t2_per = by_label["T2 per-tuple (s)"]

    # Overhead increases with F: the top of the sweep dominates the
    # bottom (single-point comparisons are too timing-noise-sensitive).
    for line in (t1, t2):
        low = sum(line.y[:2]) / 2
        high = sum(line.y[-2:]) / 2
        assert high > low * 0.95, f"{line.label} fell across the F sweep: {line.y}"

    # Tiny absolute overhead: well below 10 ms per query even in Python.
    for line in (t1, t2):
        assert all(y < 0.01 for y in line.y)

    # T2's per-tuple overhead exceeds T1's at every F (the paper's
    # complexity ordering).
    for y1, y2 in zip(t1_per.y, t2_per.y):
        assert y2 > y1
