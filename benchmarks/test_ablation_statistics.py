"""Ablation: statistics-aware driver choice in the planner.

The paper runs PostgreSQL's statistics collector before measuring
(Section 4.2); our engine's equivalent (`Database.analyze()`) feeds
per-column MCVs/histograms to the planner, which then drives each plan
from the *most selective* indexed slot instead of the first one in
template order.  This ablation measures the benefit on a workload
engineered so template order picks badly: the first slot's predicate
matches most of its relation, the second slot's almost nothing.
"""

import time

import pytest

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
)


def build_skewed_db() -> Database:
    db = Database(buffer_pool_pages=32)
    db.create_relation("r", [Column("c", INTEGER), Column("f", INTEGER), Column("pad", INTEGER)])
    db.create_relation("s", [Column("d", INTEGER), Column("g", INTEGER), Column("pad", INTEGER)])
    for name, rel, col in (("r_f", "r", "f"), ("r_c", "r", "c"), ("s_d", "s", "d"), ("s_g", "s", "g")):
        db.create_index(name, rel, [col])
    # r.f = 1 matches ~everything; s.g values are nearly unique.
    for i in range(4000):
        db.insert("r", (i % 200, 1 if i % 20 else 2, i))
    for j in range(4000):
        db.insert("s", (j % 200, j, j))
    return db


TEMPLATE = QueryTemplate(
    "skewed",
    ("r", "s"),
    ("r.c", "s.d"),
    (JoinEquality("r", "c", "s", "d"),),
    (
        SelectionSlot("r", "r.f", SlotForm.EQUALITY),   # non-selective
        SelectionSlot("s", "s.g", SlotForm.EQUALITY),   # highly selective
    ),
)


def timed_runs(db: Database, query, runs: int = 5) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        db.run(query)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="ablation")
def test_ablation_statistics_aware_planning(benchmark, report):
    def run():
        db = build_skewed_db()
        query = TEMPLATE.bind(
            [EqualityDisjunction("r.f", [1]), EqualityDisjunction("s.g", [17, 42])]
        )
        naive_plan = db.plan(query).explain()
        naive_time = timed_runs(db, query)
        naive_rows = sorted(tuple(r.values) for r in db.run(query))
        db.analyze()
        informed_plan = db.plan(query).explain()
        informed_time = timed_runs(db, query)
        informed_rows = sorted(tuple(r.values) for r in db.run(query))
        assert naive_rows == informed_rows, "plans must agree on the answer"
        return naive_plan, naive_time, informed_plan, informed_time

    naive_plan, naive_time, informed_plan, informed_time = run_once(benchmark, run)
    report("\n== Ablation: planner driver choice with/without ANALYZE ==")
    report(
        format_table(
            ["planner", "driver", "best-of-5 (s)"],
            [
                ["template order", naive_plan.splitlines()[-1].strip(), naive_time],
                ["statistics", informed_plan.splitlines()[-1].strip(), informed_time],
            ],
        )
    )
    # Template order drives on the non-selective r.f slot...
    assert "r via r_f" in naive_plan
    # ...statistics flip the driver to the selective s.g slot...
    assert "s via s_g" in informed_plan
    # ...which pays off by a wide margin on this workload.
    assert informed_time * 5 < naive_time
