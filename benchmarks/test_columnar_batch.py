"""Columnar batch-size sweep: ``batch_rows`` vs. PMV overhead.

Runs the hot-path Zipfian workload through the default (columnar)
executor at several ``batch_rows`` settings and asserts:

- every setting returns row-for-row identical results (batch
  boundaries are an execution detail, never a semantic one);
- the sweep actually ran every configured batch size.

The measured summary is persisted to ``BENCH_columnar.json`` at the
repository root so CI can archive the sweep curve.
"""

import json
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.bench.columnar import run_columnar_sweep

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_columnar.json"


@pytest.mark.benchmark(group="columnar")
def test_columnar_batch_sweep(benchmark, report):
    result = run_once(benchmark, lambda: run_columnar_sweep())
    config = result.config

    report("\n== Columnar batch-size sweep ==")
    report(
        f"workload: {config.queries} queries, Zipf alpha={config.alpha}, "
        f"F={config.tuples_per_entry}"
    )
    for batch_rows in config.batch_sizes:
        overhead = result.overhead_by_batch[batch_rows]
        report(
            f"  batch_rows={batch_rows:>5}: overhead "
            f"{overhead * 1e6 / config.queries:7.1f} us/query"
        )
    report(f"best batch_rows: {result.best_batch_rows}")

    RESULT_PATH.write_text(json.dumps(result.as_dict(), indent=2) + "\n")
    report(f"wrote {RESULT_PATH.name}")

    # Batch size must never change query answers.
    assert result.rows_identical, "batch size altered query results"
    assert result.result_rows > 0
    assert set(result.overhead_by_batch) == set(config.batch_sizes)
    assert all(v > 0 for v in result.overhead_by_batch.values())
