"""Figure 10: query execution time vs. PMV overhead across scale factors.

Paper setup: h=4, F=3, s ∈ {0.5, 1, 1.5, 2}; log-scale y; the paper
reports the PMV overhead more than five orders of magnitude below
execution time on its disk-bound testbed.

Our engine reproduces the *shape*: execution time (wall clock plus
simulated disk latency for the plan's real page traffic) grows with s
and sits orders of magnitude above the PMV overhead at every point; the
overhead itself barely moves with s because it touches result tuples,
not the data set.  The exact gap depends on the disk-latency constant
(5 ms/page, a 2007-era disk) — see EXPERIMENTS.md.
"""

import math

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import engine_downscale, run_fig10
from repro.bench.reporting import format_series


@pytest.mark.benchmark(group="fig10")
def test_fig10_execution_vs_overhead(benchmark, report):
    series = run_once(benchmark, lambda: run_fig10(verbose=False))
    report(
        f"\n== Figure 10: execution vs overhead over s "
        f"(h=4, F=3, downscale x{engine_downscale()}) =="
    )
    report(format_series("s", series))

    by_label = {line.label: line for line in series}
    exec_t1 = by_label["execute T1 (s)"]
    exec_t2 = by_label["execute T2 (s)"]
    pmv_t1 = by_label["PMV T1 (s)"]
    pmv_t2 = by_label["PMV T2 (s)"]

    # The headline: a large, stable gap at every scale factor.
    for exec_line, pmv_line in ((exec_t1, pmv_t1), (exec_t2, pmv_t2)):
        for y_exec, y_pmv in zip(exec_line.y, pmv_line.y):
            gap = math.log10(y_exec / y_pmv)
            assert gap >= 1.5, f"gap only 10^{gap:.2f}"

    # Execution work grows with the data (s=2 processes 4x s=0.5's rows).
    assert exec_t1.y[-1] > exec_t1.y[0]

    # Overhead is insensitive to s (within an order of magnitude).
    for pmv_line in (pmv_t1, pmv_t2):
        assert max(pmv_line.y) < 10 * min(pmv_line.y)

    # Every overhead point is sub-10 ms ("within a millisecond" at the
    # paper's C-implementation speeds).
    for pmv_line in (pmv_t1, pmv_t2):
        assert all(y < 0.01 for y in pmv_line.y)
