"""Ablation: maintenance strategies, measured on the engine.

Complements the analytical Figures 11-12 with *measured* maintenance
work on the TPC-R data:

1. PMV deferred maintenance (inserts free) vs. the traditional MV's
   immediate maintenance (a delta join per change) — the engine-level
   counterpart of Figure 11's claim;
2. the DELTA_JOIN strategy of the main text vs. the AUX_INDEX
   optimization the paper defers to its full version: aux-index
   maintenance avoids all base-relation index probes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import build_experiment_database
from repro.bench.reporting import format_table
from repro.core import (
    Discretization,
    MaintenanceStrategy,
    MaterializedView,
    PartialMaterializedView,
    PMVExecutor,
    PMVMaintainer,
)
from repro.workload import ControlledQueryFactory, make_t1


def _setup(strategy):
    env = build_experiment_database(downscale=2000)
    db = env.database
    template = make_t1()
    # One aux attribute per relation: orderkey exactly identifies an
    # orders row's derived tuples; suppkey over-approximates a lineitem
    # row's (a safe superset, per Section 3.4's optimization).
    aux = ("orders.orderkey", "lineitem.suppkey")
    view = PartialMaterializedView(
        template,
        Discretization(template),
        tuples_per_entry=3,
        max_entries=2_000,
        aux_index_columns=aux,
    )
    executor = PMVExecutor(db, view)
    PMVMaintainer(db, view, strategy=strategy).attach()
    factory = ControlledQueryFactory(
        template, [env.dates, env.suppliers], seed=9
    )
    # Warm the PMV over a spread of cells.
    for h in (1, 2, 4, 6):
        executor.execute(factory.query(h))
    return env, db, view


def _probe_count(db) -> int:
    return sum(index.probes for rel in db.catalog.relations()
               for index in db.catalog.indexes_on(rel.name))


@pytest.mark.benchmark(group="ablation")
def test_ablation_pmv_vs_mv_maintenance(benchmark, report):
    def run():
        env, db, view = _setup(MaintenanceStrategy.DELTA_JOIN)
        mv = MaterializedView(db, view.template).attach()
        orders = db.catalog.relation("orders")
        # A transaction mixing inserts and deletes (p = 0.5, |dR|=40).
        dates = env.dates
        for i in range(20):
            db.insert(
                "orders",
                (5_000_000 + i, 1 + i % 50, dates[i % len(dates)], 100.0, "new"),
            )
        victims = [row_id for row_id, _ in orders.scan()][:20]
        for row_id in victims:
            db.delete("orders", row_id)
        return view.metrics, mv.stats

    pmv_metrics, mv_stats = run_once(benchmark, run)
    report("\n== Ablation: measured maintenance work, 20 inserts + 20 deletes ==")
    report(
        format_table(
            ["method", "delta joins", "inserts maintained", "tuples touched"],
            [
                [
                    "MV (immediate)",
                    mv_stats.delta_joins,
                    20,
                    mv_stats.tuples_added + mv_stats.tuples_removed,
                ],
                [
                    "PMV (deferred)",
                    pmv_metrics.maintenance_deletes,  # delta joins on deletes only
                    0,
                    pmv_metrics.maintenance_tuples_removed,
                ],
            ],
        )
    )
    # The MV pays a delta join for every change; the PMV only for deletes.
    assert mv_stats.delta_joins == 40
    assert pmv_metrics.maintenance_inserts_ignored == 20
    assert pmv_metrics.maintenance_deletes == 20
    # And the MV materializes every derived tuple while the PMV touches
    # only the (few) cached ones.
    assert mv_stats.tuples_added + mv_stats.tuples_removed > (
        pmv_metrics.maintenance_tuples_removed
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_delta_join_vs_aux_index(benchmark, report):
    def run():
        results = {}
        for strategy in (MaintenanceStrategy.DELTA_JOIN, MaintenanceStrategy.AUX_INDEX):
            env, db, view = _setup(strategy)
            orders = db.catalog.relation("orders")
            probes_before = _probe_count(db)
            victims = [row_id for row_id, _ in orders.scan()][:30]
            for row_id in victims:
                db.delete("orders", row_id)
            results[strategy.value] = {
                "index probes": _probe_count(db) - probes_before,
                "tuples purged": view.metrics.maintenance_tuples_removed,
            }
        return results

    results = run_once(benchmark, run)
    report("\n== Ablation: delete maintenance strategy (30 deletes) ==")
    report(
        format_table(
            ["strategy", "base index probes", "cached tuples purged"],
            [
                [name, stats["index probes"], stats["tuples purged"]]
                for name, stats in results.items()
            ],
        )
    )
    # The delta join probes base-relation indexes per delete (plus the
    # probes the base delete itself needs); the aux-index strategy adds
    # almost none beyond those.
    assert (
        results["aux_index"]["index probes"]
        < results["delta_join"]["index probes"]
    )
    # Both strategies purge the stale tuples (aux may purge a superset,
    # which is safe).
    assert results["aux_index"]["tuples purged"] >= results["delta_join"]["tuples purged"]
