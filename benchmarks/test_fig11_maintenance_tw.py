"""Figure 11: total maintenance workload TW (in I/Os) vs. insert
fraction p, for the traditional MV and the PMV.

Paper setup: |ΔR| = 1,000 changed tuples, p × |ΔR| inserts and
(1-p) × |ΔR| deletes; log-scale y from 1 to 10,000.  Expected shape
(all asserted): both curves decrease in p; the MV curve sits at least
two orders of magnitude above the PMV curve everywhere; the PMV curve
hits exactly zero at p = 100 % (inserts are free for PMVs).
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import run_fig11
from repro.bench.reporting import format_series


@pytest.mark.benchmark(group="fig11")
def test_fig11_maintenance_workload(benchmark, report):
    series = run_once(benchmark, lambda: run_fig11(verbose=False))
    report("\n== Figure 11: maintenance TW (I/Os) vs p, |dR|=1000 ==")
    report(format_series("p", series))

    mv, pmv = series
    assert mv.label.startswith("MV")

    # Both decrease with p (deletes are the expensive case).
    assert all(a >= b for a, b in zip(mv.y, mv.y[1:]))
    assert all(a >= b for a, b in zip(pmv.y, pmv.y[1:]))

    # >= 2 orders of magnitude gap wherever PMV work is nonzero.
    for y_mv, y_pmv in zip(mv.y, pmv.y):
        if y_pmv > 0:
            assert y_mv / y_pmv >= 100

    # PMV maintenance is exactly zero at p=100%.
    assert pmv.y[-1] == 0.0
    assert mv.y[-1] > 0

    # The MV curve lands in the paper's 10^3-10^4 band at p=0.
    assert 1_000 <= mv.y[0] <= 100_000
