"""Ablation: replacement policies beyond the paper's CLOCK/2Q pair.

Section 3.5 leaves "identify[ing] other algorithms that perform better
than both CLOCK and 2Q" as future work; this ablation adds LRU and FIFO
to the Figure 6/7 simulation at the reference configuration (α=1.07,
h=2) so the design choice is quantified: scan-resistant admission (2Q)
buys several points of hit probability over recency-only policies,
while FIFO — which never refreshes on a hit — trails everything.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.reporting import Series, format_series
from repro.sim.hitprob import SimulationConfig, simulate_hit_probability


POLICIES = ("2q", "clock", "lru", "fifo")


@pytest.mark.benchmark(group="ablation")
def test_ablation_replacement_policies(benchmark, report):
    base = SimulationConfig().scaled(0.02)

    def sweep():
        series = []
        for policy in POLICIES:
            line = Series(policy.upper())
            for h in (1, 2, 3):
                config = SimulationConfig(
                    universe=base.universe,
                    cells_per_query=h,
                    alpha=1.07,
                    policy=policy,
                    capacity=base.capacity,
                    warmup_queries=base.warmup_queries,
                    measured_queries=base.measured_queries,
                    seed=base.seed,
                )
                line.add(h, simulate_hit_probability(config).hit_probability)
            series.append(line)
        return series

    series = run_once(benchmark, sweep)
    report("\n== Ablation: replacement policies (alpha=1.07) ==")
    report(format_series("h", series))

    by_label = {line.label: line for line in series}
    # 2Q on top, FIFO at the bottom, at every h.
    for i in range(3):
        assert by_label["2Q"].y[i] >= by_label["CLOCK"].y[i] - 0.005
        assert by_label["2Q"].y[i] >= by_label["LRU"].y[i] - 0.005
        assert by_label["FIFO"].y[i] <= by_label["CLOCK"].y[i] + 0.01
        assert by_label["FIFO"].y[i] <= by_label["LRU"].y[i] + 0.01
    # CLOCK approximates LRU (the paper's rationale for using it).
    for y_clock, y_lru in zip(by_label["CLOCK"].y, by_label["LRU"].y):
        assert abs(y_clock - y_lru) < 0.05
