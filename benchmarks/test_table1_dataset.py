"""Table 1: the TPC-R-like test data set (rows and sizes vs. scale s).

Regenerates the paper's Table 1 at ``downscale=1`` arithmetic (exact
paper numbers) and additionally *materializes* the dataset at the bench
downscale, verifying the generated relations hit the same ratios.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.figures import engine_downscale, run_table1
from repro.bench.reporting import format_table
from repro.engine import Database
from repro.workload import TPCRConfig, load_tpcr


@pytest.mark.benchmark(group="table1")
def test_table1_dataset(benchmark, report):
    rows = run_once(benchmark, lambda: run_table1(verbose=False))
    report("\n== Table 1: test data set (paper arithmetic, downscale=1) ==")
    report(
        format_table(
            ["s", "relation", "tuples", "MB"],
            [
                [r["scale"], r["relation"], r["tuples"], round(r["megabytes"], 1)]
                for r in rows
            ],
        )
    )
    by_key = {(r["scale"], r["relation"]): r for r in rows}
    # Paper's s=1 row: 0.15M/1.5M/6M tuples, 23/114/755 MB.
    assert by_key[(1.0, "customer")]["tuples"] == 150_000
    assert by_key[(1.0, "orders")]["tuples"] == 1_500_000
    assert by_key[(1.0, "lineitem")]["tuples"] == 6_000_000
    assert by_key[(1.0, "customer")]["megabytes"] == pytest.approx(23, rel=0.05)
    assert by_key[(1.0, "orders")]["megabytes"] == pytest.approx(114, rel=0.05)
    assert by_key[(1.0, "lineitem")]["megabytes"] == pytest.approx(755, rel=0.05)
    # Linear in s.
    for relation in ("customer", "orders", "lineitem"):
        assert by_key[(2.0, relation)]["tuples"] == 2 * by_key[(1.0, relation)]["tuples"]


@pytest.mark.benchmark(group="table1")
def test_table1_materialized_at_bench_scale(benchmark, report):
    downscale = engine_downscale()

    def load():
        db = Database(buffer_pool_pages=256)
        return load_tpcr(db, TPCRConfig(scale_factor=1.0, downscale=downscale))

    dataset = run_once(benchmark, load)
    report(f"\n== Table 1 (materialized, downscale x{downscale}, s=1) ==")
    report(
        format_table(
            ["relation", "tuples", "MB"],
            [
                [name, dataset.row_counts[name], round(dataset.total_megabytes(name), 3)]
                for name in ("customer", "orders", "lineitem")
            ],
        )
    )
    assert dataset.row_counts["orders"] == 10 * dataset.row_counts["customer"]
    assert dataset.row_counts["lineitem"] == 4 * dataset.row_counts["orders"]
    # Size ratios track the paper's 23 : 114 : 755.
    ratio = dataset.byte_sizes["lineitem"] / dataset.byte_sizes["orders"]
    assert ratio == pytest.approx(755 / 114, rel=0.25)
