"""Deterministic fault schedules.

A :class:`FaultPlan` is a reproducible description of *which* fault
fires *where*: a set of :class:`FaultSpec` triples ``(site, occurrence,
mode)`` meaning "at the Nth time execution reaches fault site ``site``,
fail in ``mode``".  Sites are counted per run by the
:class:`~repro.faults.inject.FaultInjector`, so the same plan against
the same seeded workload reproduces the same failure bit-for-bit —
every divergence the torture harness reports is replayable from its
printed spec.

Fault sites (see :mod:`repro.faults.inject` for the wiring):

======================  ====================================================
``wal.append``          a log record write (crash before / torn / after)
``wal.checkpoint``      the checkpoint marker append
``disk.write_page``     a physical page flush (fail / torn + crash)
``disk.read_page``      a physical page fetch (fail)
``txn.commit``          a transaction commit, before the status flip
``txn.abort``           a transaction abort, before the status flip
``maintenance.prepare`` PMV X-lock acquisition, before the base write
``maintenance.apply``   PMV stale-tuple removal, after the base write
``outbox.append``       the transactional-outbox record append, inside
                        the DML latch after the WAL append (crash
                        before / after the record is stored)
``outbox.drain``        the async maintainer applying one feed delta
                        (fail / crash mid-drain)
``ship.send``           a replication transport send (drop / duplicate /
                        reorder / partition)
``wal.enospc``          the pre-statement WAL space probe / segment
                        rotation (ENOSPC: typed DiskFullError refusal)
``disk.full``           the pre-statement page-write space probe and
                        the outbox spill write (ENOSPC refusal)
======================  ====================================================
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "FaultMode",
    "FaultSpec",
    "FaultPlan",
    "SITES",
    "NETWORK_MODES",
    "modes_for_site",
]


class FaultMode(enum.Enum):
    """How a matched fault point fails.

    - ``CRASH_BEFORE`` — the process dies before the operation takes
      effect (nothing durable happened);
    - ``CRASH_AFTER`` — the operation completes durably, then the
      process dies before acknowledging it;
    - ``TORN`` — the operation is cut off partway (a torn WAL tail or a
      torn page image), then the process dies;
    - ``ERROR`` — a recoverable exception
      (:class:`~repro.errors.FaultInjectionError`) is raised; the
      engine must abort the statement cleanly and keep running.

    Network modes (meaningful only at transport sites such as
    ``ship.send``; they model a lossy link, not a dying process):

    - ``DROP`` — the message vanishes in flight;
    - ``DUPLICATE`` — the message is delivered twice;
    - ``REORDER`` — the message is held back and delivered after its
      successors;
    - ``PARTITION`` — the link goes down: this message and everything
      after it is lost until the link is explicitly healed.
    """

    CRASH_BEFORE = "crash_before"
    CRASH_AFTER = "crash_after"
    TORN = "torn"
    ERROR = "error"
    DROP = "drop"
    DUPLICATE = "duplicate"
    REORDER = "reorder"
    PARTITION = "partition"


#: Every fault site with the modes that are meaningful there.  WAL
#: appends have no ERROR mode on purpose: the log is force-at-append,
#: so a failed append *is* a crash (the engine cannot guarantee
#: durability past it) — the same reasoning real systems apply to
#: fsync failure.  Disk faults likewise condemn the instance (the
#: torture driver treats a disk ERROR as fatal), and aborts must be
#: failure-proof, so the abort site only crashes.
SITES: dict[str, tuple[FaultMode, ...]] = {
    "wal.append": (FaultMode.CRASH_BEFORE, FaultMode.TORN, FaultMode.CRASH_AFTER),
    "wal.checkpoint": (FaultMode.ERROR, FaultMode.CRASH_BEFORE),
    "disk.write_page": (FaultMode.ERROR, FaultMode.TORN),
    "disk.read_page": (FaultMode.ERROR,),
    "txn.commit": (FaultMode.CRASH_BEFORE,),
    "txn.abort": (FaultMode.CRASH_BEFORE,),
    "maintenance.prepare": (FaultMode.ERROR, FaultMode.CRASH_BEFORE),
    "maintenance.apply": (FaultMode.ERROR, FaultMode.CRASH_BEFORE),
    # The outbox append has no ERROR mode for the WAL's reason: it runs
    # after the heap and WAL mutations, so a failure cannot abort the
    # statement cleanly — and DELETE/UPDATE log records carry no old
    # row values, so a silently dropped record could never be rebuilt.
    # A failed append is a crash.  The drain, by contrast, has nothing
    # to abort: an ERROR there exercises the fail-safe clear.
    "outbox.append": (FaultMode.CRASH_BEFORE, FaultMode.CRASH_AFTER),
    "outbox.drain": (FaultMode.ERROR, FaultMode.CRASH_BEFORE),
    "ship.send": (
        FaultMode.DROP,
        FaultMode.DUPLICATE,
        FaultMode.REORDER,
        FaultMode.PARTITION,
    ),
    # Disk-full sites fire at the reserve-before-mutate probes, so the
    # only meaningful mode is ERROR: the statement is refused cleanly
    # (a typed DiskFullError) before anything mutates, and because
    # ERROR never disarms the injector, a plan can schedule several
    # consecutive occurrences to model a sustained ENOSPC *window*
    # that later clears (the endurance drill does exactly this).
    "wal.enospc": (FaultMode.ERROR,),
    "disk.full": (FaultMode.ERROR,),
}


#: Modes that model a lossy link rather than a dying process.  The
#: injector must not disarm after one (the "process" is still alive),
#: and transports interpret them in-line instead of raising.
NETWORK_MODES: frozenset[FaultMode] = frozenset(
    {FaultMode.DROP, FaultMode.DUPLICATE, FaultMode.REORDER, FaultMode.PARTITION}
)


def modes_for_site(site: str) -> tuple[FaultMode, ...]:
    """The fault modes meaningful at ``site``."""
    return SITES[site]


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fail at the ``occurrence``-th arrival
    (1-based) at ``site``, in ``mode``."""

    site: str
    occurrence: int
    mode: FaultMode

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based and must be >= 1")
        if self.mode not in SITES[self.site]:
            raise ValueError(
                f"mode {self.mode.value!r} is not meaningful at {self.site!r}"
            )

    def describe(self) -> str:
        """Compact replayable form, e.g. ``wal.append:3:torn``."""
        return f"{self.site}:{self.occurrence}:{self.mode.value}"

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Inverse of :meth:`describe`."""
        site, occurrence, mode = text.rsplit(":", 2)
        return FaultSpec(site, int(occurrence), FaultMode(mode))


class FaultPlan:
    """A reproducible schedule of fault points.

    The common case is a single crash point (one spec); the plan also
    accepts many, which the injector fires independently as their
    occurrence counts are reached.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs = tuple(specs)
        self._by_site: dict[str, dict[int, FaultSpec]] = {}
        for spec in self.specs:
            slot = self._by_site.setdefault(spec.site, {})
            if spec.occurrence in slot:
                raise ValueError(
                    f"duplicate fault point {spec.site}:{spec.occurrence}"
                )
            slot[spec.occurrence] = spec

    @classmethod
    def crash_at(
        cls, site: str, occurrence: int = 1, mode: FaultMode | None = None
    ) -> "FaultPlan":
        """A single-fault plan (the sweep's unit of work)."""
        if mode is None:
            mode = SITES[site][0]
        return cls([FaultSpec(site, occurrence, mode)])

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan — used by the enumeration pass, which only
        counts how often each site is reached."""
        return cls()

    def match(self, site: str, occurrence: int) -> FaultSpec | None:
        return self._by_site.get(site, {}).get(occurrence)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs) or "<no faults>"

    # -- (de)serialization for replay files --------------------------------

    def to_json(self) -> str:
        return json.dumps([spec.describe() for spec in self.specs])

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan([FaultSpec.parse(item) for item in json.loads(text)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.describe()})"
