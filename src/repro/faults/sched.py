"""Deterministic interleaving scheduler for concurrency testing.

Python threads interleave wherever the OS pleases, so a protocol race
observed once may never reproduce.  This module pins the interleaving
down the same way :mod:`repro.faults.plan` pins crashes down: a seeded
schedule driven through explicit seams.

The model is **cooperative single-token scheduling**: of the registered
worker threads, exactly one — the token holder — runs at a time; all
others are parked on per-thread events.  At every *switch point* (the
lock manager's acquire entry, the executor's O2/O3 boundaries) the
running thread offers the token back, and a ``random.Random(seed)``
picks the successor from the *runnable* set.  Because the lock manager
reports blocking and granting synchronously (``block``/``unblock``
happen inside the releaser, before the waiter's event fires), the
runnable set at each decision point is a pure function of the seed and
the workload — NOT of OS timing.  Replaying the same seed replays the
same interleaving, decision for decision; the recorded ``trace`` makes
that checkable.

The scheduler deliberately has no opinion about real time: a thread
that blocks on a lock still arms its real timeout, so a schedule that
manufactures a genuine deadlock (e.g. a dual S→X upgrade) is resolved
by the lock manager's :class:`~repro.errors.DeadlockError` exactly as
in production.  The window between a timeout firing and the timed-out
thread re-entering the runnable set is the one place wall-clock can
leak in — bounded workloads that do not time out are fully
deterministic.

Wiring: ``Database.install_scheduler(sched)`` shares the scheduler
with the lock manager; :meth:`InterleavingScheduler.spawn` wraps a
worker callable so registration order (and thus thread identity in the
schedule) is the driver's explicit choice, never thread-start timing.
"""

from __future__ import annotations

import random
import threading
from typing import Callable

__all__ = ["InterleavingScheduler", "SchedDeadlock"]


class SchedDeadlock(RuntimeError):
    """Every registered thread is blocked and none can be granted."""


class _Worker:
    """Scheduler-side state of one registered thread."""

    __slots__ = ("name", "index", "event", "state", "ident")

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index
        self.event = threading.Event()
        self.state = "runnable"  # runnable | blocked | finished
        self.ident: int | None = None  # bound when the thread starts


class InterleavingScheduler:
    """Seeded cooperative scheduler over explicitly registered threads.

    Usage::

        sched = InterleavingScheduler(seed=7)
        db.install_scheduler(sched)
        threads = [sched.spawn(f"w{i}", work, i) for i in range(4)]
        for t in threads: t.start()
        sched.launch()
        for t in threads: t.join()
        db.install_scheduler(None)

    Threads the scheduler has never registered (the pytest main thread,
    unrelated pools) pass through every seam as no-ops, so installing a
    scheduler never perturbs unmanaged code.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._mutex = threading.Lock()
        self._workers: list[_Worker] = []
        self._by_name: dict[str, _Worker] = {}
        self._by_ident: dict[int, _Worker] = {}
        self._current: _Worker | None = None
        self._launched = False
        self.trace: list[str] = []
        self.decisions = 0
        self.deadlocks_seen = 0

    # -- driver API ---------------------------------------------------------

    def register(self, name: str) -> None:
        """Register a worker under a stable name (driver thread only).

        Registration order — not thread-start timing — defines the
        index the seeded RNG sees, which is what makes two runs of the
        same seed pick the same threads.
        """
        with self._mutex:
            if self._launched:
                raise RuntimeError("cannot register after launch()")
            if name in self._by_name:
                raise ValueError(f"duplicate scheduler thread name {name!r}")
            worker = _Worker(name, len(self._workers))
            self._workers.append(worker)
            self._by_name[name] = worker

    def spawn(
        self, name: str, target: Callable, *args, **kwargs
    ) -> threading.Thread:
        """Register ``name`` and build its (unstarted) worker thread.

        The wrapper parks at entry until the scheduler grants the first
        token and always announces completion, even on exceptions — a
        crashed worker must leave the schedule, not wedge it.
        """
        self.register(name)

        def run() -> None:
            self._enter(name)
            try:
                target(*args, **kwargs)
            finally:
                self._finish()

        return threading.Thread(target=run, name=f"sched-{name}", daemon=True)

    def launch(self) -> None:
        """Grant the first token (after every worker thread started)."""
        with self._mutex:
            self._launched = True
            self._grant_next("launch")

    # -- seams called by managed threads ------------------------------------

    def switch(self, site: str) -> None:
        """A potential preemption point: offer the token back.

        The seeded RNG picks the next runnable worker (possibly the
        caller again).  No-op for unmanaged threads.
        """
        me = self._by_ident.get(threading.get_ident())
        if me is None:
            return
        with self._mutex:
            # self is runnable and may be re-chosen: that is the
            # "no switch" outcome, with the same probability weight as
            # any other successor.
            chosen = self._choose(site)
            if chosen is me:
                return
            self._current = chosen
            chosen.event.set()
        self._park(me)

    def block(self, site: str) -> None:
        """The caller is about to wait (lock queue): leave the runnable
        set and pass the token on.  Paired with :meth:`resume`."""
        me = self._by_ident.get(threading.get_ident())
        if me is None:
            return
        with self._mutex:
            me.state = "blocked"
            self._grant_next(site)

    def resume(self) -> None:
        """The caller's wait ended (granted or timed out): re-enter the
        schedule, taking the token when it is free or parking until
        granted."""
        me = self._by_ident.get(threading.get_ident())
        if me is None:
            return
        with self._mutex:
            me.state = "runnable"
            if self._current is None:
                # Token was abandoned (everyone blocked): seize it.
                self._current = me
                return
            if self._current is me:
                # A releaser already granted this thread the token
                # (unblock -> next decision picked it).  Consume the
                # pending grant signal so a later park does not see a
                # stale event and run without the token.
                me.event.clear()
                return
        self._park(me)

    def unblock(self, ident: int) -> None:
        """A releaser granted ``ident``'s lock request: mark it runnable
        *synchronously in the releaser* so the runnable set at the next
        decision point does not depend on when the OS wakes the waiter."""
        worker = self._by_ident.get(ident)
        if worker is None:
            return
        with self._mutex:
            if worker.state == "blocked":
                worker.state = "runnable"

    # -- worker lifecycle (called from inside spawn's wrapper) --------------

    def _enter(self, name: str) -> None:
        worker = self._by_name[name]
        worker.ident = threading.get_ident()
        self._by_ident[worker.ident] = worker
        self._park(worker)

    def _finish(self) -> None:
        me = self._by_ident.get(threading.get_ident())
        if me is None:
            return
        with self._mutex:
            me.state = "finished"
            if self._current is me:
                self._grant_next("finish")

    # -- internals ----------------------------------------------------------

    def _park(self, worker: _Worker) -> None:
        worker.event.wait()
        worker.event.clear()

    def _runnable(self) -> list[_Worker]:
        return [w for w in self._workers if w.state == "runnable"]

    def _choose(self, site: str) -> _Worker:
        """Pick the next worker (mutex held, caller still runnable)."""
        candidates = self._runnable()
        chosen = candidates[self._rng.randrange(len(candidates))]
        self.decisions += 1
        self.trace.append(f"{self.decisions}:{site}->{chosen.name}")
        return chosen

    def _grant_next(self, site: str) -> None:
        """Hand the token to a runnable worker, or abandon it (mutex
        held; the caller is no longer runnable)."""
        candidates = self._runnable()
        if not candidates:
            self._current = None
            if any(w.state == "blocked" for w in self._workers):
                # Everyone still alive is waiting on a lock.  Real lock
                # timeouts (the deadlock-resolution policy) will fire
                # and the timed-out thread's resume() re-seizes the
                # token; record that the schedule hit this state.
                self.deadlocks_seen += 1
                self.trace.append(f"{self.decisions}:{site}->DEADLOCK")
            return
        chosen = candidates[self._rng.randrange(len(candidates))]
        self.decisions += 1
        self.trace.append(f"{self.decisions}:{site}->{chosen.name}")
        self._current = chosen
        chosen.event.set()

    # -- inspection ---------------------------------------------------------

    def handle(self) -> str:
        """Replay handle, torture-harness style: ``sched/<seed>``."""
        return f"sched/{self.seed}"

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "decisions": self.decisions,
                "deadlocks_seen": self.deadlocks_seen,
                "threads": len(self._workers),
            }
