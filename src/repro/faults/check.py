"""Recovery and consistency invariant checkers.

The torture harness's oracle.  After every simulated crash (or injected
recoverable fault) these checks assert that the WAL, heap, indexes, and
PMV layer still agree:

- :func:`verify_database` — heap/index agreement: every live row is
  reachable through every index on its relation, and no index holds
  dangling entries;
- :func:`check_view_against_database` — no phantom cached tuples:
  every tuple a PMV would serve is a *current* true result of its
  template (recomputed from the base relations), the F and UB bounds
  hold, and the auxiliary indexes cover exactly the cached tuples;
- :func:`verify_crash_recovery` — atomic, durable statements: the
  recovered database equals the pre-crash acknowledged state, except
  possibly for the single statement that was in flight when the crash
  hit (which must be applied entirely or not at all).

Violations raise :class:`InvariantViolation` with enough context to
replay the failure (the torture driver attaches seed and fault spec).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.maintenance import compute_delta_join
from repro.core.view import PartialMaterializedView
from repro.engine.database import Database
from repro.errors import ReproError

__all__ = [
    "InvariantViolation",
    "contents_of",
    "verify_database",
    "check_view_against_database",
    "verify_crash_recovery",
]


class InvariantViolation(ReproError):
    """A recovery/consistency invariant does not hold — a divergence
    the torture harness reports with its replay seed."""


def contents_of(
    database: Database, relations: Sequence[str] | None = None
) -> dict[str, list[tuple]]:
    """Logical table contents: relation name -> sorted value tuples.

    Physical addressing is checked separately; two databases with equal
    ``contents_of`` hold the same rows.
    """
    if relations is None:
        relations = [r.name for r in database.catalog.relations()]
    out: dict[str, list[tuple]] = {}
    for name in relations:
        relation = database.catalog.relation(name)
        out[name] = sorted(
            (tuple(row.values) for row in relation.scan_rows()),
            key=repr,
        )
    return out


def verify_database(database: Database) -> None:
    """Heap/index agreement for every relation.

    Every live row must be reachable through every index on its
    relation (probe its key, find its row id), and each index's entry
    count must equal the relation's row count — together these rule
    out both missing and dangling index entries.
    """
    for relation in database.catalog.relations():
        indexes = list(database.catalog.indexes_on(relation.name))
        row_count = 0
        for row_id, row in relation.scan():
            row_count += 1
            fetched = relation.fetch(row_id)
            if tuple(fetched.values) != tuple(row.values):
                raise InvariantViolation(
                    f"{relation.name}: scan and fetch disagree at {row_id}"
                )
            for index in indexes:
                if row_id not in index.probe(index.key_of(row)):
                    raise InvariantViolation(
                        f"index {index.name}: live row {row_id} of "
                        f"{relation.name} is not reachable via its key"
                    )
        if relation.row_count != row_count:
            raise InvariantViolation(
                f"{relation.name}: row_count {relation.row_count} != "
                f"scanned {row_count}"
            )
        for index in indexes:
            if index.entry_count != row_count:
                raise InvariantViolation(
                    f"index {index.name}: {index.entry_count} entries for "
                    f"{row_count} rows (dangling or missing entries)"
                )


def _true_result_multiset(
    database: Database, view: PartialMaterializedView
) -> dict[tuple, int]:
    """The template's full current result (the containing MV), as a
    counting multiset of value tuples — recomputed from scratch so it
    cannot share a bug with the maintenance path being checked."""
    template = view.template
    driver = template.relations[0]
    truth: dict[tuple, int] = {}
    for row in database.catalog.relation(driver).scan_rows():
        for result in compute_delta_join(database, template, driver, row):
            key = tuple(result.values)
            truth[key] = truth.get(key, 0) + 1
    return truth


def check_view_against_database(
    database: Database, view: PartialMaterializedView, allow_stale: bool = False
) -> None:
    """No stale PMV state: probe every resident bcp and compare its
    cached tuples against the full-query reference.

    Checks, in order: the view's own structural invariants; that every
    cached tuple is a current true result (no phantom/deleted tuples
    served); the UB byte budget; and that the auxiliary indexes cover
    exactly the cached tuples (so AUX_INDEX maintenance cannot miss a
    future delete).

    ``allow_stale`` skips *only* the phantom check: an async-maintained
    view whose applied-LSN watermark trails the outbox high-watermark
    legitimately caches tuples the current state no longer derives
    (DESIGN.md §13) — its structural, UB, and aux-coverage invariants
    must still hold.  Callers must pass it only while the view is
    intentionally behind the feed; a converged view gets the strict
    check.
    """
    view.check_invariants()
    cached: dict[tuple, int] = {}
    total_rows = 0
    for key, rows in view.entries():
        for row in rows:
            values = tuple(row.values)
            cached[values] = cached.get(values, 0) + 1
            total_rows += 1
    if not allow_stale:
        truth = _true_result_multiset(database, view)
        for values, count in cached.items():
            if count > truth.get(values, 0):
                raise InvariantViolation(
                    f"{view.name}: cached tuple {values!r} x{count} exceeds its "
                    f"true multiplicity {truth.get(values, 0)} — a phantom "
                    f"(deleted/updated) tuple would be served"
                )
    if (
        view.upper_bound_bytes is not None
        and view.entry_count > 1
        and view.current_bytes > view.upper_bound_bytes
    ):
        raise InvariantViolation(
            f"{view.name}: {view.current_bytes}B exceeds UB "
            f"{view.upper_bound_bytes}B"
        )
    for column in view.aux_index_columns:
        covered = 0
        for value, bucket in view._aux[column].items():
            for key, count in bucket.items():
                rows = view.lookup(key)
                if rows is None:
                    raise InvariantViolation(
                        f"{view.name}: aux index on {column!r} points at "
                        f"non-resident bcp {key!r}"
                    )
                matching = sum(1 for row in rows if row[column] == value)
                if matching != count:
                    raise InvariantViolation(
                        f"{view.name}: aux index on {column!r} counts {count} "
                        f"tuples with value {value!r} in {key!r}, entry holds "
                        f"{matching}"
                    )
                covered += count
        if covered != total_rows:
            raise InvariantViolation(
                f"{view.name}: aux index on {column!r} covers {covered} of "
                f"{total_rows} cached tuples"
            )


def verify_crash_recovery(
    recovered: Database,
    acked: dict[str, list[tuple]],
    acked_plus_inflight: dict[str, list[tuple]] | None = None,
) -> None:
    """Atomicity + durability after a crash.

    ``acked`` is the logical contents after every acknowledged
    statement; ``acked_plus_inflight`` additionally applies the single
    statement that was in flight when the crash hit (None when there
    was none, or when it had no data effect).  The recovered database
    must equal one of the two — anything else lost an acknowledged
    statement or applied a partial one.
    """
    verify_database(recovered)
    actual = contents_of(recovered, sorted(acked))
    if actual == acked:
        return
    if acked_plus_inflight is not None and actual == acked_plus_inflight:
        return
    detail = []
    for name in sorted(acked):
        if actual.get(name) != acked[name]:
            detail.append(
                f"{name}: recovered {len(actual.get(name, []))} rows, "
                f"acked {len(acked[name])}"
            )
    raise InvariantViolation(
        "recovered state matches neither the acknowledged state nor "
        "acknowledged+in-flight: " + "; ".join(detail or ["row values differ"])
    )
