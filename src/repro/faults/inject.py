"""Fault injection: wiring a :class:`~repro.faults.plan.FaultPlan`
into the engine.

The pieces:

- :class:`SimulatedCrash` — the "process died here" signal.  It
  derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
  no ``except Exception`` cleanup handler in the engine can intercept
  it: a crash does not get to run abort paths, which is exactly the
  property the recovery code must survive.
- :class:`FaultInjector` — counts arrivals at each fault site and
  fires the plan's scheduled faults.  After any crash-mode fault it
  disarms, so ``finally`` blocks running during the unwind cannot
  trigger secondary faults.
- :class:`FaultyWAL` — a :class:`~repro.engine.wal.WriteAheadLog`
  whose ``append`` can crash before the write, crash after it, or tear
  the record partway (a half-written final line with no newline —
  the torn tail :meth:`WriteAheadLog.load` must tolerate).
- :class:`FaultyDiskManager` — a disk whose page transfers can fail
  (``ERROR``) or tear a page image and crash (``TORN``).
- :func:`build_faulty_database` — a :class:`Database` with all of the
  above installed plus the ``fault_hook`` sites in transactions and
  PMV maintenance.
"""

from __future__ import annotations

import os

from repro.engine.database import Database
from repro.engine.disk import DiskManager
from repro.engine.page import Page
from repro.engine.wal import LogKind, LogRecord, WriteAheadLog
from repro.errors import FaultInjectionError
from repro.faults.plan import NETWORK_MODES, FaultMode, FaultPlan, FaultSpec

__all__ = [
    "SimulatedCrash",
    "FaultInjector",
    "FaultyWAL",
    "FaultyDiskManager",
    "build_faulty_database",
]


class SimulatedCrash(BaseException):
    """The simulated process death.

    Deliberately NOT a :class:`~repro.errors.ReproError` (nor even an
    :class:`Exception`): engine code that catches ``Exception`` to
    abort a statement cleanly must not be able to "handle" a crash.
    The torture driver catches it at the very top, throws the live
    database away, and recovers from the on-disk log — the same thing
    an operator's restart does.
    """

    def __init__(self, spec: FaultSpec) -> None:
        super().__init__(f"simulated crash at {spec.describe()}")
        self.spec = spec


class FaultInjector:
    """Counts fault-site arrivals and fires the plan's faults.

    One injector instance is threaded through a single simulated
    process lifetime.  ``counts`` doubles as the enumeration output:
    run a workload with an empty plan and read how many fault points
    each site offers.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan.none()
        self.counts: dict[str, int] = {}
        self.fired: list[FaultSpec] = []
        self.crashed = False

    def check(self, site: str) -> FaultSpec | None:
        """Count one arrival at ``site``; return the scheduled fault if
        this arrival matches one, for the caller to interpret (sites
        with torn semantics need to do their own partial write)."""
        if self.crashed:
            # The process is already dying; ``finally`` blocks running
            # during the unwind must not trigger secondary faults.
            return None
        arrival = self.counts.get(site, 0) + 1
        self.counts[site] = arrival
        spec = self.plan.match(site, arrival)
        if spec is not None:
            self.fired.append(spec)
            if spec.mode is not FaultMode.ERROR and spec.mode not in NETWORK_MODES:
                # Network modes model a lossy link, not a dying
                # process — the injector stays armed after them.
                self.crashed = True
        return spec

    def fire(self, site: str) -> None:
        """Hook form of :meth:`check`: raise the matched fault.

        This is the callable installed as ``Database.fault_hook`` —
        generic sites (transactions, PMV maintenance) have no partial
        state to tear, so ERROR raises and every crash mode simply
        crashes.
        """
        spec = self.check(site)
        if spec is None:
            return
        if spec.mode is FaultMode.ERROR:
            raise FaultInjectionError(
                f"injected fault at {spec.describe()}",
                site=spec.site,
                occurrence=spec.occurrence,
            )
        raise SimulatedCrash(spec)

    @property
    def total_arrivals(self) -> int:
        return sum(self.counts.values())


class FaultyWAL(WriteAheadLog):
    """A write-ahead log with an injectable ``append``/``checkpoint``.

    The three crash windows of one append:

    - ``CRASH_BEFORE`` — nothing reached the file: the statement never
      happened;
    - ``TORN`` — a prefix of the record's JSON line reached the file
      (no newline, no complete fsync): recovery must treat it as "never
      happened" and :meth:`WriteAheadLog.repair` must cut it off;
    - ``CRASH_AFTER`` — the record is durable but the statement was
      never acknowledged: recovery must replay it.
    """

    def __init__(self, injector: FaultInjector, path: str | None = None) -> None:
        super().__init__(path)
        self.injector = injector

    def append(self, kind: LogKind, payload: dict) -> LogRecord:
        spec = self.injector.check("wal.append")
        if spec is None:
            return super().append(kind, payload)
        if spec.mode is FaultMode.CRASH_BEFORE:
            raise SimulatedCrash(spec)
        if spec.mode is FaultMode.TORN:
            # Write a strict prefix of the line — the crash happened
            # mid-write, so neither the full record nor its newline is
            # durable.  The in-memory record list is NOT updated: this
            # process is dead and only the file survives.
            record = LogRecord(lsn=self._next_lsn, kind=kind, payload=payload)
            text = record.to_json()
            cut = max(1, len(text) // 2)
            if self._file is not None:
                self._file.write(text[:cut])
                self._file.flush()
                os.fsync(self._file.fileno())
            raise SimulatedCrash(spec)
        # CRASH_AFTER: the append completes durably, then the process
        # dies before the caller hears about it.
        super().append(kind, payload)
        raise SimulatedCrash(spec)

    def checkpoint(self) -> LogRecord:
        spec = self.injector.check("wal.checkpoint")
        if spec is not None:
            if spec.mode is FaultMode.ERROR:
                raise FaultInjectionError(
                    f"injected fault at {spec.describe()}",
                    site=spec.site,
                    occurrence=spec.occurrence,
                )
            raise SimulatedCrash(spec)
        return super().checkpoint()


class FaultyDiskManager(DiskManager):
    """A disk manager whose physical transfers can fail.

    - ``disk.write_page`` ``ERROR`` — the flush fails with an I/O
      error.  Like a real fsync failure, this condemns the instance
      (the torture driver stops the workload and recovers from the
      WAL; it does not limp on with a page of unknown state).
    - ``disk.write_page`` ``TORN`` — half the page image is lost, then
      the process dies.  Recovery replays the log into a fresh heap,
      so the torn image must be invisible afterwards.
    - ``disk.read_page`` ``ERROR`` — the fetch fails (unreadable
      sector).
    """

    def __init__(self, injector: FaultInjector, page_size: int | None = None) -> None:
        if page_size is None:
            super().__init__()
        else:
            super().__init__(page_size=page_size)
        self.injector = injector

    def _store(self, page: Page) -> None:
        spec = self.injector.check("disk.write_page")
        if spec is None:
            return
        if spec.mode is FaultMode.ERROR:
            raise FaultInjectionError(
                f"injected fault at {spec.describe()}",
                site=spec.site,
                occurrence=spec.occurrence,
            )
        # TORN: the tail of the slot directory never hit the platter.
        tear_page(page)
        raise SimulatedCrash(spec)

    def _fetch(self, page_no: int) -> Page:
        spec = self.injector.check("disk.read_page")
        if spec is not None:
            raise FaultInjectionError(
                f"injected fault at {spec.describe()}",
                site=spec.site,
                occurrence=spec.occurrence,
            )
        return super()._fetch(page_no)


def tear_page(page: Page) -> None:
    """Destroy the second half of a page's slots in place, simulating a
    torn (partially persisted) page write."""
    half = len(page._slots) // 2
    for position in range(half, len(page._slots)):
        if page._slots[position] is not None:
            page._slots[position] = None
            page._sizes[position] = 0


def build_faulty_database(
    injector: FaultInjector,
    wal_path: str,
    buffer_pool_pages: int = 32,
    page_size: int = 1024,
) -> Database:
    """A :class:`Database` with every fault site armed.

    Small defaults on purpose: a tiny buffer pool forces evictions (so
    ``disk.write_page`` fires outside checkpoints too) and small pages
    spread rows over many of them.
    """
    wal = FaultyWAL(injector, wal_path)
    disk = FaultyDiskManager(injector, page_size=page_size)
    database = Database(
        buffer_pool_pages=buffer_pool_pages,
        page_size=page_size,
        wal=wal,
        disk=disk,
    )
    database.fault_hook = injector.fire
    # Disk-full probes: the pre-statement reserve checks fire the
    # "wal.enospc" / "disk.full" sites through the same arrival
    # counter, so ENOSPC refusal windows are schedulable and
    # enumerable like every other fault point.
    wal.fault_check = injector.check
    disk.fault_check = injector.check
    return database
