"""Deterministic fault injection and crash-recovery checking.

The subsystem the crash-recovery torture harness
(:mod:`repro.bench.torture`) drives:

- :mod:`repro.faults.plan` — seeded, replayable fault schedules
  (:class:`FaultPlan`, :class:`FaultSpec`, :class:`FaultMode`);
- :mod:`repro.faults.inject` — the injector and the faulty engine
  components (:class:`FaultyWAL`, :class:`FaultyDiskManager`,
  :class:`SimulatedCrash`);
- :mod:`repro.faults.check` — the recovery invariant checkers
  (:func:`verify_database`, :func:`check_view_against_database`,
  :func:`verify_crash_recovery`);
- :mod:`repro.faults.sched` — the seeded cooperative thread scheduler
  (:class:`InterleavingScheduler`) that makes concurrent protocol
  races replayable, driven by :mod:`repro.bench.stress`;
- :mod:`repro.faults.partition` — seeded network-partition schedules
  (:class:`PartitionPlan`, :class:`Nemesis`) over the cluster's link
  seams, driven by :mod:`repro.bench.nemesis`.

Production code paths pay for none of this: the hooks are ``None``
checks, and the faulty components are opt-in subclasses.
"""

from repro.faults.check import (
    InvariantViolation,
    check_view_against_database,
    contents_of,
    verify_crash_recovery,
    verify_database,
)
from repro.faults.inject import (
    FaultInjector,
    FaultyDiskManager,
    FaultyWAL,
    SimulatedCrash,
    build_faulty_database,
)
from repro.faults.partition import (
    PARTITION_LINKS,
    Nemesis,
    PartitionEvent,
    PartitionPlan,
)
from repro.faults.plan import SITES, FaultMode, FaultPlan, FaultSpec, modes_for_site
from repro.faults.sched import InterleavingScheduler, SchedDeadlock

__all__ = [
    "Nemesis",
    "PartitionEvent",
    "PartitionPlan",
    "PARTITION_LINKS",
    "InterleavingScheduler",
    "SchedDeadlock",
    "FaultMode",
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "modes_for_site",
    "FaultInjector",
    "FaultyWAL",
    "FaultyDiskManager",
    "SimulatedCrash",
    "build_faulty_database",
    "InvariantViolation",
    "check_view_against_database",
    "contents_of",
    "verify_crash_recovery",
    "verify_database",
]
