"""Seeded, replayable network-partition schedules (the nemesis).

A :class:`PartitionPlan` is the partition analogue of
:class:`~repro.faults.plan.FaultPlan`: a deterministic list of
:class:`PartitionEvent` entries — "at driver step N, cut (or heal)
this directed link" — generated from a seed, serializable to a compact
``SCHEDULE`` handle, and replayable bit-for-bit.  The
:class:`Nemesis` executes the plan against whatever link seams the
harness registers:

======================  ====================================================
``coord-primary``       the heartbeat/lease control link
                        (:class:`~repro.replication.lease.ControlLink`) —
                        cutting ``up`` hides the primary from the
                        coordinator, cutting ``down`` starves the
                        primary of lease renewals
``primary-replica``     the WAL shipping link
                        (:class:`~repro.replication.ship.ReplicationLink`
                        ``partitioned`` seam)
``client-server``       the TCP serving edge
                        (:class:`~repro.net.server.NetServer`'s
                        ``refuse_connections`` hook plus
                        ``drop_connections()``)
======================  ====================================================

Every generated plan ends with a *quiesce tail*: all links healed for
the final stretch of the run, so the history checker can also assert
the cluster converges (acked writes present, lag drains) rather than
merely that it never lied mid-chaos.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

__all__ = ["PARTITION_LINKS", "PartitionEvent", "PartitionPlan", "Nemesis"]

#: The directed link pairs a plan may cut.
PARTITION_LINKS: tuple[str, ...] = (
    "coord-primary",
    "primary-replica",
    "client-server",
)

_ACTIONS = ("cut", "heal")
_DIRECTIONS = ("both", "up", "down")


@dataclass(frozen=True)
class PartitionEvent:
    """One scheduled link transition at a driver step (0-based)."""

    step: int
    action: str
    link: str
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("step must be >= 0")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")
        if self.link not in PARTITION_LINKS:
            raise ValueError(f"unknown link {self.link!r}")
        if self.direction not in _DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}")

    def describe(self) -> str:
        """Compact replayable form, e.g. ``12:cut:coord-primary:up``."""
        return f"{self.step}:{self.action}:{self.link}:{self.direction}"

    @staticmethod
    def parse(text: str) -> "PartitionEvent":
        """Inverse of :meth:`describe`."""
        step, action, link, direction = text.split(":")
        return PartitionEvent(int(step), action, link, direction)


class PartitionPlan:
    """A deterministic schedule of cut/heal events over driver steps."""

    def __init__(self, events: Iterable[PartitionEvent] = ()) -> None:
        self.events = tuple(sorted(events, key=lambda e: (e.step, e.link, e.action)))

    @classmethod
    def generate(
        cls,
        seed: int,
        steps: int,
        links: Iterable[str] = PARTITION_LINKS,
        min_cut: int = 3,
        max_cut: int = 12,
        min_gap: int = 2,
        max_gap: int = 8,
        quiesce: int = 10,
    ) -> "PartitionPlan":
        """A seeded schedule over a ``steps``-long run.

        Each link independently alternates healthy gaps and cut
        windows (sometimes asymmetric — one direction only), with no
        event landing inside the final ``quiesce`` steps: the run
        always ends fully healed long enough to converge.
        """
        if steps <= quiesce:
            raise ValueError("steps must exceed the quiesce tail")
        rng = random.Random(f"partition:{seed}")
        horizon = steps - quiesce
        events: list[PartitionEvent] = []
        for link in links:
            at = rng.randint(min_gap, max_gap)
            while at < horizon:
                # Asymmetric cuts only make sense on the directed
                # control link; the other seams are all-or-nothing.
                direction = (
                    rng.choice(("both", "both", "up", "down"))
                    if link == "coord-primary"
                    else "both"
                )
                heal_at = min(horizon, at + rng.randint(min_cut, max_cut))
                events.append(PartitionEvent(at, "cut", link, direction))
                events.append(PartitionEvent(heal_at, "heal", link, "both"))
                at = heal_at + rng.randint(min_gap, max_gap)
        return cls(events)

    def due(self, step: int) -> tuple[PartitionEvent, ...]:
        """The events scheduled exactly at ``step``."""
        return tuple(event for event in self.events if event.step == step)

    def __iter__(self) -> Iterator[PartitionEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def describe(self) -> str:
        """The replayable ``SCHEDULE`` handle."""
        return ",".join(event.describe() for event in self.events) or "<no events>"

    @staticmethod
    def parse(text: str) -> "PartitionPlan":
        """Inverse of :meth:`describe`."""
        if text == "<no events>":
            return PartitionPlan()
        return PartitionPlan(
            PartitionEvent.parse(item) for item in text.split(",") if item
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitionPlan({self.describe()})"


class Nemesis:
    """Executes a :class:`PartitionPlan` against registered link seams.

    The harness registers each link by name with a ``cut(direction)``
    and ``heal(direction)`` callable; :meth:`advance_to` then fires
    every not-yet-fired event whose step has been reached — the driver
    calls it once per step, so the schedule is exact regardless of how
    the driver paces its work.
    """

    def __init__(self, plan: PartitionPlan) -> None:
        self.plan = plan
        self._links: dict[str, tuple[Callable[[str], None], Callable[[str], None]]] = {}
        self._cursor = 0
        self.fired: list[PartitionEvent] = []

    def register(
        self,
        link: str,
        cut: Callable[[str], None],
        heal: Callable[[str], None],
    ) -> None:
        if link not in PARTITION_LINKS:
            raise ValueError(f"unknown link {link!r}")
        self._links[link] = (cut, heal)

    def advance_to(self, step: int) -> list[PartitionEvent]:
        """Fire every pending event scheduled at or before ``step``."""
        fired: list[PartitionEvent] = []
        while self._cursor < len(self.plan.events):
            event = self.plan.events[self._cursor]
            if event.step > step:
                break
            self._cursor += 1
            self._fire(event)
            fired.append(event)
        return fired

    def _fire(self, event: PartitionEvent) -> None:
        seam = self._links.get(event.link)
        if seam is None:  # link not wired in this harness: a no-op
            return
        cut, heal = seam
        (cut if event.action == "cut" else heal)(event.direction)
        self.fired.append(event)

    def heal_all(self) -> None:
        """Force every registered link healthy (end-of-run cleanup)."""
        for _cut, heal in self._links.values():
            heal("both")

    def stats(self) -> dict:
        return {
            "scheduled": len(self.plan),
            "fired": len(self.fired),
            "schedule": self.plan.describe(),
        }
