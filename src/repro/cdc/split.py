"""Heavy-light splitting: which changes stay on the eager path.

Abo-Khamis et al. maintain queries under updates by partitioning keys
into *heavy* (maintained eagerly, they are read constantly) and *light*
(batched, the long tail).  Here the unit is the condition part: a
base-relation change whose ``Cselect`` attribute values fall in a
designated hot set is applied to the PMV at write time (the classic
X-lock path), everything else rides the outbox feed and is applied by
the background drain.

Hot sets come from the operator (``hot_parts``) or from popularity:
:meth:`HeavyLightSplitter.from_residency` designates every condition
part the view's replacement policy currently keeps resident — the
policy's reference-based retention *is* the popularity signal.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.engine.template import SlotForm
from repro.engine.transactions import Change

__all__ = ["HeavyLightSplitter"]


class HeavyLightSplitter:
    """Classifies one base-relation change as hot (eager) or cold (async).

    ``hot_parts`` maps a qualified slot column (``"r.f"``) to the raw
    attribute values considered hot.  ``default_hot`` is the verdict
    when no hot set is configured for any slot of the changed relation
    (``True`` degenerates to fully-eager maintenance, ``False`` to
    fully-async).
    """

    def __init__(
        self,
        hot_parts: Mapping[str, Iterable[Any]] | None = None,
        default_hot: bool = False,
    ) -> None:
        self.hot_values: dict[str, set[Any]] = {
            column: set(values) for column, values in (hot_parts or {}).items()
        }
        # Columns whose hot set is expressed in bcp-key component space
        # (basic-interval ids for interval slots) rather than raw
        # attribute values — the residency-derived case.
        self._component_space: set[str] = set()
        self.default_hot = default_hot

    @classmethod
    def from_residency(cls, view) -> "HeavyLightSplitter":
        """Popularity designation: hot = the view's resident bcps.

        The replacement policy keeps the most-referenced condition
        parts resident, so the resident key set is exactly the
        popularity-ranked head.  Non-resident parts hold no cached
        tuples the eager path could protect anyway.
        """
        slots = view.template.slots
        per_column: dict[str, set[Any]] = {slot.column: set() for slot in slots}
        with view.latch:
            keys = [key for key, _ in view.entry_values()]
        for key in keys:
            for slot, component in zip(slots, key):
                per_column[slot.column].add(component)
        splitter = cls({c: v for c, v in per_column.items() if v})
        # Residency keys store interval slots as basic-interval ids.
        splitter._component_space = {
            slot.column for slot in slots if slot.form is SlotForm.INTERVAL
        }
        return splitter

    def is_hot(self, change: Change, view) -> bool:
        """True when the change touches a hot condition part of ``view``.

        Reads the *old* row (deletes/updates maintain by removing
        derivations of the old values; inserts never reach here).
        """
        row = change.old_row if change.old_row is not None else change.new_row
        if row is None:
            return self.default_hot
        saw_hot_set = False
        for slot in view.template.slots:
            if slot.relation != change.relation:
                continue
            hot = self.hot_values.get(slot.column)
            if not hot:
                continue
            saw_hot_set = True
            value = row[slot.column.split(".", 1)[1]]
            if slot.column in self._component_space:
                value = view.discretization.grid(slot.column).id_for_value(value)
            if value in hot:
                return True
        if saw_hot_set:
            return False
        return self.default_hot
