"""The background drain: LSN-ordered async application of the feed.

An :class:`AsyncMaintainer` owns one :class:`~repro.cdc.outbox.ChangeOutbox`
and a set of registered views.  Registration flips the view's
maintainer into *async mode*: relevant changes stop taking the X lock
on the write path (unless the heavy-light splitter routes them eager)
and are instead applied here, one feed record at a time, oldest first.

Lock discipline mirrors a writing statement, in the mandatory order:
the drain takes the view's X lock **first** (through the maintainer's
breaker-gated :meth:`~repro.core.maintenance.PMVMaintainer._acquire_x`,
so an open circuit breaker collapses it to a single no-wait attempt),
and only then enters the statement latch to mutate the view.  A lock
denial requeues the record at the feed head and yields — the next
drain retries it, and ``applied_views`` guarantees the retry never
applies a delta twice.

Watermark rules (DESIGN.md §13):

- ``view.applied_lsn`` advances to a record's LSN once the record is
  applied to (or provably irrelevant for) that view — records are
  drained oldest-first, so the watermark is monotone;
- a fail-safe clear (organic apply failure) empties the view, and the
  empty subset is correct *as of now*: the watermark jumps to the
  current LSN;
- after a crash, views restart empty and a fresh feed starts at the
  recovered WAL end — nothing to replay, staleness zero by
  construction.
"""

from __future__ import annotations

import threading

from repro.cdc.outbox import ChangeOutbox, OutboxRecord
from repro.cdc.split import HeavyLightSplitter
from repro.core.maintenance import PMVMaintainer
from repro.engine.database import Database
from repro.errors import LockError, MaintenanceError

__all__ = ["AsyncMaintainer"]


class AsyncMaintainer:
    """Drains the change feed and applies deltas to registered views."""

    def __init__(
        self,
        database: Database,
        outbox: ChangeOutbox | None = None,
        splitter: HeavyLightSplitter | None = None,
        drain_batch: int = 1,
    ) -> None:
        self.database = database
        if outbox is None:
            outbox = database.outbox if database.outbox is not None else ChangeOutbox()
        self.outbox = outbox
        # The database's DML appends to this feed from now on.
        database.outbox = outbox
        # A spilling outbox rehydrates rows through the catalog.
        if outbox.schema_resolver is None:
            outbox.schema_resolver = (
                lambda name: database.catalog.relation(name).schema
            )
        self.splitter = splitter
        # Records applied per X-lock acquisition: the drain takes each
        # view's X lock once per batch instead of once per record.
        if drain_batch < 1:
            raise MaintenanceError("drain_batch must be >= 1")
        self.drain_batch = drain_batch
        self._registered: dict[str, PMVMaintainer] = {}
        # One drain at a time: LSN order is only meaningful single-file.
        self._drain_mutex = threading.Lock()
        self._last_drained_lsn = 0
        self.records_drained = 0
        self.drain_batches = 0
        self.deltas_applied = 0
        self.eager_skips = 0
        self.lock_yields = 0
        self.failsafe_clears = 0
        self.advance_skips = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- registration ----------------------------------------------------------

    def register(
        self,
        maintainer: PMVMaintainer,
        splitter: HeavyLightSplitter | None = None,
    ) -> None:
        """Switch one view to async maintenance.

        Accepts a :class:`PMVMaintainer` or anything carrying one as
        ``.maintainer`` (a ``ManagedView``).  The view's watermark
        starts at the current LSN: everything already applied eagerly
        up to this point is, by definition, fresh.  The feed may still
        hold records at or below that LSN (the outbox records every
        change once it is attached, even while views are eager), so
        those records are stamped as applied for the new view — the
        eager path already absorbed them, and a drain that applied them
        again would double-apply the deltas.  LSN read and backlog
        stamp happen under the statement latch so no statement can
        commit between them.
        """
        if not isinstance(maintainer, PMVMaintainer):
            maintainer = maintainer.maintainer
        view = maintainer.view
        maintainer.async_mode = True
        maintainer.splitter = splitter if splitter is not None else self.splitter
        maintainer.outbox = self.outbox
        view.async_maintenance = True
        with self.database.statement_latch:
            lsn = self.database.current_lsn()
            self.outbox.mark_applied_up_to(lsn, view.name)
            view.applied_lsn = lsn
            self._registered[view.name] = maintainer
        self._update_retention()

    def unregister(self, view_name: str) -> None:
        """Return one view to eager maintenance (it must first be
        drained or cleared by the caller to be immediately fresh)."""
        maintainer = self._registered.pop(view_name, None)
        if maintainer is not None:
            maintainer.async_mode = False
            maintainer.splitter = None
            maintainer.outbox = None
            maintainer.view.async_maintenance = False
        self._update_retention()

    def lag(self, view) -> int:
        """Feed positions the view trails the current LSN by."""
        return max(0, self.database.current_lsn() - view.applied_lsn)

    # -- draining --------------------------------------------------------------

    def drain(self, max_records: int | None = None) -> int:
        """Apply up to ``max_records`` feed records in LSN order.

        Records are processed in batches of up to ``drain_batch``: one
        X-lock acquisition per view per batch instead of per record,
        which is what makes a deep backlog drain cheap (ROADMAP item 4
        follow-on).  Returns the number of records fully processed.
        Stops early when a view's X lock is denied (the whole batch is
        requeued in order and ``lock_yields`` bumped — ``applied_views``
        stamps keep the retry from double-applying).  A second
        concurrent drain returns 0 immediately rather than
        interleaving.
        """
        if not self._drain_mutex.acquire(blocking=False):
            return 0
        try:
            drained = 0
            while max_records is None or drained < max_records:
                limit = self.drain_batch
                if max_records is not None:
                    limit = min(limit, max_records - drained)
                batch = self._take_batch(limit)
                if not batch:
                    break
                try:
                    self._apply_batch(batch)
                except LockError:
                    self._requeue_batch(batch)
                    self.lock_yields += 1
                    break
                except BaseException:
                    # Crash/control unwind: keep the records at the head
                    # so an in-process retry (ERROR-mode injections)
                    # resumes exactly where it stopped.
                    self._requeue_batch(batch)
                    raise
                self._last_drained_lsn = batch[-1].lsn
                self.records_drained += len(batch)
                self.drain_batches += 1
                drained += len(batch)
            self._advance_to_feed_end()
            self._update_retention()
            return drained
        finally:
            self._drain_mutex.release()

    def _take_batch(self, limit: int) -> list[OutboxRecord]:
        """Pop up to ``limit`` records off the feed head, verifying the
        LSN-order invariant as they come."""
        batch: list[OutboxRecord] = []
        while len(batch) < limit:
            record = self.outbox.take()
            if record is None:
                break
            if record.lsn <= self._last_drained_lsn:
                self.outbox.requeue(record)
                self._requeue_batch(batch)
                raise MaintenanceError(
                    f"outbox feed out of order: record LSN {record.lsn} "
                    f"after {self._last_drained_lsn} — a delta would be "
                    f"double-applied"
                )
            batch.append(record)
        return batch

    def _requeue_batch(self, batch: list[OutboxRecord]) -> None:
        """Put a batch back at the feed head, oldest first afterwards."""
        for record in reversed(batch):
            self.outbox.requeue(record)

    def _update_retention(self) -> None:
        """Publish the CDC low-watermark to the WAL retention registry.

        Segment reclamation must not retire records the feed still
        needs for idempotent reasoning or that a registered view has
        not absorbed: the published position is the minimum of every
        view's applied LSN and the LSN just below the oldest pending
        feed record.
        """
        wal = self.database.wal
        if wal is None or not hasattr(wal, "retention"):
            return
        if not self._registered:
            wal.retention.release("cdc")
            return
        floor = min(m.view.applied_lsn for m in self._registered.values())
        head = self.outbox.peek_lsn()
        if head is not None:
            floor = min(floor, head - 1)
        wal.retention.update("cdc", floor)

    def _advance_to_feed_end(self) -> None:
        """With the feed empty, catch watermarks up to the current LSN.

        WAL-only records (checkpoint markers) advance the LSN without a
        feed record; without this step a fully-drained view would
        report phantom staleness forever.  LSN read and emptiness check
        must be atomic against committing statements: a writer bumps
        the WAL LSN and appends the feed record as two steps inside the
        statement latch, so a drain that reads the LSN after the WAL
        append but checks emptiness before the outbox append would see
        an empty feed and jump the watermark past an unapplied change
        (phantom freshness).  Both steps therefore run under the
        statement latch, acquired non-blocking: if a statement is
        mid-commit the bump is simply skipped (``advance_skips``) and
        the next drain catches up — blocking here could deadlock
        against a writer parked by the interleaving scheduler.
        """
        latch = self.database.statement_latch
        if not latch.acquire(blocking=False):
            self.advance_skips += 1
            return
        try:
            high = self.database.current_lsn()
            if len(self.outbox) != 0:
                return
            for maintainer in self._registered.values():
                if maintainer.view.applied_lsn < high:
                    maintainer.view.applied_lsn = high
        finally:
            latch.release()

    def drain_to_convergence(self, max_rounds: int = 1000) -> int:
        """Drain until the feed is empty; returns records processed.

        Bounded by ``max_rounds`` lock yields so a reader that never
        releases its S lock cannot hang the caller.
        """
        total = 0
        for _ in range(max_rounds):
            total += self.drain()
            if len(self.outbox) == 0:
                return total
        raise MaintenanceError(
            f"feed did not converge after {max_rounds} drain rounds "
            f"({len(self.outbox)} records pending)"
        )

    def _apply_batch(self, batch: list[OutboxRecord]) -> None:
        """Apply a batch of feed records to every registered view.

        Per view: partition the batch into already-applied (stamped by
        the eager hot path or an interrupted earlier pass), irrelevant
        (stamped immediately), and relevant records — then apply all
        relevant deltas under ONE X-lock acquisition.  Watermarks
        advance only after the whole batch succeeded for every view, so
        a mid-batch failure leaves them honest (lagging, never lying).
        """
        for name, maintainer in self._registered.items():
            relevant: list[OutboxRecord] = []
            for record in batch:
                if name in record.applied_views:
                    self.eager_skips += 1
                elif maintainer._needs_maintenance(record.change):
                    relevant.append(record)
                else:
                    record.applied_views.add(name)
            if relevant:
                self._apply_deltas(maintainer, relevant)
        for maintainer in self._registered.values():
            view = maintainer.view
            if batch[-1].lsn > view.applied_lsn:
                view.applied_lsn = batch[-1].lsn

    def _apply_deltas(
        self, maintainer: PMVMaintainer, records: list[OutboxRecord]
    ) -> None:
        """Apply ``records`` to one view under a single X lock.

        The statement latch is still taken per record (the latch guards
        physical structures and must stay short); only the *logical*
        lock acquisition — the expensive, possibly-waiting step — is
        amortized across the batch.  Each record is stamped as applied
        the moment its delta lands, so an organic failure partway
        through (the batch is requeued by the caller) never
        double-applies on retry.
        """
        txn = self.database.begin()
        try:
            maintainer._acquire_x(txn)
        except BaseException:
            txn.abort()
            raise
        try:
            for record in records:
                with self.database.statement_latch:
                    if not maintainer.apply_async(record.change):
                        self.failsafe_clears += 1
                    else:
                        self.deltas_applied += 1
                record.applied_views.add(maintainer.view.name)
        finally:
            txn.commit()

    # -- optional background pump ----------------------------------------------

    def start(self, interval: float = 0.01) -> None:
        """Run the drain on a daemon thread every ``interval`` seconds."""
        if self._thread is not None:
            return
        self._stop.clear()

        def pump() -> None:
            while not self._stop.wait(interval):
                try:
                    self.drain()
                except Exception:
                    # The pump must survive organic failures (they are
                    # already accounted by the fail-safe counters); it
                    # dies only with the process.
                    continue

        self._thread = threading.Thread(target=pump, name="pmv-async-drain", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "records_drained": self.records_drained,
            "cdc_drain_batches": self.drain_batches,
            "drain_batch": self.drain_batch,
            "deltas_applied": self.deltas_applied,
            "eager_skips": self.eager_skips,
            "lock_yields": self.lock_yields,
            "failsafe_clears": self.failsafe_clears,
            "advance_skips": self.advance_skips,
            "pending": len(self.outbox),
            "high_watermark": self.outbox.last_lsn,
            "views": {
                name: m.view.applied_lsn for name, m in self._registered.items()
            },
        }
