"""The transactional outbox: DML's change feed for async maintenance.

Every insert/delete/update appends one :class:`OutboxRecord` *inside*
the statement latch, immediately after the WAL append, stamped with
that append's LSN.  Feed order therefore equals serialization order —
the property the drain relies on to apply deltas in LSN order and keep
per-view watermarks meaningful.

The feed's *authoritative* copy is the WAL: after a crash every PMV
restarts empty (the always-correct fail-safe subset) and a fresh feed
repopulates naturally as recovery replays the log through a database
with an outbox attached — so the spill tier below is a memory bound,
never a durability mechanism.  What *must* hold is atomicity with the
statement: an aborted statement never reaches the append (the prepare
phase and the heap mutation both precede it), and a crash in either
append window (before or after the record is stored) is a process
death, never a silent gap — DELETE/UPDATE WAL payloads carry no old
row values, so a dropped record could not be reconstructed after the
fact.

Bounded memory (DESIGN.md §15): with ``spill_threshold`` set, the feed
keeps at most that many change *payloads* resident.  Once the window
is full, further appends write their payload to a CRC-checked spill
file and keep only the record's metadata (LSN + applied-view stamps)
in the deque — ``mark_applied`` / watermark bookkeeping never touch
the file.  :meth:`take` reads a spilled payload back (verifying its
CRC) just before the drain needs it, and the spill file is truncated
whenever the last spilled record leaves the feed.  A spill write that
itself hits a full disk falls back to keeping the payload resident
(counted in ``spill_enospc``): the statement already committed to the
WAL, so the feed *must* accept the record — backpressure is the
governor's job, fed by the backlog depth this module reports.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import tempfile
import threading
import zlib
from collections import deque
from typing import Callable

from repro.engine.row import Row
from repro.engine.transactions import Change, ChangeKind
from repro.errors import DiskFullError, EngineError, OutboxSpillError

__all__ = ["ChangeOutbox", "OutboxRecord"]


class OutboxRecord:
    """One feed element: a base-relation change at a known LSN.

    ``applied_views`` names the views this record has already been
    applied to — by the eager hot path at write time, or by a partial
    drain that was interrupted — so a retried drain never applies the
    same delta twice.  A spilled record carries ``change=None`` and a
    ``spill_ref`` (byte offset + length in the spill file) instead;
    :meth:`ChangeOutbox.take` rehydrates it before any consumer sees
    it.
    """

    __slots__ = ("lsn", "change", "applied_views", "spill_ref")

    def __init__(self, lsn: int, change: Change | None) -> None:
        self.lsn = lsn
        self.change = change
        self.applied_views: set[str] = set()
        self.spill_ref: tuple[int, int] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = (
            f"{self.change.kind.name} {self.change.relation!r}"
            if self.change is not None
            else f"spilled@{self.spill_ref}"
        )
        return (
            f"OutboxRecord(lsn={self.lsn}, {body}, "
            f"applied={sorted(self.applied_views)})"
        )


class ChangeOutbox:
    """FIFO change feed appended to by DML, drained by AsyncMaintainer.

    ``fault_check`` is an injector-style callable (``site -> FaultSpec
    | None``, see :class:`repro.faults.inject.FaultInjector.check`)
    giving the torture harness the two crash windows of one append:
    ``CRASH_BEFORE`` (the WAL record is durable but the feed never saw
    the change) and ``CRASH_AFTER`` (both are durable, the statement
    was never acknowledged).  There is no ERROR mode: a failed append
    cannot be handled by aborting the statement, because the heap and
    WAL mutations already happened — it is a crash, exactly like a
    failed ``wal.append``.  Spill *writes* additionally fire the
    ``disk.full`` site (ERROR only), and that one is handled in-line by
    the resident fallback described in the module docstring.

    ``spill_threshold`` bounds resident change payloads;
    ``spill_path`` names the spill file (defaults to a private
    tempfile, removed on :meth:`close`); ``schema_resolver`` maps a
    relation name to its :class:`~repro.engine.schema.Schema` for
    rehydrating spilled rows (the :class:`~repro.cdc.maintainer
    .AsyncMaintainer` wires it to the database catalog automatically).
    """

    def __init__(
        self,
        fault_check: Callable[[str], object] | None = None,
        spill_threshold: int | None = None,
        spill_path: str | None = None,
        schema_resolver: Callable[[str], object] | None = None,
    ) -> None:
        self._records: deque[OutboxRecord] = deque()
        self._mutex = threading.Lock()
        self._last_lsn = 0
        self.appended = 0
        self.fault_check = fault_check
        if spill_threshold is not None and spill_threshold < 1:
            raise EngineError("spill_threshold must be positive")
        self.spill_threshold = spill_threshold
        self.spill_path = spill_path
        self.schema_resolver = schema_resolver
        self._spill_file = None
        self._spill_owned = False
        self._resident = 0  # pending records whose payload is in memory
        self._spilled_pending = 0
        self.peak_resident = 0
        self.spilled_total = 0
        self.materialized = 0
        self.spill_bytes = 0
        self.spill_truncations = 0
        self.spill_enospc = 0

    # -- producer side (inside the DML statement latch) -----------------------

    def append(self, change: Change, lsn: int | None = None) -> OutboxRecord:
        """Append one change record; called with the statement latch held.

        ``lsn`` is the WAL LSN of the statement's log record.  On a
        WAL-less database the outbox assigns its own monotonic sequence
        numbers, which serve the same role (feed position == statement
        serialization order).
        """
        spec = self.fault_check("outbox.append") if self.fault_check else None
        if spec is not None and spec.mode.name == "CRASH_BEFORE":
            from repro.faults.inject import SimulatedCrash

            raise SimulatedCrash(spec)
        with self._mutex:
            if lsn is None:
                lsn = self._last_lsn + 1
            record = OutboxRecord(lsn, change)
            if (
                self.spill_threshold is not None
                and self._resident >= self.spill_threshold
            ):
                try:
                    self._spill(record)
                except DiskFullError:
                    # The statement already committed to the WAL; the
                    # feed must take the record.  Degrade to resident
                    # growth and let the governor shed load upstream.
                    self.spill_enospc += 1
            if record.spill_ref is not None:
                self._spilled_pending += 1
            else:
                self._resident += 1
                self.peak_resident = max(self.peak_resident, self._resident)
            self._records.append(record)
            self._last_lsn = max(self._last_lsn, lsn)
            self.appended += 1
        if spec is not None:
            # CRASH_AFTER: the record made the feed, then the process
            # died before the statement was acknowledged.
            from repro.faults.inject import SimulatedCrash

            raise SimulatedCrash(spec)
        return record

    def mark_applied(self, lsn: int, view_name: str) -> bool:
        """Mark the record at ``lsn`` as already applied to ``view_name``
        (the eager hot path calls this at write time, from the tail)."""
        with self._mutex:
            for record in reversed(self._records):
                if record.lsn == lsn:
                    record.applied_views.add(view_name)
                    return True
                if record.lsn < lsn:
                    break
        return False

    def mark_applied_up_to(self, lsn: int, view_name: str) -> int:
        """Stamp every pending record at or below ``lsn`` as applied to
        ``view_name``; returns how many records were stamped.

        Registration calls this: a view that was eagerly maintained
        until now has already absorbed every change the feed still
        holds up to its registration LSN, so those records must not be
        applied to it again by the drain.
        """
        stamped = 0
        with self._mutex:
            for record in self._records:
                if record.lsn > lsn:
                    break
                if view_name not in record.applied_views:
                    record.applied_views.add(view_name)
                    stamped += 1
        return stamped

    def applied_up_to(self, lsn: int, view_name: str) -> bool:
        """True when no pending record at or below ``lsn`` still awaits
        ``view_name`` — i.e. the view's watermark may advance to ``lsn``
        (everything earlier was either drained away or eagerly applied)."""
        with self._mutex:
            for record in self._records:
                if record.lsn > lsn:
                    break
                if view_name not in record.applied_views:
                    return False
        return True

    # -- consumer side (the drain) --------------------------------------------

    def take(self) -> OutboxRecord | None:
        """Pop the oldest record, or None when the feed is empty.

        A spilled record is rehydrated (CRC-verified) before it is
        returned, so consumers never see ``change=None``.
        """
        with self._mutex:
            if not self._records:
                return None
            record = self._records.popleft()
            if record.spill_ref is not None:
                self._materialize(record)
                self._spilled_pending -= 1
                if self._spilled_pending == 0:
                    self._truncate_spill()
            else:
                self._resident -= 1
            return record

    def requeue(self, record: OutboxRecord) -> None:
        """Put a record back at the head after a blocked/interrupted
        apply.  Safe because producers only ever append at the tail;
        ``applied_views`` keeps the retry from double-applying."""
        with self._mutex:
            self._records.appendleft(record)
            # A requeued record was already rehydrated by take().
            self._resident += 1
            self.peak_resident = max(self.peak_resident, self._resident)

    # -- the spill tier --------------------------------------------------------

    def _spill_handle(self):
        if self._spill_file is None:
            if self.spill_path is None:
                fd, self.spill_path = tempfile.mkstemp(
                    prefix="pmv-outbox-", suffix=".spill"
                )
                os.close(fd)
                self._spill_owned = True
            self._spill_file = open(self.spill_path, "a+b")
        return self._spill_file

    def _spill(self, record: OutboxRecord) -> None:
        """Move ``record``'s payload to the spill file (mutex held)."""
        if self.fault_check is not None and self.fault_check("disk.full"):
            raise DiskFullError(
                "no space left on device (outbox spill write)", site="disk.full"
            )
        change = record.change
        body = json.dumps(
            {
                "lsn": record.lsn,
                "kind": change.kind.value,
                "relation": change.relation,
                "old": None if change.old_row is None else list(change.old_row.values),
                "new": None if change.new_row is None else list(change.new_row.values),
            },
            separators=(",", ":"),
        )
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        data = f"{crc:08x} {body}\n".encode("utf-8")
        handle = self._spill_handle()
        handle.seek(0, os.SEEK_END)
        offset = handle.tell()
        try:
            handle.write(data)
            handle.flush()
        except OSError as exc:
            if exc.errno == _errno.ENOSPC:
                try:
                    handle.truncate(offset)
                except OSError:
                    pass
                raise DiskFullError(
                    "no space left on device (outbox spill write)",
                    site="disk.full",
                ) from exc
            raise
        record.spill_ref = (offset, len(data))
        record.change = None
        self.spilled_total += 1
        self.spill_bytes = offset + len(data)

    def _materialize(self, record: OutboxRecord) -> None:
        """Rehydrate a spilled record's payload (mutex held)."""
        offset, length = record.spill_ref
        handle = self._spill_handle()
        handle.seek(offset)
        data = handle.read(length)
        text = data.decode("utf-8", errors="replace")
        crc_hex, _, body = text.rstrip("\n").partition(" ")
        try:
            stored = int(crc_hex, 16)
        except ValueError:
            stored = -1
        if (
            len(data) != length
            or stored != zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        ):
            raise OutboxSpillError(
                f"spilled outbox record at offset {offset} failed its CRC "
                f"check; the feed must be rebuilt from WAL replay"
            )
        payload = json.loads(body)
        if payload["lsn"] != record.lsn:
            raise OutboxSpillError(
                f"spilled outbox record at offset {offset} carries LSN "
                f"{payload['lsn']}, expected {record.lsn}"
            )
        if self.schema_resolver is None:
            raise EngineError(
                "a spilling outbox needs a schema_resolver to rehydrate rows"
            )
        schema = self.schema_resolver(payload["relation"])
        old = (
            None
            if payload["old"] is None
            else Row(tuple(payload["old"]), schema)
        )
        new = (
            None
            if payload["new"] is None
            else Row(tuple(payload["new"]), schema)
        )
        record.change = Change(
            ChangeKind(payload["kind"]), payload["relation"], old_row=old, new_row=new
        )
        record.spill_ref = None
        self.materialized += 1

    def _truncate_spill(self) -> None:
        if self._spill_file is None:
            return
        self._spill_file.truncate(0)
        self._spill_file.seek(0)
        self.spill_bytes = 0
        self.spill_truncations += 1

    def close(self) -> None:
        """Release the spill file (removing it when outbox-owned)."""
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None
        if self._spill_owned and self.spill_path is not None:
            try:
                os.remove(self.spill_path)
            except OSError:
                pass
            self.spill_path = None
            self._spill_owned = False

    # -- introspection ---------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """High-watermark: the LSN of the newest appended record."""
        return self._last_lsn

    def __len__(self) -> int:
        return len(self._records)

    def peek_lsn(self) -> int | None:
        """LSN of the oldest pending record, or None when drained."""
        with self._mutex:
            return self._records[0].lsn if self._records else None

    def pending(self) -> list[OutboxRecord]:
        """Snapshot of the pending records, oldest first (for tests)."""
        with self._mutex:
            return list(self._records)

    def stats(self) -> dict:
        """Backlog and spill-tier gauges (one consistent snapshot)."""
        with self._mutex:
            return {
                "pending": len(self._records),
                "resident": self._resident,
                "spilled": self._spilled_pending,
                "peak_resident": self.peak_resident,
                "spill_threshold": self.spill_threshold,
                "spilled_total": self.spilled_total,
                "materialized": self.materialized,
                "spill_bytes": self.spill_bytes,
                "spill_truncations": self.spill_truncations,
                "spill_enospc": self.spill_enospc,
                "appended": self.appended,
            }
