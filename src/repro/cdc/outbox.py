"""The transactional outbox: DML's change feed for async maintenance.

Every insert/delete/update appends one :class:`OutboxRecord` *inside*
the statement latch, immediately after the WAL append, stamped with
that append's LSN.  Feed order therefore equals serialization order —
the property the drain relies on to apply deltas in LSN order and keep
per-view watermarks meaningful.

The feed is in-memory only, and deliberately so: after a crash every
PMV restarts empty (the always-correct fail-safe subset), so there is
nothing for a durable feed to repair — the watermark simply restarts
at the recovered WAL end.  What *must* hold is atomicity with the
statement: an aborted statement never reaches the append (the prepare
phase and the heap mutation both precede it), and a crash in either
append window (before or after the record is stored) is a process
death, never a silent gap — DELETE/UPDATE WAL payloads carry no old
row values, so a dropped record could not be reconstructed after the
fact.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

from repro.engine.transactions import Change

__all__ = ["ChangeOutbox", "OutboxRecord"]


class OutboxRecord:
    """One feed element: a base-relation change at a known LSN.

    ``applied_views`` names the views this record has already been
    applied to — by the eager hot path at write time, or by a partial
    drain that was interrupted — so a retried drain never applies the
    same delta twice.
    """

    __slots__ = ("lsn", "change", "applied_views")

    def __init__(self, lsn: int, change: Change) -> None:
        self.lsn = lsn
        self.change = change
        self.applied_views: set[str] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OutboxRecord(lsn={self.lsn}, {self.change.kind.name} "
            f"{self.change.relation!r}, applied={sorted(self.applied_views)})"
        )


class ChangeOutbox:
    """FIFO change feed appended to by DML, drained by AsyncMaintainer.

    ``fault_check`` is an injector-style callable (``site -> FaultSpec
    | None``, see :class:`repro.faults.inject.FaultInjector.check`)
    giving the torture harness the two crash windows of one append:
    ``CRASH_BEFORE`` (the WAL record is durable but the feed never saw
    the change) and ``CRASH_AFTER`` (both are durable, the statement
    was never acknowledged).  There is no ERROR mode: a failed append
    cannot be handled by aborting the statement, because the heap and
    WAL mutations already happened — it is a crash, exactly like a
    failed ``wal.append``.
    """

    def __init__(self, fault_check: Callable[[str], object] | None = None) -> None:
        self._records: deque[OutboxRecord] = deque()
        self._mutex = threading.Lock()
        self._last_lsn = 0
        self.appended = 0
        self.fault_check = fault_check

    # -- producer side (inside the DML statement latch) -----------------------

    def append(self, change: Change, lsn: int | None = None) -> OutboxRecord:
        """Append one change record; called with the statement latch held.

        ``lsn`` is the WAL LSN of the statement's log record.  On a
        WAL-less database the outbox assigns its own monotonic sequence
        numbers, which serve the same role (feed position == statement
        serialization order).
        """
        spec = self.fault_check("outbox.append") if self.fault_check else None
        if spec is not None and spec.mode.name == "CRASH_BEFORE":
            from repro.faults.inject import SimulatedCrash

            raise SimulatedCrash(spec)
        with self._mutex:
            if lsn is None:
                lsn = self._last_lsn + 1
            record = OutboxRecord(lsn, change)
            self._records.append(record)
            self._last_lsn = max(self._last_lsn, lsn)
            self.appended += 1
        if spec is not None:
            # CRASH_AFTER: the record made the feed, then the process
            # died before the statement was acknowledged.
            from repro.faults.inject import SimulatedCrash

            raise SimulatedCrash(spec)
        return record

    def mark_applied(self, lsn: int, view_name: str) -> bool:
        """Mark the record at ``lsn`` as already applied to ``view_name``
        (the eager hot path calls this at write time, from the tail)."""
        with self._mutex:
            for record in reversed(self._records):
                if record.lsn == lsn:
                    record.applied_views.add(view_name)
                    return True
                if record.lsn < lsn:
                    break
        return False

    def mark_applied_up_to(self, lsn: int, view_name: str) -> int:
        """Stamp every pending record at or below ``lsn`` as applied to
        ``view_name``; returns how many records were stamped.

        Registration calls this: a view that was eagerly maintained
        until now has already absorbed every change the feed still
        holds up to its registration LSN, so those records must not be
        applied to it again by the drain.
        """
        stamped = 0
        with self._mutex:
            for record in self._records:
                if record.lsn > lsn:
                    break
                if view_name not in record.applied_views:
                    record.applied_views.add(view_name)
                    stamped += 1
        return stamped

    def applied_up_to(self, lsn: int, view_name: str) -> bool:
        """True when no pending record at or below ``lsn`` still awaits
        ``view_name`` — i.e. the view's watermark may advance to ``lsn``
        (everything earlier was either drained away or eagerly applied)."""
        with self._mutex:
            for record in self._records:
                if record.lsn > lsn:
                    break
                if view_name not in record.applied_views:
                    return False
        return True

    # -- consumer side (the drain) --------------------------------------------

    def take(self) -> OutboxRecord | None:
        """Pop the oldest record, or None when the feed is empty."""
        with self._mutex:
            if not self._records:
                return None
            return self._records.popleft()

    def requeue(self, record: OutboxRecord) -> None:
        """Put a record back at the head after a blocked/interrupted
        apply.  Safe because producers only ever append at the tail;
        ``applied_views`` keeps the retry from double-applying."""
        with self._mutex:
            self._records.appendleft(record)

    # -- introspection ---------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """High-watermark: the LSN of the newest appended record."""
        return self._last_lsn

    def __len__(self) -> int:
        return len(self._records)

    def peek_lsn(self) -> int | None:
        """LSN of the oldest pending record, or None when drained."""
        with self._mutex:
            return self._records[0].lsn if self._records else None

    def pending(self) -> list[OutboxRecord]:
        """Snapshot of the pending records, oldest first (for tests)."""
        with self._mutex:
            return list(self._records)
