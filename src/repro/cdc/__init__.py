"""Change-data-capture maintenance for PMVs (DESIGN.md §13).

The eager maintainer (:mod:`repro.core.maintenance`) takes an X lock on
the write path of every relevant delete/update — correct, but ROADMAP
open item 4's scalability ceiling for write-heavy traffic.  This package
moves the long tail of maintenance off the write path:

- :class:`ChangeOutbox` — a transactional outbox: DML appends one
  change record inside the same latched critical section as its WAL
  append, stamped with the WAL LSN, so the feed order *is* the
  serialization order;
- :class:`AsyncMaintainer` — drains the feed in LSN order and applies
  deltas through the existing :class:`~repro.core.maintenance.PMVMaintainer`
  machinery under its own lock/breaker discipline, advancing each
  view's ``applied_lsn`` watermark;
- :class:`HeavyLightSplitter` — keeps operator- or popularity-designated
  hot condition parts on the eager path (Abo-Khamis et al.'s
  heavy-light partitioning) while cold changes ride the feed.

Answers served from an async-maintained view carry a ``staleness``
stamp (current LSN minus applied LSN) and are bypassed to full
execution beyond the executor's ``freshness_bound`` — the same honesty
model replication uses for replica lag.
"""

from repro.cdc.maintainer import AsyncMaintainer
from repro.cdc.outbox import ChangeOutbox, OutboxRecord
from repro.cdc.split import HeavyLightSplitter

__all__ = [
    "AsyncMaintainer",
    "ChangeOutbox",
    "OutboxRecord",
    "HeavyLightSplitter",
]
