"""Analytical hit-probability model (Che's approximation).

The paper evaluates hit probability by simulation only; this module
adds the closed-form counterpart so the simulator can be cross-checked
against theory.  Under the independent-reference model with Zipf(α)
cell popularities — exactly the Section 4.1 setup — an LRU-class cache
of ``N`` entries is well described by *Che's approximation*:

- the **characteristic time** ``T`` solves ``Σ_i (1 - e^{-e_i T}) = N``;
- cell *i*'s steady-state hit ratio is ``h_i = 1 - e^{-e_i T}``;
- the per-reference hit ratio is ``Σ_i e_i h_i``;
- the paper's per-query *partial hit* probability, with ``h`` cells
  drawn independently per query, is ``1 - (1 - Σ_i e_i h_i)^h``.

CLOCK approximates LRU, so the same prediction brackets both; 2Q's
admission filter is not modelled (it beats the prediction on skewed
workloads, which the cross-check tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.zipf import ZipfianDistribution

__all__ = ["AnalyticPrediction", "che_approximation"]


@dataclass(frozen=True)
class AnalyticPrediction:
    """Closed-form cache behaviour for one configuration."""

    universe: int
    alpha: float
    capacity: int
    cells_per_query: int
    characteristic_time: float
    reference_hit_ratio: float
    query_hit_probability: float


def _solve_characteristic_time(probabilities: np.ndarray, capacity: int) -> float:
    """Bisection on ``f(T) = Σ (1 - e^{-p_i T}) - N`` (monotone in T)."""

    def occupancy(t: float) -> float:
        return float(np.sum(-np.expm1(-probabilities * t)))

    low, high = 0.0, 1.0
    while occupancy(high) < capacity:
        high *= 2.0
        if high > 1e18:  # pragma: no cover - capacity < universe guards this
            raise WorkloadError("characteristic time solve diverged")
    for _ in range(200):
        mid = 0.5 * (low + high)
        if occupancy(mid) < capacity:
            low = mid
        else:
            high = mid
        if high - low <= 1e-9 * max(high, 1.0):
            break
    return 0.5 * (low + high)


def che_approximation(
    universe: int,
    alpha: float,
    capacity: int,
    cells_per_query: int = 1,
) -> AnalyticPrediction:
    """Predict hit probability for the Section 4.1 configuration.

    Parameters mirror :class:`~repro.sim.hitprob.SimulationConfig`:
    ``universe`` cells with Zipf(α) popularities, an LRU/CLOCK-class
    cache of ``capacity`` entries, and ``cells_per_query`` (the paper's
    h) independent cell draws per query.
    """
    if not 1 <= capacity < universe:
        raise WorkloadError("capacity must be in [1, universe)")
    if cells_per_query < 1:
        raise WorkloadError("cells_per_query (h) must be >= 1")
    probabilities = ZipfianDistribution(universe, alpha).probabilities
    t = _solve_characteristic_time(probabilities, capacity)
    item_hit = -np.expm1(-probabilities * t)  # 1 - e^{-p T}
    reference_hit = float(np.dot(probabilities, item_hit))
    query_hit = 1.0 - (1.0 - reference_hit) ** cells_per_query
    return AnalyticPrediction(
        universe=universe,
        alpha=alpha,
        capacity=capacity,
        cells_per_query=cells_per_query,
        characteristic_time=t,
        reference_hit_ratio=reference_hit,
        query_hit_probability=query_hit,
    )
