"""``repro.sim`` — the Section 4.1 hit-probability simulation study."""

from repro.sim.analytic import AnalyticPrediction, che_approximation
from repro.sim.hitprob import (
    SimulationConfig,
    SimulationResult,
    build_sim_policy,
    simulate_hit_probability,
)

__all__ = [
    "AnalyticPrediction",
    "SimulationConfig",
    "che_approximation",
    "SimulationResult",
    "build_sim_policy",
    "simulate_hit_probability",
]
