"""The hit-probability simulation study (Section 4.1, Figures 6-7).

Setup mirrored from the paper:

- a read-only database whose query space holds ``universe`` basic
  condition parts (1 M in the paper);
- each query's ``Cselect`` breaks into exactly ``h`` basic condition
  parts, each drawn independently with Zipf(α) probabilities;
- every bcp has more than ``F`` result tuples, so a resident bcp always
  stores exactly ``F`` tuples — the simulation therefore only tracks
  *which* bcps are resident;
- CLOCK manages a queue of ``L`` entries; the simplified 2Q manages
  ``Am`` (N entries, CLOCK) plus ``A1`` (0.5 N bcp-only FIFO ghosts).
  A bcp key costs 4 % of an entry, so for the *same byte budget*
  CLOCK's queue gets ``L = 1.02 × N`` entries (the paper's accounting);
- a query is a **hit** if *any* of its h bcps is resident when it
  arrives — the paper's partial-hit definition, weaker than classical
  full-hit caching;
- the PMV is warmed with ``warmup_queries`` queries, then the hit
  probability is measured over the next ``measured_queries``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.replacement import (
    ClockPolicy,
    ReplacementPolicy,
    TwoQueuePolicy,
    make_policy,
)
from repro.errors import WorkloadError
from repro.workload.zipf import ZipfianDistribution

__all__ = ["SimulationConfig", "SimulationResult", "build_sim_policy", "simulate_hit_probability"]


@dataclass(frozen=True)
class SimulationConfig:
    """One simulation run's parameters (paper defaults shown)."""

    universe: int = 1_000_000
    cells_per_query: int = 2
    alpha: float = 1.07
    policy: str = "clock"
    capacity: int = 20_000
    clock_budget_factor: float = 1.02
    a1_ratio: float = 0.5
    warmup_queries: int = 1_000_000
    measured_queries: int = 1_000_000
    seed: int = 7
    o1_memo_capacity: int = 256
    """Capacity of the simulated O1 decomposition memo (the engine's
    :class:`repro.core.decompose.DecompositionCache`); 0 disables the
    memo and reports a 0.0 hit ratio."""

    def __post_init__(self) -> None:
        if self.cells_per_query < 1:
            raise WorkloadError("cells_per_query (h) must be >= 1")
        if self.capacity < 1:
            raise WorkloadError("capacity (N) must be >= 1")
        if self.universe < self.capacity:
            raise WorkloadError("universe must be >= capacity")

    def scaled(self, factor: float) -> "SimulationConfig":
        """A linearly downscaled copy (universe, capacity, and query
        counts all shrink together, preserving their ratios)."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return SimulationConfig(
            universe=max(1, round(self.universe * factor)),
            cells_per_query=self.cells_per_query,
            alpha=self.alpha,
            policy=self.policy,
            capacity=max(1, round(self.capacity * factor)),
            clock_budget_factor=self.clock_budget_factor,
            a1_ratio=self.a1_ratio,
            warmup_queries=max(1, round(self.warmup_queries * factor)),
            measured_queries=max(1, round(self.measured_queries * factor)),
            seed=self.seed,
            o1_memo_capacity=self.o1_memo_capacity,
        )


@dataclass
class SimulationResult:
    """Outcome of one run."""

    config: SimulationConfig
    hit_probability: float
    reference_hit_ratio: float
    resident_entries: int
    o1_memo_hit_ratio: float = 0.0
    """Fraction of measured queries whose exact h-cell combination was
    already in the O1 memo — the repeat rate the engine's decomposition
    cache exploits under the same workload."""

    def __str__(self) -> str:
        c = self.config
        return (
            f"{c.policy:>5} alpha={c.alpha:<5} h={c.cells_per_query} "
            f"N={c.capacity}: hit probability {self.hit_probability:.1%}"
        )


def build_sim_policy(config: SimulationConfig) -> ReplacementPolicy:
    """The policy under the paper's equal-storage-budget accounting.

    For budget ``UB``: 2Q spends it as N full entries + 0.5 N ghost
    keys (each key 4 % of an entry) ⇒ CLOCK affords
    ``L = (1 + 0.5 × 0.04) × N = 1.02 × N`` full entries.
    """
    if config.policy == "clock":
        return ClockPolicy(max(1, round(config.capacity * config.clock_budget_factor)))
    if config.policy == "2q":
        return TwoQueuePolicy(config.capacity, a1_ratio=config.a1_ratio)
    return make_policy(config.policy, config.capacity)


def simulate_hit_probability(
    config: SimulationConfig,
    policy: ReplacementPolicy | None = None,
) -> SimulationResult:
    """Run the warm-up + measurement protocol and report hit probability."""
    if policy is None:
        policy = build_sim_policy(config)
    dist = ZipfianDistribution(config.universe, config.alpha, seed=config.seed)
    h = config.cells_per_query

    total = config.warmup_queries + config.measured_queries
    hits = 0
    reference = policy.reference
    # The O1 memo analog: an LRU over exact h-cell combinations (the
    # simulation's stand-in for the bound Cselect).
    memo_capacity = config.o1_memo_capacity
    memo: OrderedDict | None = OrderedDict() if memo_capacity > 0 else None
    memo_hits = 0
    # Draw cell ids in chunks to bound memory while staying vectorized.
    chunk_queries = max(1, min(200_000, total))
    done = 0
    while done < total:
        batch = min(chunk_queries, total - done)
        cells = dist.sample(batch * h)
        measuring_from = config.warmup_queries - done  # may be negative
        for q in range(batch):
            base = q * h
            query_cells = tuple(int(cells[base + j]) for j in range(h))
            query_hit = False
            for cell in query_cells:
                if reference(cell).resident_before:
                    query_hit = True
            measuring = q >= measuring_from
            if query_hit and measuring:
                hits += 1
            if memo is not None:
                if query_cells in memo:
                    memo.move_to_end(query_cells)
                    if measuring:
                        memo_hits += 1
                else:
                    memo[query_cells] = None
                    if len(memo) > memo_capacity:
                        memo.popitem(last=False)
        done += batch
    return SimulationResult(
        config=config,
        hit_probability=hits / config.measured_queries,
        reference_hit_ratio=policy.hit_ratio,
        resident_entries=len(policy),
        o1_memo_hit_ratio=memo_hits / config.measured_queries,
    )
