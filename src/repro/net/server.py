"""The socket server: remote sessions through the serving gate.

A :class:`NetServer` accepts TCP connections and runs one auth-less
session per connection on a daemon thread.  Every request flows
through the same machinery in-process callers use — queries through
:meth:`~repro.qos.gate.ServingGate.execute` (admission, deadline,
governor), DML through :meth:`~repro.qos.gate.ServingGate.admit_write`
plus the :class:`~repro.net.cluster.ClusterFrontEnd`'s at-most-once
path — so a remote client cannot bypass overload protection or the
freshness/honesty contracts.

Deadline propagation: the client sends a relative ``budget`` in
seconds with each request; the server turns it into a
:class:`~repro.qos.deadline.Deadline` *at receipt*, so queue time and
execution share one budget exactly as the QoS layer intends.

Ops
---
``hello``      bind the session's ``client_id`` (required before DML)
``query``      a serialized template query; returns the row envelope
``insert``     one row; ``seq`` + the session's client_id form the key
``delete_eq``  delete rows where column == value (idempotent by
               predicate, still keyed for retry dedup)
``stats``      gate + net + cluster counters
``ping``       liveness

The ``drop_before_respond`` hook (tests/bench only) closes the
connection after applying a request but before responding — the exact
window the idempotency-key machinery exists for.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Callable

from repro.errors import NetProtocolError, ReproError
from repro.net import protocol
from repro.net.cluster import ClusterFrontEnd, classify_error
from repro.qos.deadline import Deadline

__all__ = ["NetServer"]


class _Session:
    """Per-connection state: identity for idempotency keys."""

    __slots__ = ("client_id",)

    def __init__(self) -> None:
        self.client_id: str | None = None


class NetServer:
    """Threaded socket server fronting a :class:`ClusterFrontEnd`."""

    def __init__(
        self,
        front_end: ClusterFrontEnd,
        host: str = "127.0.0.1",
        port: int = 0,
        drop_before_respond: Callable[[str, dict], bool] | None = None,
        refuse_connections: Callable[[], bool] | None = None,
    ) -> None:
        self.front_end = front_end
        self.metrics = front_end.metrics
        self._host = host
        self._port = port
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._conns: set[socket.socket] = set()
        self._conns_mutex = threading.Lock()
        self.drop_before_respond = drop_before_respond
        # The client↔server partition seam: while this returns True,
        # new connections are closed immediately after accept (the
        # client sees a connection reset, i.e. an OSError it retries
        # with jittered backoff).  Pair with drop_connections() to also
        # sever the conversations already in flight.
        self.refuse_connections = refuse_connections

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._sock is None:
            raise ReproError("server not started")
        return self._sock.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind, listen, and accept on a daemon thread; returns (host, port)."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(64)
        self._sock = sock
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="pmv-net-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stopping.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        with self._conns_mutex:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def drop_connections(self) -> int:
        """Sever every established connection (the partition nemesis
        cutting the client↔server link mid-conversation); the listener
        keeps running, so healing is just the refusal hook flipping
        back.  Returns how many connections were closed."""
        with self._conns_mutex:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        return len(conns)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # closed by stop()
            if self.refuse_connections is not None and self.refuse_connections():
                self.metrics.record_connection_refused()
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            with self._conns_mutex:
                self._conns.add(conn)
            self.metrics.record_connection(opened=True)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="pmv-net-conn",
                daemon=True,
            ).start()

    # -- the per-connection loop ----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        session = _Session()
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stopping.is_set():
                try:
                    request = protocol.recv_frame(conn)
                except NetProtocolError:
                    return  # peer died or spoke garbage; drop the session
                except OSError:
                    return
                if request is None:
                    return  # clean EOF
                response = self._dispatch(session, request)
                response["id"] = request.get("id")
                if self.drop_before_respond is not None and self.drop_before_respond(
                    request.get("op", ""), request
                ):
                    return  # injected drop: applied, never acknowledged
                try:
                    protocol.send_frame(conn, response)
                except OSError:
                    return
        finally:
            with self._conns_mutex:
                self._conns.discard(conn)
            self.metrics.record_connection(opened=False)
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, session: _Session, request: dict[str, Any]) -> dict[str, Any]:
        op = str(request.get("op", ""))
        self.metrics.record_request(op)
        try:
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                return {
                    "ok": False,
                    "error": f"unknown op {op!r}",
                    "error_type": "NetProtocolError",
                    "retryable": False,
                }
            return handler(session, request)
        except ReproError as exc:
            envelope = classify_error(exc)
            self.metrics.record_error(
                retryable=envelope.get("retryable", False),
                shed=envelope.get("shed", False),
            )
            return envelope
        except Exception as exc:  # never kill the session on a handler bug
            self.metrics.record_error()
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
                "retryable": False,
            }

    # -- ops -------------------------------------------------------------------

    def _deadline(self, request: dict[str, Any]) -> Deadline | None:
        budget = request.get("budget")
        if budget is None:
            return None
        return Deadline.after(max(0.0, float(budget)))

    def _idem(self, session: _Session, request: dict[str, Any]) -> str | None:
        seq = request.get("seq")
        if seq is None:
            return None
        if session.client_id is None:
            raise NetProtocolError("DML with a seq requires hello(client_id) first")
        return f"{session.client_id}:{int(seq)}"

    def _op_hello(self, session: _Session, request: dict[str, Any]) -> dict[str, Any]:
        client_id = str(request.get("client_id", "")).strip()
        if not client_id or ":" in client_id:
            raise NetProtocolError("hello requires a client_id without ':'")
        session.client_id = client_id
        return {
            "ok": True,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "epoch": self.front_end.epoch,
        }

    def _op_ping(self, session: _Session, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "epoch": self.front_end.epoch}

    def _op_query(self, session: _Session, request: dict[str, Any]) -> dict[str, Any]:
        query = protocol.decode_query(
            self.front_end.database.catalog, request["query"]
        )
        min_lsn = request.get("min_lsn")
        token_epoch = request.get("token_epoch")
        routed = self.front_end.execute_query(
            query,
            deadline=self._deadline(request),
            staleness_bound=request.get("staleness_bound"),
            prefer_replica=bool(request.get("prefer_replica", False)),
            min_lsn=None if min_lsn is None else int(min_lsn),
            token_epoch=None if token_epoch is None else int(token_epoch),
        )
        return protocol.encode_result(
            routed["result"],
            served_by=routed["served_by"],
            replica_lag=routed["replica_lag"],
            epoch=routed.get("epoch"),
            applied_lsn=routed.get("applied_lsn"),
        )

    def _op_insert(self, session: _Session, request: dict[str, Any]) -> dict[str, Any]:
        relation = str(request["relation"])
        values = list(request["values"])
        idem = self._idem(session, request)

        def apply(database, key):
            database.insert(relation, values, idem=key)
            wal = database.wal
            return wal.last_lsn if wal is not None else database.current_lsn()

        return self.front_end.apply_write(
            idem, apply, deadline=self._deadline(request)
        )

    def _op_delete_eq(self, session: _Session, request: dict[str, Any]) -> dict[str, Any]:
        relation = str(request["relation"])
        column = str(request["column"])
        value = request["value"]
        idem = self._idem(session, request)

        def apply(database, key):
            deleted = database.delete_where(
                relation, lambda row: row[column] == value, idem=key
            )
            wal = database.wal
            lsn = wal.last_lsn if wal is not None else database.current_lsn()
            apply.deleted = len(deleted)
            return lsn

        apply.deleted = 0
        envelope = self.front_end.apply_write(
            idem, apply, deadline=self._deadline(request)
        )
        envelope["deleted"] = apply.deleted
        return envelope

    def _op_stats(self, session: _Session, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "stats": self.front_end.stats()}
