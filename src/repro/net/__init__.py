"""The network tier: wire protocol, socket server, client driver, cluster routing.

Layers (bottom up):

- :mod:`repro.net.protocol` — length-prefixed, versioned JSON framing
  plus query/result serialization shared by both sides of the wire;
- :mod:`repro.net.cluster` — :class:`ClusterFrontEnd` routes reads
  (primary via the serving gate, or bounded-staleness replicas) and
  writes (gate-admitted, idempotency-keyed, semi-sync acked) over a
  replicated fleet, surviving failover with a WAL-rebuilt dedup table;
- :mod:`repro.net.server` — :class:`NetServer`, a threaded socket
  server giving remote sessions the exact same admission/deadline/
  honesty contracts as in-process callers;
- :mod:`repro.net.client` — :class:`PMVClient`, a pooled retrying
  driver whose DML idempotency keys make retry-after-drop safe.
"""

from repro.net.client import PMVClient, RemoteAnswer, RetryPolicy
from repro.net.cluster import ClusterFrontEnd, IdempotencyTable
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_query,
    encode_query,
    encode_result,
    recv_frame,
    send_frame,
)
from repro.net.server import NetServer

__all__ = [
    "PMVClient",
    "RemoteAnswer",
    "RetryPolicy",
    "ClusterFrontEnd",
    "IdempotencyTable",
    "NetServer",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_query",
    "decode_query",
    "encode_result",
    "send_frame",
    "recv_frame",
]
