"""The client driver: pooled connections, retries, idempotency keys.

:class:`PMVClient` is the remote counterpart of calling the serving
gate directly.  Its retry discipline follows the classic split:

- **queries / stats / ping** are idempotent by nature — retried
  automatically on connection failure with exponential backoff;
- **DML** is *made* idempotent by stamping each statement with
  ``client_id:seq`` before the first send.  The server dedups on the
  key (and rebuilds its table from the WAL across failovers), so a
  retry after a dropped connection — including the poisonous
  applied-but-unacknowledged case — is applied at most once.  The
  driver therefore retries DML exactly as freely as reads.
- **retryable server errors** (fenced deposed primary, replication
  hiccups, lease-isolated nodes, unacknowledged semi-sync writes)
  retry the same way; sheds (``shed: true``) surface as
  :class:`~repro.errors.OverloadError` by default — backpressure is the
  caller's policy decision, not the driver's.

Backoff uses *seeded full jitter*: after a partition heals, every
client that queued up behind it wakes at a different moment instead of
hammering the server in lockstep.  The jitter stream is seeded from
the client id, so a replayed run produces the identical retry
schedule; ``jitter=0`` restores the old deterministic delays.

Each client is also a *session* for monotonic reads: it remembers the
highest ``applied_lsn`` it has observed (per serving epoch) and stamps
it into every query as a ``min_lsn`` token, so a later read routed to
a lagging replica can never show an older database state than one this
session already saw.  The token is epoch-scoped — a failover starts a
fresh timeline and resets it (acked-write durability across failovers
is the replication layer's separate guarantee).

Connections are pooled per client; a connection that errors is closed
and replaced rather than returned to the pool.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (
    NetError,
    NetProtocolError,
    NetTimeoutError,
    OverloadError,
    RetryExhaustedError,
)
from repro.net import protocol

__all__ = ["PMVClient", "RetryPolicy", "RemoteAnswer"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter and a bounded budget.

    ``jitter`` is the jittered fraction of each delay: 1.0 (the
    default) is classic full jitter — a uniform draw from
    ``[0, ceiling]``; 0 disables jitter entirely (the pre-jitter
    deterministic schedule, kept as an escape hatch for tests that
    assert exact delays); values in between jitter only that fraction
    of the ceiling.  The ceiling itself is the usual
    ``min(max_delay, base_delay * factor**attempt)``.
    """

    attempts: int = 5
    base_delay: float = 0.02
    factor: float = 2.0
    max_delay: float = 0.5
    jitter: float = 1.0

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        ceiling = min(self.max_delay, self.base_delay * (self.factor ** attempt))
        if self.jitter <= 0 or rng is None:
            return ceiling
        jittered = min(1.0, self.jitter)
        return ceiling * (1.0 - jittered) + rng.random() * jittered * ceiling


@dataclass
class RemoteAnswer:
    """A query answer as the wire delivered it.

    The full honesty surface survives the network hop: ``complete``,
    ``degraded_reason``, the CDC ``staleness`` stamp, the serving
    node's identity and replica lag for routed reads.
    """

    columns: list[str]
    rows: list[tuple]
    complete: bool
    degraded_reason: str | None = None
    completeness_estimate: float | None = None
    staleness: int | None = None
    applied_lsn: int | None = None
    served_by: str | None = None
    replica_lag: int | None = None
    epoch: int | None = None


@dataclass
class _WriteAck:
    """A DML acknowledgement."""

    lsn: int
    duplicate: bool
    deleted: int | None = None
    epoch: int | None = None
    served_by: str | None = None


class _Connection:
    """One framed socket with a per-connection request-id counter."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = itertools.count(1)
        self.hello_sent = False

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        request_id = next(self._next_id)
        message = dict(message, id=request_id)
        protocol.send_frame(self.sock, message)
        response = protocol.recv_frame(self.sock)
        if response is None:
            raise NetProtocolError("connection closed before the response")
        if response.get("id") != request_id:
            raise NetProtocolError(
                f"response id {response.get('id')} != request id {request_id}"
            )
        return response

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class PMVClient:
    """A pooled, retrying client for one server endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        pool_size: int = 2,
        retry: RetryPolicy | None = None,
        connect_timeout: float = 5.0,
        socket_timeout: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not client_id or ":" in client_id:
            raise NetError("client_id must be non-empty and contain no ':'")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.pool_size = pool_size
        self.retry = retry or RetryPolicy()
        self.connect_timeout = connect_timeout
        self.socket_timeout = socket_timeout
        self._sleep = sleep
        # Seeded from the client id: jittered backoff is deterministic
        # per client per run, so a failed nemesis seed replays with the
        # identical retry schedule.
        self._retry_rng = random.Random(f"retry:{client_id}")
        self._pool: list[_Connection] = []
        self._pool_mutex = threading.Lock()
        self._seq_mutex = threading.Lock()
        self._next_seq = 0
        # The session monotonic-read token: highest applied_lsn this
        # client has observed, scoped to the serving epoch it saw it in.
        self._token_mutex = threading.Lock()
        self._session_epoch: int | None = None
        self._session_lsn = 0
        self.retries = 0
        self.reconnects = 0
        self.timeouts = 0

    # -- pool ------------------------------------------------------------------

    def _checkout(self) -> _Connection:
        with self._pool_mutex:
            if self._pool:
                return self._pool.pop()
        conn = _Connection(self.host, self.port, self.connect_timeout)
        conn.sock.settimeout(self.socket_timeout)
        self.reconnects += 1
        return conn

    def _checkin(self, conn: _Connection) -> None:
        with self._pool_mutex:
            if len(self._pool) < self.pool_size:
                self._pool.append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._pool_mutex:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    # -- the request core ------------------------------------------------------

    def _next_idem_seq(self) -> int:
        with self._seq_mutex:
            self._next_seq += 1
            return self._next_seq

    def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one request with retry-with-backoff.

        Queries are idempotent; DML messages carry a ``seq`` assigned
        *before* the first attempt, so every retry presents the same
        idempotency key — the server's dedup makes the retry safe.
        Connection-level failures and retryable server errors back off
        and retry; sheds raise :class:`~repro.errors.OverloadError`;
        non-retryable server errors raise :class:`~repro.errors.NetError`.
        """
        last: BaseException | None = None
        for attempt in range(self.retry.attempts):
            if attempt:
                self.retries += 1
                self._sleep(self.retry.delay(attempt - 1, rng=self._retry_rng))
            try:
                conn = self._checkout()
                try:
                    if not conn.hello_sent:
                        hello = conn.request(
                            {"op": "hello", "client_id": self.client_id}
                        )
                        if not hello.get("ok"):
                            raise NetError(f"hello rejected: {hello.get('error')}")
                        conn.hello_sent = True
                    response = conn.request(message)
                except BaseException:
                    conn.close()
                    raise
                self._checkin(conn)
            except socket.timeout as exc:
                # Typed and retryable: the request is in doubt, but
                # queries are idempotent and DML carries its key.
                self.timeouts += 1
                wrapped = NetTimeoutError(
                    f"socket timed out after {self.socket_timeout}s: {exc}"
                )
                wrapped.__cause__ = exc
                last = wrapped
                continue
            except (OSError, NetProtocolError) as exc:
                last = exc
                continue
            if response.get("ok"):
                return response
            if response.get("shed"):
                raise OverloadError(
                    str(response.get("error")), reason=str(response.get("reason", ""))
                )
            if response.get("retryable"):
                last = NetError(
                    f"{response.get('error_type')}: {response.get('error')}"
                )
                continue
            raise NetError(f"{response.get('error_type')}: {response.get('error')}")
        raise RetryExhaustedError(
            f"gave up after {self.retry.attempts} attempts: {last}",
            attempts=self.retry.attempts,
            cause=last,
        ) from last

    # -- the session monotonic-read token --------------------------------------

    def session_token(self) -> tuple[int | None, int]:
        """The session's ``(epoch, min_lsn)`` monotonic-read token."""
        with self._token_mutex:
            return self._session_epoch, self._session_lsn

    def _observe_stamp(self, epoch: int | None, lsn: int | None) -> None:
        """Advance the session token from a response's stamps.

        A new epoch resets the token: a failover truncated the unacked
        suffix and started a fresh timeline, so an old-epoch LSN floor
        would be unsatisfiable (and meaningless) against the new one.
        Within an epoch the token only ratchets upward.
        """
        if epoch is None:
            return
        with self._token_mutex:
            if epoch != self._session_epoch:
                self._session_epoch = epoch
                self._session_lsn = 0
            if lsn is not None:
                self._session_lsn = max(self._session_lsn, int(lsn))

    # -- public API ------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self._request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self._request({"op": "stats"})["stats"]

    def query(
        self,
        query,
        budget: float | None = None,
        staleness_bound: int | None = None,
        prefer_replica: bool = False,
    ) -> RemoteAnswer:
        """Run a bound query remotely; ``query`` is a
        :class:`~repro.engine.template.Query` (serialized through the
        shared protocol module) or an already-encoded payload dict."""
        payload = query if isinstance(query, dict) else protocol.encode_query(query)
        message: dict[str, Any] = {"op": "query", "query": payload}
        if budget is not None:
            message["budget"] = budget
        if staleness_bound is not None:
            message["staleness_bound"] = staleness_bound
        if prefer_replica:
            message["prefer_replica"] = True
        token_epoch, min_lsn = self.session_token()
        if token_epoch is not None:
            message["token_epoch"] = token_epoch
            message["min_lsn"] = min_lsn
        response = self._request(message)
        self._observe_stamp(response.get("epoch"), response.get("applied_lsn"))
        return RemoteAnswer(
            columns=list(response.get("columns", ())),
            rows=[tuple(row) for row in response.get("rows", ())],
            complete=bool(response.get("complete", True)),
            degraded_reason=response.get("degraded_reason"),
            completeness_estimate=response.get("completeness_estimate"),
            staleness=response.get("staleness"),
            applied_lsn=response.get("applied_lsn"),
            served_by=response.get("served_by"),
            replica_lag=response.get("replica_lag"),
            epoch=response.get("epoch"),
        )

    def insert(
        self, relation: str, values: list, budget: float | None = None
    ) -> _WriteAck:
        message: dict[str, Any] = {
            "op": "insert",
            "relation": relation,
            "values": list(values),
            "seq": self._next_idem_seq(),
        }
        if budget is not None:
            message["budget"] = budget
        response = self._request(message)
        self._observe_stamp(response.get("epoch"), response.get("lsn"))
        return _WriteAck(
            lsn=int(response["lsn"]),
            duplicate=bool(response.get("duplicate")),
            epoch=response.get("epoch"),
            served_by=response.get("served_by"),
        )

    def delete_eq(
        self, relation: str, column: str, value, budget: float | None = None
    ) -> _WriteAck:
        message: dict[str, Any] = {
            "op": "delete_eq",
            "relation": relation,
            "column": column,
            "value": value,
            "seq": self._next_idem_seq(),
        }
        if budget is not None:
            message["budget"] = budget
        response = self._request(message)
        self._observe_stamp(response.get("epoch"), response.get("lsn"))
        return _WriteAck(
            lsn=int(response["lsn"]),
            duplicate=bool(response.get("duplicate")),
            deleted=response.get("deleted"),
            epoch=response.get("epoch"),
            served_by=response.get("served_by"),
        )
