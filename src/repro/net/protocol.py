"""The wire protocol: length-prefixed, versioned JSON frames.

One frame is::

    4 bytes   big-endian unsigned payload length (version byte + body)
    1 byte    protocol version (:data:`PROTOCOL_VERSION`)
    N bytes   UTF-8 JSON body

Requests carry ``{"id": <int>, "op": <str>, ...}``; responses echo the
request ``id`` and carry ``{"ok": <bool>, ...}``.  The body stays JSON
(not a binary row format) because every value the engine serves is a
JSON scalar already — the length prefix is what matters for framing
over a stream socket, and the version byte is what lets the server
reject a client from a future protocol before parsing anything.

Query serialization mirrors the template/bind model exactly: a query
is its template's name plus one condition per slot, so the server
rebinds through :meth:`~repro.engine.template.QueryTemplate.bind` and
gets all of bind's validation for free.  Unbounded interval endpoints
(the :data:`~repro.engine.datatypes.MINUS_INFINITY` /
:data:`~repro.engine.datatypes.PLUS_INFINITY` sentinels) are encoded
as the JSON strings ``"-inf"`` / ``"+inf"`` under a marker key, since
JSON has no infinity.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.engine.datatypes import Infinity, MINUS_INFINITY, PLUS_INFINITY
from repro.engine.predicate import (
    EqualityDisjunction,
    Interval,
    IntervalDisjunction,
)
from repro.errors import NetProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "encode_query",
    "decode_query",
    "encode_result",
]

#: v2 added the session monotonic-read token: queries may carry
#: ``min_lsn``/``token_epoch`` and responses stamp the serving
#: ``epoch``, so a client session never observes a database state older
#: than one it already saw (within an epoch).  The fields are optional,
#: so v1 peers interoperate unchanged — both versions are accepted.
PROTOCOL_VERSION = 2

SUPPORTED_VERSIONS = frozenset({1, 2})

#: Upper bound on one frame's payload — a corrupted or hostile length
#: prefix must not make the server allocate gigabytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# -- framing -----------------------------------------------------------------


def encode_frame(message: dict[str, Any]) -> bytes:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    payload = bytes([PROTOCOL_VERSION]) + body
    if len(payload) > MAX_FRAME_BYTES:
        raise NetProtocolError(f"frame of {len(payload)} bytes exceeds the cap")
    return _LENGTH.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or None on a clean EOF at a frame
    boundary.  EOF mid-frame is a protocol error: the peer died talking."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise NetProtocolError(
                    f"connection closed mid-frame ({count - remaining} of "
                    f"{count} bytes read)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; returns None on clean EOF before a frame starts."""
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise NetProtocolError(f"invalid frame length {length}")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise NetProtocolError("connection closed between header and payload")
    if payload[0] not in SUPPORTED_VERSIONS:
        raise NetProtocolError(
            f"unsupported protocol version {payload[0]} "
            f"(this end speaks {sorted(SUPPORTED_VERSIONS)})"
        )
    try:
        message = json.loads(payload[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetProtocolError(f"unparseable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise NetProtocolError("frame body must be a JSON object")
    return message


# -- query serialization -----------------------------------------------------

_NEG_INF = {"inf": "-"}
_POS_INF = {"inf": "+"}


def _encode_bound(value: Any) -> Any:
    if isinstance(value, Infinity):
        return _NEG_INF if value.sign < 0 else _POS_INF
    return value


def _decode_bound(value: Any) -> Any:
    if isinstance(value, dict) and "inf" in value:
        return MINUS_INFINITY if value["inf"] == "-" else PLUS_INFINITY
    return value


def encode_query(query) -> dict[str, Any]:
    """A bound query as a wire payload: template name + per-slot conditions."""
    conditions = []
    for condition in query.cselect.conditions:
        if isinstance(condition, EqualityDisjunction):
            conditions.append(
                {"column": condition.column, "values": list(condition.values)}
            )
        elif isinstance(condition, IntervalDisjunction):
            conditions.append(
                {
                    "column": condition.column,
                    "intervals": [
                        [
                            _encode_bound(iv.low),
                            _encode_bound(iv.high),
                            iv.low_inclusive,
                            iv.high_inclusive,
                        ]
                        for iv in condition.intervals
                    ],
                }
            )
        else:  # pragma: no cover - the condition taxonomy is closed
            raise NetProtocolError(
                f"cannot serialize condition type {type(condition).__name__}"
            )
    return {"template": query.template.name, "conditions": conditions}


def decode_query(catalog, payload: dict[str, Any]):
    """Rebind a wire payload into a concrete query against ``catalog``.

    Bind-time validation (slot count, column/form matching) applies
    unchanged, so malformed remote queries fail exactly like malformed
    local ones — with a :class:`~repro.errors.ConditionError`.
    """
    try:
        template = catalog.template(payload["template"])
    except KeyError as exc:  # defensive: catalog raises CatalogError itself
        raise NetProtocolError(f"unknown template {payload['template']!r}") from exc
    conditions = []
    for entry in payload.get("conditions", ()):
        if "values" in entry:
            conditions.append(EqualityDisjunction(entry["column"], entry["values"]))
        elif "intervals" in entry:
            conditions.append(
                IntervalDisjunction(
                    entry["column"],
                    [
                        Interval(
                            _decode_bound(low),
                            _decode_bound(high),
                            bool(low_inc),
                            bool(high_inc),
                        )
                        for low, high, low_inc, high_inc in entry["intervals"]
                    ],
                )
            )
        else:
            raise NetProtocolError(
                f"condition on {entry.get('column')!r} has neither values "
                f"nor intervals"
            )
    return template.bind(conditions)


# -- result serialization ----------------------------------------------------


def encode_result(
    result,
    served_by: str | None = None,
    replica_lag: int | None = None,
    epoch: int | None = None,
    applied_lsn: int | None = None,
) -> dict[str, Any]:
    """A :class:`~repro.core.executor.PMVQueryResult` as a response
    envelope: user-visible rows as value tuples plus the full honesty
    surface (complete / degraded_reason / staleness / applied_lsn), the
    serving node's identity for routed reads, and (v2) the serving
    epoch that scopes the client's monotonic-read token."""
    envelope: dict[str, Any] = {
        "ok": True,
        "columns": list(result.query.template.select_list),
        "rows": [list(row.values) for row in result.user_rows()],
        "complete": result.complete,
        "degraded_reason": result.degraded_reason,
        "completeness_estimate": result.completeness_estimate,
        "staleness": result.staleness,
        "applied_lsn": result.applied_lsn,
    }
    if served_by is not None:
        envelope["served_by"] = served_by
    if replica_lag is not None:
        envelope["replica_lag"] = replica_lag
    if epoch is not None:
        envelope["epoch"] = epoch
    if applied_lsn is not None:
        # The routing tier's serving-watermark stamp (the node's applied
        # LSN when the view itself carries none) wins over the raw
        # result field — it is what the session token ratchets on.
        envelope["applied_lsn"] = applied_lsn
    return envelope
