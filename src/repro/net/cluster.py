"""The cluster front-end: one endpoint over a replicated fleet.

:class:`ClusterFrontEnd` is what the socket server actually serves
through.  It composes three existing layers without changing their
contracts:

- **reads** go through the :class:`~repro.qos.gate.ServingGate`
  (admission, deadlines, governor) on the primary, or — when the
  client opts into bounded staleness — round-robin across
  :class:`~repro.replication.node.ReplicaNode` standbys, with the
  staleness stamp surfaced in the response envelope and an automatic
  fall-back to the primary when every replica is beyond the bound
  (the read-replica pattern: offload, never lie);
- **writes** go to the current primary under gate admission, carry the
  client's idempotency key into the WAL, and are acknowledged only
  once the semi-sync watermark covers them (some replica durably
  applied the statement) — so an acked write survives failover by
  protocol;
- **failover** is the existing
  :class:`~repro.replication.FailoverCoordinator` protocol; the
  front-end reacts by adopting the promoted primary's epoch and
  rebuilding its dedup table from the promoted WAL
  (:meth:`~repro.replication.node.PrimaryNode.idempotency_keys`),
  which by the semi-sync rule contains every key the old timeline
  acknowledged.  Clients see a retryable blip, never a duplicate.

At-most-once writes, end to end: the client stamps each DML with
``client_id:seq``; the front-end's :class:`IdempotencyTable` answers
retries without re-applying; the key rides in the WAL payload so the
table is rebuildable from whichever log survives.  A write that was
applied but never acked (connection dropped mid-response) is the case
the whole mechanism exists for — the retry hits the dedup table (or,
post-failover, the rebuilt one) and acks without a second application.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.core.metrics import NetMetrics
from repro.errors import (
    OverloadError,
    ReplicaLagError,
    WriteUnacknowledgedError,
)

__all__ = ["ClusterFrontEnd", "IdempotencyTable"]


class IdempotencyTable:
    """Dedup table for DML keyed on the client's ``client_id:seq``.

    In-memory for speed; authoritative only together with the WAL —
    :meth:`rebuild` rescans a promoted node's log after failover, so
    the table never outlives the timeline that produced it.
    """

    def __init__(self) -> None:
        self._applied: dict[str, int] = {}
        self._mutex = threading.Lock()

    def seen(self, key: str) -> int | None:
        """The LSN ``key`` was applied at, or None if never applied."""
        with self._mutex:
            return self._applied.get(key)

    def record(self, key: str, lsn: int) -> None:
        with self._mutex:
            self._applied[key] = lsn

    def rebuild(self, keys: dict[str, int]) -> int:
        """Replace the table with the WAL-derived key set; returns its size."""
        with self._mutex:
            self._applied = dict(keys)
            return len(self._applied)

    def __len__(self) -> int:
        with self._mutex:
            return len(self._applied)


class ClusterFrontEnd:
    """Routes reads and writes over a (possibly replicated) fleet.

    Two shapes:

    - **single-node**: ``ClusterFrontEnd(gate=gate)`` — everything goes
      through the gate; writes still get idempotency-key dedup (keys
      land in the WAL when one is attached) but there is no semi-sync
      ack and no failover;
    - **replicated**: ``ClusterFrontEnd(gate=gate, coordinator=coord)``
      — the coordinator owns primary identity; bounded-staleness reads
      round-robin over ``coordinator.replicas``.

    ``ship_on_write`` (default True) pumps the primary's WAL after each
    write so the semi-sync ack is reachable without a background pump —
    deterministic for tests and the bench.
    """

    def __init__(
        self,
        gate,
        coordinator=None,
        metrics: NetMetrics | None = None,
        staleness_bound: int = 0,
        ship_on_write: bool = True,
        ack_retries: int = 3,
    ) -> None:
        self.gate = gate
        self.coordinator = coordinator
        self.metrics = metrics or NetMetrics()
        self.staleness_bound = staleness_bound
        self.ship_on_write = ship_on_write
        self.ack_retries = ack_retries
        self.dedup = IdempotencyTable()
        self._write_mutex = threading.Lock()
        self._rr = 0
        self._epoch = coordinator.primary.epoch if coordinator is not None else 0
        if coordinator is not None:
            coordinator.add_failover_listener(self._on_failover)

    # -- fleet identity --------------------------------------------------------

    @property
    def database(self):
        if self.coordinator is not None:
            return self.coordinator.primary.database
        return self.gate.manager.database

    @property
    def epoch(self) -> int:
        return self._epoch

    def _on_failover(self, new_primary) -> None:
        """Adopt a promoted primary: its WAL is the new timeline's
        ground truth for which client writes happened."""
        with self._write_mutex:
            self._adopt(new_primary)

    def _adopt(self, primary) -> None:
        rebuilt = self.dedup.rebuild(primary.idempotency_keys())
        self._epoch = primary.epoch
        self.metrics.record_dedup_rebuild()
        del rebuilt  # size available via len(self.dedup) when needed

    def _maybe_adopt(self) -> None:
        """Catch up with a failover this front-end has not seen yet
        (defensive: the listener normally already adopted it)."""
        if self.coordinator is not None and self.coordinator.primary.epoch != self._epoch:
            self._adopt(self.coordinator.primary)

    # -- reads -----------------------------------------------------------------

    def execute_query(
        self,
        query,
        deadline=None,
        staleness_bound: int | None = None,
        prefer_replica: bool = False,
        min_lsn: int | None = None,
        token_epoch: int | None = None,
    ) -> dict[str, Any]:
        """Run one read; returns ``(result, served_by, replica_lag,
        epoch)``-shaped metadata alongside the result (as a dict for
        the server to envelope).

        ``prefer_replica`` with a staleness bound routes to a standby;
        a standby beyond the bound falls back to the primary path, so
        the client always gets an answer within its freshness contract.

        ``min_lsn`` is the session's monotonic-read token: a replica
        whose applied watermark trails it would show the session an
        older state than one it already observed, so the read falls
        back to the primary instead.  The token is only honoured when
        ``token_epoch`` matches the current serving epoch — a
        pre-failover LSN floor is meaningless against the promoted
        timeline (and could even be unsatisfiable).
        """
        if token_epoch is not None and token_epoch != self._epoch:
            min_lsn = None
        if prefer_replica and self.coordinator is not None and self.coordinator.replicas:
            bound = self.staleness_bound if staleness_bound is None else staleness_bound
            replica = self._pick_replica()
            replica.note_watermark(self.database.wal.last_lsn)
            if min_lsn is not None and replica.applied_lsn < min_lsn:
                self.metrics.record_monotonic_fallback()
            else:
                try:
                    result = replica.serve(
                        query, staleness_bound=bound, deadline=deadline
                    )
                    self.metrics.record_replica_read()
                    return {
                        "result": result,
                        "served_by": replica.name,
                        "replica_lag": replica.lag,
                        "epoch": self._epoch,
                        # Eagerly-maintained views carry no watermark of
                        # their own (fresh by construction), so the
                        # serving node's applied LSN is the answer's
                        # honest logical timestamp; async answers keep
                        # their (older) view watermark.
                        "applied_lsn": (
                            replica.applied_lsn
                            if result.applied_lsn is None
                            else result.applied_lsn
                        ),
                    }
                except ReplicaLagError:
                    self.metrics.record_replica_read(fallback=True)
        result = self.gate.execute(query, deadline=deadline)
        served_by = (
            self.coordinator.primary.name if self.coordinator is not None else "primary"
        )
        return {
            "result": result,
            "served_by": served_by,
            "replica_lag": None,
            "epoch": self._epoch,
            "applied_lsn": (
                self.database.current_lsn()
                if result.applied_lsn is None
                else result.applied_lsn
            ),
        }

    def _pick_replica(self):
        replicas = self.coordinator.replicas
        self._rr = (self._rr + 1) % len(replicas)
        return replicas[self._rr]

    # -- writes ----------------------------------------------------------------

    def apply_write(
        self,
        idem: str | None,
        apply: Callable[[Any, str | None], int],
        deadline=None,
    ) -> dict[str, Any]:
        """Apply one DML statement at most once.

        ``apply(database, idem)`` performs the statement against the
        current primary's database and returns its WAL LSN.  The
        sequence — dedup check, admission, apply, dedup record, ship to
        the semi-sync ack — runs under the write mutex so a retry never
        races its original.  Raises
        :class:`~repro.errors.WriteUnacknowledgedError` when no replica
        confirms the write (the statement *is* applied and recorded;
        the client's retry acks it via the dedup table).
        """
        with self._write_mutex:
            self._maybe_adopt()
            if idem is not None:
                lsn = self.dedup.seen(idem)
                if lsn is not None:
                    # Already applied (possibly on the previous timeline,
                    # surviving via the WAL rebuild): just make sure the
                    # semi-sync ack covers it, never apply again.
                    self.metrics.record_dedup_hit()
                    self._await_ack(lsn)
                    return self._write_envelope(lsn, duplicate=True)
            slot = self.gate.admit_write(deadline=deadline)
            try:
                lsn = apply(self.database, idem)
            finally:
                slot.release()
            self.metrics.record_write_applied()
            if idem is not None:
                self.dedup.record(idem, lsn)
            self._await_ack(lsn)
            return self._write_envelope(lsn, duplicate=False)

    def _write_envelope(self, lsn: int, duplicate: bool) -> dict[str, Any]:
        served_by = (
            self.coordinator.primary.name if self.coordinator is not None else "primary"
        )
        return {
            "ok": True,
            "duplicate": duplicate,
            "lsn": lsn,
            "epoch": self._epoch,
            "served_by": served_by,
        }

    def _await_ack(self, lsn: int) -> None:
        """Pump replication until the semi-sync watermark covers ``lsn``."""
        if self.coordinator is None:
            return
        primary = self.coordinator.primary
        if primary.acked_lsn >= lsn or not self.ship_on_write:
            return
        for _ in range(self.ack_retries):
            primary.ship()
            if primary.acked_lsn >= lsn:
                return
        raise WriteUnacknowledgedError(
            f"write at LSN {lsn} applied but unacknowledged "
            f"(semi-sync watermark {primary.acked_lsn})"
        )

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        report = self.gate.stats()
        report.update(self.metrics.snapshot())
        report["dedup_keys"] = len(self.dedup)
        report["epoch"] = self._epoch
        if self.coordinator is not None:
            report["cluster"] = self.coordinator.stats()
        return report


def classify_error(exc: BaseException) -> dict[str, Any]:
    """Map an engine/cluster exception to a response-envelope error.

    ``retryable`` means the client may safely try again (idempotent
    ops always; DML because of idempotency keys): fenced/deposed
    primaries, replication hiccups (including a lease-isolated node —
    :class:`~repro.errors.NodeIsolatedError` is a ``ReplicationError``),
    socket timeouts, unacknowledged writes, and sheds (which also set
    ``shed`` so clients can apply backpressure policy instead of
    hammering).
    """
    from repro.errors import (
        NetTimeoutError,
        ReplicationError,
        StaleEpochError,
        WALFencedError,
    )

    if isinstance(exc, OverloadError):
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "retryable": True,
            "shed": True,
            "reason": exc.reason,
        }
    retryable = isinstance(
        exc,
        (
            WALFencedError,
            StaleEpochError,
            ReplicationError,
            WriteUnacknowledgedError,
            NetTimeoutError,
        ),
    )
    return {
        "ok": False,
        "error": str(exc),
        "error_type": type(exc).__name__,
        "retryable": retryable,
        "shed": False,
    }
