"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing built-in
exceptions.  The hierarchy is split along the package's two halves: the
RDBMS substrate (``repro.engine``) and the partial-materialized-view
layer (``repro.core``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Engine errors
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for errors raised by the RDBMS substrate."""


class SchemaError(EngineError):
    """A schema is malformed or an operation does not match a schema."""


class TypeMismatchError(SchemaError):
    """A value does not match the declared column type."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the schema."""


class CatalogError(EngineError):
    """A catalog object is missing or duplicated."""


class StorageError(EngineError):
    """A page/heap-level invariant was violated."""


class PageFullError(StorageError):
    """A slotted page has no room for the requested record."""


class BufferPoolError(EngineError):
    """The buffer pool could not satisfy a request (e.g. all pages pinned)."""


class IndexError_(EngineError):
    """An index operation failed (named with a trailing underscore to
    avoid shadowing the built-in :class:`IndexError`)."""


class PlanningError(EngineError):
    """The planner could not produce a plan for a query."""


class ParseError(EngineError):
    """The template/query parser rejected its input."""


class WALCorruptionError(EngineError):
    """The write-ahead log file is damaged beyond a torn final line
    (e.g. an unparseable record followed by further records)."""


class WALChecksumError(WALCorruptionError):
    """A log record's stored CRC32 disagrees with its body — bit rot,
    detected on recovery replay or on the replication ship path."""


class WALFencedError(EngineError):
    """An append was attempted on a fenced log: a newer epoch has been
    promoted and this instance must not acknowledge further writes."""


class DiskFullError(StorageError, OSError):
    """The disk has no space for a durable mutation (ENOSPC).

    Raised *before* the engine mutates anything (reserve-before-mutate
    probes at the WAL-append, segment-rotate, page-write, and outbox
    spill-write sites), so a refused statement simply never happened:
    queries keep serving PMV-backed answers and the next successful
    probe clears the read-only condition automatically.

    Doubles as an :class:`OSError` with ``errno`` set to ``ENOSPC`` so
    callers written against the OS-level contract see the same shape.
    """

    def __init__(self, message: str, site: str = "") -> None:
        import errno as _errno

        super().__init__(message)
        self.errno = _errno.ENOSPC
        self.strerror = message
        self.site = site


class OutboxSpillError(StorageError):
    """A spilled CDC feed record failed its CRC32 check on re-read —
    the spill file is damaged; the feed must be rebuilt from WAL
    replay rather than trusted."""


class SnapshotCorruptionError(EngineError):
    """A snapshot document's stored CRC32 disagrees with its contents;
    loading it would silently install garbage, so it fails loudly."""


class FaultInjectionError(EngineError):
    """An injected, recoverable fault (see :mod:`repro.faults`).

    Raised by fault hooks in ERROR mode; the engine treats it like any
    other statement failure (clean abort), which is exactly what the
    torture harness verifies."""

    def __init__(self, message: str, site: str = "", occurrence: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.occurrence = occurrence


class TransactionError(EngineError):
    """A transaction was used incorrectly (e.g. after commit)."""


class LockError(TransactionError):
    """A lock could not be acquired."""


class DeadlockError(LockError):
    """Lock acquisition was aborted to break a deadlock."""


# ---------------------------------------------------------------------------
# PMV-layer errors
# ---------------------------------------------------------------------------


class PMVError(ReproError):
    """Base class for errors raised by the partial-materialized-view layer."""


class ConditionError(PMVError):
    """A condition part or selection condition is malformed."""


class DiscretizationError(PMVError):
    """Dividing values / basic intervals are invalid (overlap, gaps, ...)."""


class ViewDefinitionError(PMVError):
    """A (partial) materialized view definition is invalid."""


class ViewCapacityError(PMVError):
    """A PMV capacity parameter (F, UB, N) is invalid."""


class MaintenanceError(PMVError):
    """Deferred maintenance failed or was invoked incorrectly."""


# ---------------------------------------------------------------------------
# QoS / overload-protection errors
# ---------------------------------------------------------------------------


class QoSError(ReproError):
    """Base class for errors raised by the overload-protection layer."""


class OverloadError(QoSError):
    """The admission controller shed this query instead of queueing it.

    Carries the shed ``reason`` (``"queue_full"``, ``"rate"``,
    ``"timeout"``, ``"shedding"``) so clients and benchmarks can
    distinguish the shedding policies.
    """

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class WorkloadError(ReproError):
    """A workload/generator parameter is invalid."""


# ---------------------------------------------------------------------------
# Replication errors
# ---------------------------------------------------------------------------


class ReplicationError(ReproError):
    """Base class for errors raised by the replication layer."""


class StaleEpochError(ReplicationError):
    """A shipped record (or an operation) carried an epoch older than
    the receiver's — the sender is a fenced, deposed primary."""


class ReplicaLagError(ReplicationError):
    """A replica read was refused because the replica's applied
    watermark trails the primary by more than the staleness bound.

    Carries ``lag`` (records behind) and ``bound`` so routers can
    decide whether to retry elsewhere or surface the refusal."""

    def __init__(self, message: str, lag: int = 0, bound: int = 0) -> None:
        super().__init__(message)
        self.lag = lag
        self.bound = bound


class NodeIsolatedError(ReplicationError):
    """A node refused to serve because its coordinator lease expired.

    A primary that cannot renew its lease must assume it has been (or
    is about to be) deposed: serving reads would risk staleness stamps
    that silently lie about how far behind the authoritative timeline
    the answer is, and accepting writes would risk a second node
    writing in the same era.  Refusal is retryable — the client's retry
    lands on the promoted primary (or succeeds here after the partition
    heals and the lease renews)."""


# ---------------------------------------------------------------------------
# Network serving tier errors
# ---------------------------------------------------------------------------


class NetError(ReproError):
    """Base class for errors raised by the network serving tier."""


class NetProtocolError(NetError):
    """A wire frame was malformed, oversized, from an unsupported
    protocol version, or cut off mid-frame."""


class NetTimeoutError(NetError):
    """A socket operation timed out talking to the server.

    A typed, *retryable* wrapper for ``socket.timeout``: the request
    may or may not have been applied (the classic in-doubt window), so
    only idempotent operations — queries, and DML carrying an
    idempotency key — may be retried, which is exactly what the client
    driver does."""


class RetryExhaustedError(NetError):
    """The client driver gave up after its retry budget.

    Carries ``attempts`` and the final ``cause`` so callers can tell a
    dead server from a persistently-overloaded one."""

    def __init__(self, message: str, attempts: int = 0, cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.cause = cause


class WriteUnacknowledgedError(NetError):
    """A write was applied locally but could not reach the semi-sync
    acknowledgement watermark (no replica confirmed it).  Retryable:
    the idempotency key guarantees the retry acks without re-applying."""


# ---------------------------------------------------------------------------
# Control-exception discipline
# ---------------------------------------------------------------------------

CONTROL_EXCEPTIONS: tuple[type[BaseException], ...] = (
    KeyboardInterrupt,
    SystemExit,
    GeneratorExit,
)
"""Exception types that are *control flow*, not statement failures.

Fail-safe handlers (abort notification, the maintenance fail-safe
clear) must let these propagate untouched instead of treating them as
an organic error at the site.  ``SimulatedCrash`` needs no entry — it
derives from :class:`BaseException` precisely so no ``except
Exception`` handler can see it."""


def is_control_exception(exc: BaseException) -> bool:
    """Whether ``exc`` is control flow that fail-safe paths must not
    intercept.

    Covers the interpreter's control exceptions and the fault/scheduler
    harness's control types (recognized structurally, so the engine
    never imports the test-only modules)."""
    if isinstance(exc, CONTROL_EXCEPTIONS):
        return True
    # repro.faults control types: SimulatedCrash is a BaseException and
    # never reaches Exception handlers; SchedDeadlock means the test
    # scheduler wedged — an infrastructure condition, not a statement
    # failure, so fail-safes must not fire on it.
    return type(exc).__name__ in ("SimulatedCrash", "SchedDeadlock")
