"""Run-forever endurance drill: bounded resources under ENOSPC abuse.

Where :mod:`repro.bench.torture` asks "does one injected fault ever
lose an acked write?", this drill asks the run-forever question: does a
long, write-heavy, CDC-maintained workload keep its footprint *bounded*
— WAL bytes on disk, outbox records in memory — and does a full disk
degrade the instance instead of corrupting it?

One seeded run drives ~600 mixed operations against a **segmented** WAL
(small segments so rotation and checkpoint-driven reclaim happen many
times) with a spill-to-disk change outbox (small resident window so the
feed actually spills) and a batch-draining async maintainer.  Two
sustained ENOSPC windows are scheduled mid-run via the fault plan — one
on the WAL reserve probe (``wal.enospc``), one on the data-volume probe
(``disk.full``) — each a dozen consecutive arrivals, modelling a disk
that stays full for a while and then clears.

The drill asserts, while running:

- every refusal inside a window is a typed
  :class:`~repro.errors.DiskFullError` with **zero durable effect**
  (the WAL LSN does not move);
- queries keep serving through both windows (read-only degradation);
- the instance auto-recovers after each window (first successful probe
  clears ``disk_full``), at least twice.

And at the end, after draining to convergence and a final checkpoint:

- segments were rotated *and* reclaimed; the live WAL directory is
  back down to a few segments (bounded log);
- the outbox spilled (``spilled_total > 0``) and its resident window
  stayed bounded (``peak_resident`` near the spill threshold);
- the PMV answer equals full execution for every probed binding;
- restarting from a mid-run snapshot + log suffix (which may read
  reclaimed segments back from the archive) reproduces exactly the
  acked state: the unique-id ledger shows zero lost and zero
  duplicated acked writes.

Run the CI smoke::

    python -m repro.bench.endurance --ops 600 --report ENDURANCE_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field

from repro.core import Discretization, PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
    WriteAheadLog,
)
from repro.engine.snapshot import (
    checkpoint as wal_checkpoint,
    recover_from_snapshot,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.errors import DiskFullError
from repro.faults import FaultInjector, FaultMode, FaultPlan, FaultSpec, contents_of

__all__ = ["EnduranceReport", "run_endurance", "main"]

DEFAULT_OPS = 600
SEGMENT_BYTES = 4096
SPILL_THRESHOLD = 32
DRAIN_BATCH = 8
DRAIN_EVERY = 50
CHECKPOINT_EVERY = 75
WINDOW_LEN = 12
_RELATIONS = ("r", "s")


@dataclass
class EnduranceReport:
    """Everything the CI artifact needs to explain a red run."""

    ops: int = 0
    seed: int = 0
    acked_writes: int = 0
    refusals: int = 0
    refusal_sites: dict = field(default_factory=dict)
    recoveries: int = 0
    queries_served_during_refusal: int = 0
    segments_rotated: int = 0
    segments_reclaimed: int = 0
    live_segments_final: int = 0
    live_wal_bytes_final: int = 0
    live_wal_bytes_peak: int = 0
    archive_bytes_final: int = 0
    archive_reads: int = 0
    spilled_total: int = 0
    peak_resident: int = 0
    spill_enospc: int = 0
    drain_batches: int = 0
    checkpoints: int = 0
    failures: list = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def _make_template() -> QueryTemplate:
    return QueryTemplate(
        name="eq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def _enospc_windows() -> FaultPlan:
    """Two sustained disk-full windows: ERROR-mode specs never disarm
    the injector, so consecutive occurrences model a disk that stays
    full across many statements before space is freed."""
    specs = []
    for occ in range(80, 80 + WINDOW_LEN):
        specs.append(FaultSpec("wal.enospc", occ, FaultMode.ERROR))
    for occ in range(180, 180 + WINDOW_LEN):
        specs.append(FaultSpec("disk.full", occ, FaultMode.ERROR))
    return FaultPlan(specs)


def _setup(workdir: str, injector: FaultInjector):
    wal_dir = os.path.join(workdir, "wal")
    wal = WriteAheadLog(
        path=wal_dir,
        segment_bytes=SEGMENT_BYTES,
        archive_max_bytes=512 * 1024,
    )
    wal.fault_check = injector.check
    database = Database(wal=wal)
    database.disk.fault_check = injector.check
    database.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    database.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    database.create_index("r_c", "r", ["c"])
    database.create_index("s_d", "s", ["d"])
    template = _make_template()
    manager = PMVManager(database)
    manager.create_view(
        template,
        Discretization(template),
        tuples_per_entry=4,
        max_entries=12,
    )
    from repro.cdc import ChangeOutbox

    outbox = ChangeOutbox(
        fault_check=injector.check,
        spill_threshold=SPILL_THRESHOLD,
        spill_path=os.path.join(workdir, "outbox.spill"),
    )
    maintainer = manager.enable_async_maintenance(
        outbox=outbox, drain_batch=DRAIN_BATCH
    )
    return database, manager, template, maintainer, outbox, wal_dir


def run_endurance(
    ops: int = DEFAULT_OPS, seed: int = 0, verbose: bool = False
) -> EnduranceReport:
    started = time.monotonic()
    report = EnduranceReport(ops=ops, seed=seed)
    workdir = tempfile.mkdtemp(prefix="pmv-endurance-")
    injector = FaultInjector(_enospc_windows())
    try:
        database, manager, template, maintainer, outbox, wal_dir = _setup(
            workdir, injector
        )
        rng = random.Random(seed * 6367 + 11)
        acked_ids: set[int] = set()
        next_id = 1
        snapshots: list[str] = []
        refusal_sites: dict[str, int] = {}

        def probe_query():
            return template.bind(
                [
                    EqualityDisjunction("r.f", [rng.randrange(4)]),
                    EqualityDisjunction("s.g", [rng.randrange(3)]),
                ]
            )

        def sample_wal() -> None:
            stats = database.wal.resource_stats()
            report.live_wal_bytes_peak = max(
                report.live_wal_bytes_peak, stats["live_bytes"]
            )

        for op_no in range(ops):
            if op_no and op_no % DRAIN_EVERY == 0:
                maintainer.drain(max_records=3 * DRAIN_BATCH)
            if op_no and op_no % CHECKPOINT_EVERY == 0:
                snapshots.append(snapshot_to_json(wal_checkpoint(database)))
                report.checkpoints += 1
                sample_wal()
            roll = rng.random()
            lsn_before = database.wal.last_lsn
            try:
                if roll < 0.50:  # insert (the ledger relation is r)
                    if rng.random() < 0.75:
                        database.insert(
                            "r",
                            (next_id, rng.randrange(6), rng.randrange(4), f"a{next_id}"),
                        )
                        acked_ids.add(next_id)
                        next_id += 1
                    else:
                        database.insert(
                            "s",
                            (rng.randrange(6), rng.randrange(3), f"e{rng.randrange(99)}"),
                        )
                    report.acked_writes += 1
                elif roll < 0.62:  # delete
                    rows = list(database.catalog.relation("r").scan())
                    if rows:
                        row_id, row = rows[rng.randrange(len(rows))]
                        database.delete("r", row_id)
                        acked_ids.discard(row["id"])
                        report.acked_writes += 1
                elif roll < 0.72:  # update (never touches the id ledger column)
                    rows = list(database.catalog.relation("r").scan())
                    if rows:
                        row_id, _row = rows[rng.randrange(len(rows))]
                        database.update("r", row_id, a=f"renamed-{rng.randrange(999)}")
                        report.acked_writes += 1
                else:  # query through the PMV
                    manager.execute(probe_query())
            except DiskFullError as exc:
                report.refusals += 1
                refusal_sites[exc.site] = refusal_sites.get(exc.site, 0) + 1
                if database.wal.last_lsn != lsn_before:
                    report.failures.append(
                        f"op {op_no}: disk-full refusal advanced the WAL "
                        f"({lsn_before} -> {database.wal.last_lsn})"
                    )
                if not database.disk_full:
                    report.failures.append(
                        f"op {op_no}: refusal did not mark the instance disk_full"
                    )
                # Read-only degradation: the same instant the write was
                # refused, a query must still serve.
                try:
                    manager.execute(probe_query())
                    report.queries_served_during_refusal += 1
                except Exception as exc2:  # noqa: BLE001 - recorded, not raised
                    report.failures.append(
                        f"op {op_no}: query failed during disk-full window: {exc2!r}"
                    )
            except Exception as exc:  # noqa: BLE001 - any other error is a failure
                report.failures.append(f"op {op_no}: unexpected {exc!r}")
                break

        # Steady state: drain everything, then one final checkpoint to
        # drive reclaim down to the minimum live log.
        maintainer.drain_to_convergence()
        snapshots.append(snapshot_to_json(wal_checkpoint(database)))
        report.checkpoints += 1
        sample_wal()

        report.refusal_sites = refusal_sites
        report.recoveries = database.disk_full_recoveries
        stats = database.wal.resource_stats()
        report.segments_rotated = stats["segments_rotated"]
        report.segments_reclaimed = stats["segments_reclaimed"]
        report.live_segments_final = stats["live_segments"]
        report.live_wal_bytes_final = stats["live_bytes"]
        report.archive_bytes_final = stats["archived_bytes"]
        box = outbox.stats()
        report.spilled_total = box["spilled_total"]
        report.peak_resident = box["peak_resident"]
        report.spill_enospc = box["spill_enospc"]
        report.drain_batches = maintainer.drain_batches

        # -- resource bounds ------------------------------------------------
        if report.refusals == 0 or len(refusal_sites) < 2:
            report.failures.append(
                f"expected refusals from both ENOSPC sites, got {refusal_sites}"
            )
        if report.recoveries < 2:
            report.failures.append(
                f"expected >= 2 disk-full auto-recoveries, got {report.recoveries}"
            )
        if report.segments_rotated == 0 or report.segments_reclaimed == 0:
            report.failures.append(
                "WAL never rotated or never reclaimed "
                f"(rotated={report.segments_rotated}, "
                f"reclaimed={report.segments_reclaimed})"
            )
        if report.live_segments_final > 3:
            report.failures.append(
                "live WAL not bounded after final checkpoint: "
                f"{report.live_segments_final} segments, "
                f"{report.live_wal_bytes_final} bytes"
            )
        if report.spilled_total == 0:
            report.failures.append("outbox never spilled — threshold never reached")
        if report.peak_resident > SPILL_THRESHOLD + WINDOW_LEN + DRAIN_BATCH:
            report.failures.append(
                f"outbox resident window unbounded: peak {report.peak_resident}"
            )

        # -- convergence: PMV answers equal full execution ------------------
        for f_val in range(4):
            for g_val in range(3):
                query = template.bind(
                    [
                        EqualityDisjunction("r.f", [f_val]),
                        EqualityDisjunction("s.g", [g_val]),
                    ]
                )
                got = sorted(
                    (tuple(r.values) for r in manager.execute(query).all_rows()),
                    key=repr,
                )
                want = sorted(
                    (tuple(r.values) for r in database.run(query)), key=repr
                )
                if got != want:
                    report.failures.append(
                        f"post-convergence divergence at f={f_val} g={g_val}: "
                        f"{len(got)} vs {len(want)} tuples"
                    )

        # -- restart: snapshot + log suffix, ledger exactly-once ------------
        # Restart from the *previous* snapshot when there is one: its
        # log suffix spans segments the final checkpoint reclaimed, so
        # replay transparently reads them back from the archive.
        database.wal.close()
        restart_from = snapshots[-2] if len(snapshots) > 1 else snapshots[-1]
        log = WriteAheadLog.load(wal_dir)
        report.archive_reads = log.archive_reads
        recovered = recover_from_snapshot(snapshot_from_json(restart_from), log)
        report.archive_reads = log.archive_reads
        if contents_of(recovered, _RELATIONS) != contents_of(database, _RELATIONS):
            report.failures.append(
                "restart from snapshot + log suffix diverged from the "
                "live pre-shutdown state"
            )
        recovered_ids = [
            row["id"] for _rid, row in recovered.catalog.relation("r").scan()
        ]
        if len(recovered_ids) != len(set(recovered_ids)):
            report.failures.append("ledger: duplicate acked writes after restart")
        if set(recovered_ids) != acked_ids:
            lost = sorted(acked_ids - set(recovered_ids))[:5]
            phantom = sorted(set(recovered_ids) - acked_ids)[:5]
            report.failures.append(
                f"ledger: acked-write loss/phantom after restart "
                f"(lost={lost}, phantom={phantom})"
            )
        outbox.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    report.elapsed_seconds = time.monotonic() - started
    if verbose:
        flag = "ok" if report.ok else "FAILED"
        print(
            f"endurance [{flag}] ops={report.ops} acked={report.acked_writes} "
            f"refusals={report.refusals} recoveries={report.recoveries} "
            f"rotated={report.segments_rotated} reclaimed={report.segments_reclaimed} "
            f"live_bytes={report.live_wal_bytes_final} "
            f"spilled={report.spilled_total} peak_resident={report.peak_resident} "
            f"({report.elapsed_seconds:.1f}s)"
        )
        for failure in report.failures:
            print(f"  FAIL: {failure}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", type=str, default=None,
                        help="write the JSON report here (CI artifact)")
    args = parser.parse_args(argv)
    report = run_endurance(ops=args.ops, seed=args.seed, verbose=True)
    if args.report:
        payload = asdict(report)
        payload["ok"] = report.ok
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
