"""Overload-protection benchmark: the QoS SLO story, measured.

Ramps offered load past saturation twice over the same workload
(PMV-mediated join queries + concurrent writers triggering PMV
maintenance) and contrasts:

- **baseline** (QoS off): every arriving query piles onto the
  statement latch and the lock queues; tail latency grows with offered
  load — the collapse admission control exists to prevent;
- **protected** (QoS on — :class:`repro.qos.ServingGate` with
  admission control, per-query deadlines, and the degradation
  governor): excess load is shed with typed errors at the door, every
  *admitted* query finishes within a bounded time (its deadline budget
  plus bounded queue wait), and queries whose budget runs out return
  the PMV partial answer explicitly marked ``complete=False``.

The protected phase is **replay-verified**: every committed DML
statement and every answer's serialization point (the executor's
``on_o3``, which fires inside a latched section for degraded answers
too) append to a shared op log; the log is then replayed
single-threaded against a fresh database and

- every ``complete=True`` answer must match the reference answer
  **row for row** (multiset equality), and
- every ``complete=False`` answer must be a **multiset subset** of the
  reference answer — a degraded answer may miss rows, never invent or
  duplicate them;
- an answer that differs from the reference while claiming
  ``complete=True`` is a **silently incomplete** answer, and the run
  fails if there is even one.

After the spike, a light cool-down drains the governor's latency
window and the run asserts the state machine stepped back to NORMAL —
degradation is a mode, not a ratchet.

Run it::

    python -m repro.bench.overload --report OVERLOAD_report.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field

from repro.bench.stress import (
    _attach_pmv,
    _bind_query,
    _build_database,
    _rows_key,
)
from repro.engine import Database
from repro.errors import LockError, OverloadError
from repro.qos import (
    AdmissionController,
    Deadline,
    GovernorConfig,
    QoSState,
    ServingGate,
)

__all__ = ["OverloadConfig", "OverloadResult", "run_overload", "main"]

JOIN_TIMEOUT = 120.0


@dataclass(frozen=True)
class OverloadConfig:
    """Shape of one overload run."""

    seed: int = 0
    clients: int = 12
    """Client threads in the saturated phases (offered load)."""
    light_clients: int = 2
    """Client threads in the baseline's light phase."""
    writers: int = 2
    queries_per_client: int = 25
    ops_per_writer: int = 12
    max_concurrency: int = 3
    """Admission: queries allowed inside the engine at once."""
    max_queue_depth: int = 4
    queue_timeout: float = 0.2
    deadline: float = 0.02
    """Per-query budget (seconds) in the protected phase."""
    admitted_p99_slo: float = 1.0
    """The protected phase's hard tail-latency bound (seconds)."""
    cooldown_queries: int = 48
    """Light queries after the spike, draining the latency window."""


@dataclass
class OverloadResult:
    """Outcome of one overload run (serialized into the report)."""

    config: OverloadConfig
    ok: bool = True
    failures: list[str] = field(default_factory=list)
    baseline_light_p99: float = 0.0
    baseline_saturated_p99: float = 0.0
    protected_admitted_p99: float = 0.0
    admitted: int = 0
    shed: int = 0
    shed_by_reason: dict = field(default_factory=dict)
    partial_answers: int = 0
    complete_answers: int = 0
    deadline_abandons: int = 0
    silently_incomplete: int = 0
    subset_violations: int = 0
    queries_checked: int = 0
    changes_replayed: int = 0
    state_transitions: int = 0
    final_state: str = ""
    breaker_opens: int = 0
    swallowed_errors: int = 0
    writer_lock_aborts: int = 0
    thread_errors: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0


def _p99(latencies: list[float]) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    return ordered[int(0.99 * (len(ordered) - 1))]


def _multiset(rows_key: list) -> dict:
    counts: dict = {}
    for key in rows_key:
        counts[key] = counts.get(key, 0) + 1
    return counts


def _is_multisubset(got: list, want: list) -> bool:
    have = _multiset(want)
    for key, count in _multiset(got).items():
        if count > have.get(key, 0):
            return False
    return True


# ---------------------------------------------------------------------------
# Shared run state
# ---------------------------------------------------------------------------


class _Shared:
    """State shared by one phase's worker threads.

    ``oplog`` entries are appended only from inside the statement latch
    (the change listener fires in ``Database._notify``; ``on_o3`` fires
    in a latched section for complete *and* degraded answers), so the
    log order is the phase's serialization order."""

    def __init__(self) -> None:
        self.oplog: list[tuple] = []
        self.queries: dict[str, object] = {}
        self.results: dict[str, dict] = {}
        self.latencies: list[float] = []
        self.latency_mutex = threading.Lock()
        self.errors: list[dict] = []
        self.writer_lock_aborts = 0

    def log_change(self, change, txn) -> None:
        self.oplog.append(
            (
                "change",
                change.kind.value,
                change.relation,
                tuple(change.old_row.values) if change.old_row is not None else None,
                tuple(change.new_row.values) if change.new_row is not None else None,
            )
        )

    def observe(self, seconds: float) -> None:
        with self.latency_mutex:
            self.latencies.append(seconds)

    def record_error(self, name: str, exc: BaseException) -> None:
        self.errors.append(
            {
                "thread": name,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )


def _run_threads(bodies: list[tuple]) -> list[str]:
    """Start, join, and report hung thread names (empty = all joined)."""
    threads = [
        threading.Thread(target=body, args=args, name=name, daemon=True)
        for name, body, args in bodies
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + JOIN_TIMEOUT
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    return [t.name for t in threads if t.is_alive()]


# ---------------------------------------------------------------------------
# Baseline phase: no QoS, latency vs offered load
# ---------------------------------------------------------------------------


def _baseline_client(shared: _Shared, manager, template, config, index: int) -> None:
    rng = random.Random(config.seed * 10_007 + 101 * index)
    try:
        for _ in range(config.queries_per_client):
            query = _bind_query(template, rng)
            started = time.perf_counter()
            manager.execute(query)
            shared.observe(time.perf_counter() - started)
    except BaseException as exc:
        shared.record_error(f"b{index}", exc)


def _baseline_p99(config: OverloadConfig, clients: int, result: OverloadResult) -> float:
    """One unprotected closed-loop run at ``clients`` offered load."""
    database = _build_database()
    manager, template = _attach_pmv(database, config.seed)
    shared = _Shared()
    hung = _run_threads(
        [
            (f"b{i}", _baseline_client, (shared, manager, template, config, i))
            for i in range(clients)
        ]
    )
    if hung:
        result.failures.append(f"baseline hang: {','.join(hung)}")
    result.thread_errors.extend(shared.errors)
    return _p99(shared.latencies)


# ---------------------------------------------------------------------------
# Protected phase: ServingGate + writers + op log
# ---------------------------------------------------------------------------


def _protected_client(shared: _Shared, gate: ServingGate, template, config, index) -> None:
    rng = random.Random(config.seed * 30_013 + 211 * index)
    name = f"p{index}"
    try:
        for k in range(config.queries_per_client):
            query = _bind_query(template, rng)
            qid = f"{name}.{k}"

            def at_o3(_query, qid=qid):
                shared.oplog.append(("query", qid))

            started = time.perf_counter()
            try:
                answer = gate.execute(query, deadline=config.deadline, on_o3=at_o3)
            except OverloadError:
                # Shed at the door: nothing ran, nothing was logged.
                continue
            shared.observe(time.perf_counter() - started)
            shared.queries[qid] = query
            shared.results[qid] = {
                "rows": _rows_key(answer.all_rows()),
                "complete": answer.complete,
                "reason": answer.degraded_reason,
            }
    except BaseException as exc:
        shared.record_error(name, exc)


def _writer_body(shared: _Shared, database: Database, config, index: int) -> None:
    """Insert/delete churn on a private id range (no cross-writer
    races); a LockError is the maintainer's clean abort, counted."""
    rng = random.Random(config.seed * 20_011 + 307 * index)
    next_id = 100_000 * (index + 1)
    owned: dict[int, object] = {}
    try:
        for _ in range(config.ops_per_writer):
            try:
                if rng.random() < 0.6 or not owned:
                    values = (
                        next_id,
                        rng.randrange(6),
                        rng.randrange(4),
                        f"w{index}a{next_id}",
                        "fresh",
                    )
                    owned[next_id] = database.insert("r", values)
                    next_id += 1
                else:
                    victim = rng.choice(sorted(owned))
                    database.delete("r", owned.pop(victim))
            except LockError:
                shared.writer_lock_aborts += 1
    except BaseException as exc:
        shared.record_error(f"w{index}", exc)


def _replay_and_check(shared: _Shared, result: OverloadResult) -> None:
    """Replay the op log single-threaded; complete answers must match
    the reference exactly, degraded answers must be multiset subsets."""
    reference = _build_database()
    for entry in shared.oplog:
        if entry[0] == "change":
            _, kind, relation, old_values, new_values = entry
            if kind == "insert":
                reference.insert(relation, new_values)
            else:  # delete (the overload writers never update)
                row_key = old_values[0]
                deleted = reference.delete_where(
                    relation, lambda row: row["id"] == row_key
                )
                if len(deleted) != 1:
                    result.failures.append(
                        f"replay-delete id {row_key}: {len(deleted)} rows"
                    )
            result.changes_replayed += 1
            continue
        qid = entry[1]
        recorded = shared.results.get(qid)
        if recorded is None:
            # on_o3 fired but the client thread then died before
            # recording — already captured as a thread error.
            continue
        want = _rows_key(reference.run(shared.queries[qid]))
        got = recorded["rows"]
        result.queries_checked += 1
        if recorded["complete"]:
            if got != want:
                result.silently_incomplete += 1
                result.failures.append(
                    f"silently incomplete answer {qid}: "
                    f"{len(got)} rows != {len(want)} reference rows"
                )
        elif not _is_multisubset(got, want):
            result.subset_violations += 1
            result.failures.append(
                f"degraded answer {qid} ({recorded['reason']}) is not a "
                f"subset of the reference answer"
            )


def _cooldown(gate: ServingGate, template, config: OverloadConfig) -> None:
    """Drain the spike out of the governor's latency window with light
    single-threaded traffic, ticking the state machine as we go."""
    rng = random.Random(config.seed * 40_009)
    for _ in range(config.cooldown_queries):
        try:
            gate.execute(_bind_query(template, rng), deadline=1.0)
        except OverloadError:
            pass
        gate.governor.tick()
    deadline = time.monotonic() + 10.0
    while gate.governor.state != QoSState.NORMAL and time.monotonic() < deadline:
        try:
            gate.execute(_bind_query(template, rng), deadline=1.0)
        except OverloadError:
            pass
        gate.governor.tick()
        time.sleep(0.01)


# ---------------------------------------------------------------------------
# One full run
# ---------------------------------------------------------------------------


def run_overload(config: OverloadConfig | None = None, verbose: bool = True) -> OverloadResult:
    """Baseline ramp, protected spike, replay verification, recovery."""
    config = config or OverloadConfig()
    started = time.perf_counter()
    result = OverloadResult(config=config)

    # -- Phase 1: baseline (QoS off) — p99 grows with offered load ----------
    result.baseline_light_p99 = _baseline_p99(config, config.light_clients, result)
    result.baseline_saturated_p99 = _baseline_p99(config, config.clients, result)
    if verbose:
        print(
            f"[overload] baseline p99: {result.baseline_light_p99 * 1e3:.1f}ms at "
            f"{config.light_clients} clients -> "
            f"{result.baseline_saturated_p99 * 1e3:.1f}ms at {config.clients} clients"
        )
    # The collapse story: tail latency must not *shrink* as offered
    # load grows.  A 2x tolerance keeps sub-millisecond smoke scales
    # (where scheduler noise dominates) from flaking; at the default
    # scale the saturated p99 is an order of magnitude above light.
    if result.baseline_saturated_p99 < result.baseline_light_p99 * 0.5:
        result.failures.append(
            "baseline p99 shrank under offered load "
            f"({result.baseline_saturated_p99:.4f}s < 0.5 x "
            f"{result.baseline_light_p99:.4f}s)"
        )

    # -- Phase 2: protected spike (QoS on) ----------------------------------
    database = _build_database()
    manager, template = _attach_pmv(database, config.seed)
    gate = ServingGate(
        manager,
        admission=AdmissionController(
            max_concurrency=config.max_concurrency,
            max_queue_depth=config.max_queue_depth,
            queue_timeout=config.queue_timeout,
        ),
        governor_config=GovernorConfig(
            degrade_p99=max(0.002, config.deadline / 4),
            shed_p99=config.admitted_p99_slo,
            degrade_queue=2,
            shed_queue=max(3, config.max_queue_depth),
            recover_ticks=2,
            latency_window=32,
            tick_interval=0.01,
        ),
    )
    shared = _Shared()
    database.add_change_listener(shared.log_change)
    hung = _run_threads(
        [
            (f"p{i}", _protected_client, (shared, gate, template, config, i))
            for i in range(config.clients)
        ]
        + [
            (f"w{i}", _writer_body, (shared, database, config, i))
            for i in range(config.writers)
        ]
    )
    if hung:
        result.failures.append(f"protected hang: {','.join(hung)}")

    # Deterministic degraded answers: a zero-budget query in the calm
    # after the spike is always admitted (slots free) and must return
    # the PMV-only answer marked incomplete.
    rng = random.Random(config.seed * 50_021)
    for k in range(3):
        query = _bind_query(template, rng)
        qid = f"z.{k}"

        def at_o3(_query, qid=qid):
            shared.oplog.append(("query", qid))

        answer = gate.execute(query, deadline=Deadline.after(0.0), on_o3=at_o3)
        shared.queries[qid] = query
        shared.results[qid] = {
            "rows": _rows_key(answer.all_rows()),
            "complete": answer.complete,
            "reason": answer.degraded_reason,
        }
        if answer.complete:
            result.failures.append(f"zero-budget query {qid} claimed complete=True")

    # -- Phase 3: recovery ----------------------------------------------------
    _cooldown(gate, template, config)

    database.remove_change_listener(shared.log_change)
    result.protected_admitted_p99 = _p99(shared.latencies)
    result.thread_errors.extend(shared.errors)
    result.writer_lock_aborts = shared.writer_lock_aborts

    # -- Phase 4: replay verification ----------------------------------------
    _replay_and_check(shared, result)

    stats = gate.stats()
    result.admitted = stats["qos_admitted"]
    result.shed = stats["qos_shed"]
    result.shed_by_reason = stats["qos_shed_by_reason"]
    result.partial_answers = stats["qos_partial_answers"]
    result.complete_answers = stats["qos_complete_answers"]
    result.deadline_abandons = stats["qos_deadline_abandons"]
    result.state_transitions = stats["qos_state_transitions"]
    result.final_state = stats["qos_state"]
    result.breaker_opens = stats["breaker_opens"]
    result.swallowed_errors = (
        stats["swallowed_errors"] + stats["database_swallowed_errors"]
    )

    # -- SLO assertions -------------------------------------------------------
    if result.protected_admitted_p99 > config.admitted_p99_slo:
        result.failures.append(
            f"admitted p99 {result.protected_admitted_p99:.3f}s exceeds the "
            f"{config.admitted_p99_slo:.3f}s SLO"
        )
    if result.partial_answers < 1:
        result.failures.append("no deadline-degraded answers were produced")
    if result.final_state != QoSState.NORMAL:
        result.failures.append(
            f"governor did not return to NORMAL after the spike "
            f"(stuck in {result.final_state})"
        )

    result.ok = not result.failures and not result.thread_errors
    result.elapsed_seconds = time.perf_counter() - started
    if verbose:
        print(
            f"[overload] protected: admitted={result.admitted} shed={result.shed} "
            f"{result.shed_by_reason} p99={result.protected_admitted_p99 * 1e3:.1f}ms"
        )
        print(
            f"[overload] answers: complete={result.complete_answers} "
            f"partial={result.partial_answers} abandons={result.deadline_abandons} "
            f"silently_incomplete={result.silently_incomplete} "
            f"subset_violations={result.subset_violations} "
            f"({result.queries_checked} replay-checked, "
            f"{result.changes_replayed} changes)"
        )
        print(
            f"[overload] governor: {result.state_transitions} transitions, "
            f"final={result.final_state}, breaker_opens={result.breaker_opens}, "
            f"writer_aborts={result.writer_lock_aborts}"
        )
        print(f"[overload] {'OK' if result.ok else 'FAIL'}")
        for failure in result.failures:
            print(f"[overload]   FAIL: {failure}")
        for error in result.thread_errors[:10]:
            print(f"[overload]   thread error: {error['thread']}: {error['error']}")
    return result


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.overload", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=12)
    parser.add_argument("--writers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=25, help="queries per client")
    parser.add_argument(
        "--deadline", type=float, default=0.02, help="per-query budget (seconds)"
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=3, help="admission concurrency limit"
    )
    parser.add_argument("--report", metavar="PATH", help="write a JSON report")
    args = parser.parse_args(argv)

    config = OverloadConfig(
        seed=args.seed,
        clients=args.clients,
        writers=args.writers,
        queries_per_client=args.queries,
        deadline=args.deadline,
        max_concurrency=args.max_concurrency,
    )
    result = run_overload(config)
    if args.report:
        report = asdict(result)
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2, default=str)
        print(f"[overload] report written to {args.report}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
