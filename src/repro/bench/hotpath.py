"""The hot-path regression experiment: columnar vs. row vs. legacy.

Runs one Zipfian workload through identically-built databases in three
executor configurations:

- **fast**: the default :class:`~repro.core.executor.PMVExecutor` —
  the columnar batch pipeline (value tuples end-to-end, Rows only at
  the client boundary) on top of memoized O1 decomposition and the
  template-level plan cache;
- **row**: the same executor with ``columnar=False`` — the previous
  row-at-a-time hot path (batched O3 with bulk duplicate suppression);
- **slow**: ``columnar=False`` plus every other hot-path knob off
  (``o1_cache_size=0, use_plan_cache=False, batched=False``) — the
  original per-row, re-derive-everything path.

The deliverables are the ratios of the PMV *overheads* (O1 + O2 +
O3's checking, the quantity Figures 8-10 report): ``speedup`` (slow /
fast, the historical gate) and ``columnar_speedup`` (row / fast, the
columnar pipeline's win over the previous best) — plus a row-for-row
identity check across all three modes: a pipeline may change how fast
answers are produced, never which answers.

The workload leans into the regime the optimizations target — a
skewed (Zipf α=3) stream over narrowed value domains so basic
condition parts are dense, with ``F`` large enough that a hot entry
caches its bcp's full result.  Wall-clock noise is handled by taking
the *minimum* overhead across ``repeats`` runs of each path (spikes
only ever inflate a run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.figures import build_experiment_database
from repro.core.discretize import Discretization
from repro.core.executor import PMVExecutor
from repro.core.view import PartialMaterializedView
from repro.workload.queries import ZipfianQueryStream
from repro.workload.templates import make_t1

__all__ = ["HotpathConfig", "HotpathResult", "run_hotpath_benchmark", "MODE_KNOBS"]


MODE_KNOBS: dict[str, dict] = {
    "fast": {},
    "row": dict(columnar=False),
    "slow": dict(columnar=False, o1_cache_size=0, use_plan_cache=False, batched=False),
}
"""Executor knobs per benchmark mode, from newest to oldest pipeline."""


@dataclass(frozen=True)
class HotpathConfig:
    """Parameters of one hot-path comparison run."""

    queries: int = 1_000
    repeats: int = 2
    alpha: float = 3.0
    values_per_slot: tuple[int, ...] = (2, 2)
    tuples_per_entry: int = 64
    max_entries: int = 20_000
    policy: str = "clock"
    distinct_order_dates: int = 20
    suppliers: int = 8
    seed: int = 99


@dataclass
class HotpathResult:
    """Outcome of :func:`run_hotpath_benchmark`."""

    config: HotpathConfig
    fast_overhead_seconds: float
    row_overhead_seconds: float
    slow_overhead_seconds: float
    fast_runs: list[float]
    row_runs: list[float]
    slow_runs: list[float]
    rows_identical: bool
    result_rows: int
    o1_cache_hit_ratio: float
    bcp_hit_probability: float
    plan_cache: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Overhead ratio of the legacy path to the default pipeline."""
        return self.slow_overhead_seconds / self.fast_overhead_seconds

    @property
    def columnar_speedup(self) -> float:
        """Overhead ratio of the row pipeline to the columnar one —
        the tentpole gate: how much the batch pipeline shaves off the
        previous best hot path, measured within one run so machine
        speed divides out."""
        return self.row_overhead_seconds / self.fast_overhead_seconds

    def as_dict(self) -> dict:
        """JSON-ready summary (persisted as ``BENCH_hotpath.json``)."""
        c = self.config
        per_query = 1e6 / c.queries
        return {
            "benchmark": "hotpath_regression",
            "config": {
                "queries": c.queries,
                "repeats": c.repeats,
                "alpha": c.alpha,
                "values_per_slot": list(c.values_per_slot),
                "tuples_per_entry": c.tuples_per_entry,
                "max_entries": c.max_entries,
                "policy": c.policy,
                "distinct_order_dates": c.distinct_order_dates,
                "suppliers": c.suppliers,
                "seed": c.seed,
            },
            "fast_overhead_seconds": self.fast_overhead_seconds,
            "row_overhead_seconds": self.row_overhead_seconds,
            "slow_overhead_seconds": self.slow_overhead_seconds,
            "fast_overhead_us_per_query": self.fast_overhead_seconds * per_query,
            "row_overhead_us_per_query": self.row_overhead_seconds * per_query,
            "slow_overhead_us_per_query": self.slow_overhead_seconds * per_query,
            "speedup": self.speedup,
            "columnar_speedup": self.columnar_speedup,
            "fast_runs_seconds": self.fast_runs,
            "row_runs_seconds": self.row_runs,
            "slow_runs_seconds": self.slow_runs,
            "rows_identical": self.rows_identical,
            "result_rows": self.result_rows,
            "o1_cache_hit_ratio": self.o1_cache_hit_ratio,
            "bcp_hit_probability": self.bcp_hit_probability,
            "plan_cache": self.plan_cache,
        }


def _run_workload(config: HotpathConfig, mode: str):
    """One full pass: fresh database, fresh PMV, the whole stream.

    Returns ``(overhead_seconds, row_values, view, database)``.  The
    database is rebuilt per pass so no mode sees another's buffer pool
    or PMV state.
    """
    env = build_experiment_database(
        distinct_order_dates=config.distinct_order_dates,
        suppliers=config.suppliers,
    )
    template = make_t1()
    discretization = Discretization(template)
    view = PartialMaterializedView(
        template,
        discretization,
        tuples_per_entry=config.tuples_per_entry,
        max_entries=config.max_entries,
        policy=config.policy,
    )
    executor = PMVExecutor(env.database, view, **MODE_KNOBS[mode])
    stream = ZipfianQueryStream(
        template,
        [env.dates, env.suppliers],
        alpha=config.alpha,
        values_per_slot=list(config.values_per_slot),
        seed=config.seed,
    )
    rows: list[list[tuple]] = []
    for query in stream.queries(config.queries):
        result = executor.execute(query)
        rows.append([tuple(row.values) for row in result.all_rows()])
    return view.metrics.overhead_seconds, rows, view, env.database


def run_hotpath_benchmark(
    config: HotpathConfig | None = None,
    verbose: bool = False,
) -> HotpathResult:
    """Compare the columnar, row, and legacy paths on one workload."""
    if config is None:
        config = HotpathConfig()
    runs: dict[str, list[float]] = {mode: [] for mode in MODE_KNOBS}
    reference_rows: list[list[tuple]] | None = None
    rows_identical = True
    o1_hit_ratio = 0.0
    bcp_hit_probability = 0.0
    plan_cache_info: dict = {}
    for repeat in range(config.repeats):
        for mode in MODE_KNOBS:
            overhead, rows, view, database = _run_workload(config, mode)
            if reference_rows is None:
                reference_rows = rows
            elif rows != reference_rows:
                rows_identical = False
            runs[mode].append(overhead)
            if mode == "fast":
                o1_hit_ratio = view.metrics.o1_cache_hit_ratio
                bcp_hit_probability = view.metrics.hit_probability
                plan_cache_info = database.plan_cache.info()
            if verbose:
                print(
                    f"  run {repeat}/{mode}: overhead "
                    f"{overhead * 1e3:.1f} ms over {config.queries} queries"
                )
    result = HotpathResult(
        config=config,
        fast_overhead_seconds=min(runs["fast"]),
        row_overhead_seconds=min(runs["row"]),
        slow_overhead_seconds=min(runs["slow"]),
        fast_runs=runs["fast"],
        row_runs=runs["row"],
        slow_runs=runs["slow"],
        rows_identical=rows_identical,
        result_rows=sum(len(r) for r in (reference_rows or [])),
        o1_cache_hit_ratio=o1_hit_ratio,
        bcp_hit_probability=bcp_hit_probability,
        plan_cache=plan_cache_info,
    )
    if verbose:
        print(
            f"  overhead: fast {result.fast_overhead_seconds * 1e3:.1f} ms, "
            f"row {result.row_overhead_seconds * 1e3:.1f} ms, "
            f"slow {result.slow_overhead_seconds * 1e3:.1f} ms "
            f"(slow/fast {result.speedup:.2f}x, "
            f"row/fast {result.columnar_speedup:.2f}x)"
        )
    return result
