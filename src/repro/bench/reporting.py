"""Shared formatting for the benchmark harness.

Each ``benchmarks/test_fig*.py`` prints the same rows/series the paper's
figure reports, via these helpers, and also returns the raw numbers so
assertions can check the expected shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Series", "format_table", "format_series", "scale_note"]


@dataclass
class Series:
    """One line of a figure: a label plus aligned x/y vectors."""

    label: str
    x: list[Any] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.x.append(x)
        self.y.append(y)

    def as_rows(self) -> list[tuple[Any, float]]:
        return list(zip(self.x, self.y))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Monospace-aligned table with a header rule."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(x_label: str, series: Sequence[Series]) -> str:
    """Tabulate several series against a shared x axis."""
    if not series:
        return "(no series)"
    xs = series[0].x
    for s in series[1:]:
        if s.x != xs:
            raise ValueError("all series must share the same x values")
    headers = [x_label] + [s.label for s in series]
    rows = [[x] + [s.y[i] for s in series] for i, x in enumerate(xs)]
    return format_table(headers, rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def scale_note(description: str) -> str:
    """A standard banner stating what scale a benchmark ran at."""
    return f"[scale] {description}"
