"""Crash-recovery torture harness.

Drives the fault-injection subsystem (:mod:`repro.faults`) through a
seeded mixed insert/delete/update/query/checkpoint workload, crashing
the simulated process at *every* fault point the workload reaches, and
after each crash checks the full recovery invariant set:

- the on-disk WAL parses (a torn tail is tolerated, reported, and
  repaired away);
- replaying it yields exactly the acknowledged pre-crash state, except
  possibly the single in-flight statement — applied entirely or not at
  all (atomic, durable statements);
- heap and indexes agree (no dangling or missing index entries);
- snapshot-based recovery (latest checkpoint + log suffix) agrees with
  full-log recovery;
- a PMV restarted on the recovered database serves no phantom tuples
  (probe every bcp, compare against full execution).

Recoverable injected faults (ERROR mode) instead let the workload keep
running and assert the engine aborted the statement cleanly — e.g. a
failure inside PMV maintenance must leave the view with zero stale
entries (the fail-safe clear).

Every point is replayable: a divergence prints ``seed`` and
``site:occurrence:mode``; rerun it with::

    python -m repro.bench.torture --replay SEED/site:occurrence:mode

Run a bounded sweep (the CI ``torture`` job)::

    python -m repro.bench.torture --seeds 2 --max-points 200 \\
        --report TORTURE_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.core import (
    Discretization,
    MaintenanceStrategy,
    PMVManager,
)
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
    WriteAheadLog,
    recover,
)
from repro.engine.snapshot import (
    recover_from_snapshot,
    snapshot_from_json,
    snapshot_to_json,
    take_snapshot,
)
from repro.errors import DiskFullError, FaultInjectionError, ReproError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    build_faulty_database,
    check_view_against_database,
    contents_of,
    modes_for_site,
    verify_crash_recovery,
    verify_database,
)
from repro.faults.check import InvariantViolation

__all__ = [
    "TortureConfig",
    "PointResult",
    "SweepReport",
    "enumerate_points",
    "run_point",
    "sweep",
    "main",
]

#: Small pages + a tiny buffer pool so heap data spans several pages
#: and evictions happen mid-workload — otherwise the disk fault sites
#: would only fire during checkpoints.
DEFAULT_PAGE_SIZE = 256
DEFAULT_POOL_PAGES = 6
DEFAULT_OPS = 60

_RELATIONS = ("r", "s")


@dataclass(frozen=True)
class TortureConfig:
    """One seeded torture run's shape."""

    seed: int = 0
    ops: int = DEFAULT_OPS
    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pool_pages: int = DEFAULT_POOL_PAGES
    cdc: bool = False
    """Run the PMV under CDC-driven async maintenance: DML feeds the
    transactional outbox (with its two crash windows armed), a
    heavy-light splitter keeps part of the key space eager, and the
    workload interleaves background drains — including crashes mid-
    drain.  Query answers are checked under bounded-stale semantics
    and the run must end convergent (DESIGN.md §13)."""


@dataclass
class PointResult:
    """Outcome of one fault point (or of a fault-free run)."""

    seed: int
    spec: str | None  # "site:occurrence:mode", None = fault-free
    ok: bool
    status: str  # completed | crashed | condemned | divergence
    stage: str  # where the run ended / where checking failed
    ops_acked: int
    error: str | None = None

    @property
    def replay(self) -> str:
        return f"{self.seed}/{self.spec or 'none'}"


@dataclass
class SweepReport:
    """Aggregated sweep outcome (serialized as the CI artifact)."""

    points_run: int = 0
    crashes: int = 0
    condemned: int = 0
    completed: int = 0
    divergences: list[dict] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


def _make_template() -> QueryTemplate:
    return QueryTemplate(
        name="tq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def _setup(config: TortureConfig, injector: FaultInjector, wal_path: str):
    """Build the database, schema, seed data, and PMV.

    Setup runs fault-free (the injector is armed by the caller
    afterwards): the sweep explores faults in the steady-state
    workload, not in bootstrap DDL, and counting occurrences from the
    first workload op keeps fault specs stable across phases.
    """
    database = build_faulty_database(
        injector,
        wal_path,
        buffer_pool_pages=config.buffer_pool_pages,
        page_size=config.page_size,
    )
    database.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    database.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    database.create_index("r_f", "r", ["f"])
    database.create_index("r_c", "r", ["c"])
    database.create_index("s_d", "s", ["d"])
    database.create_index("s_g", "s", ["g"])
    for i in range(24):
        database.insert("r", (i, i % 6, i % 4, f"a{i}"))
    for j in range(12):
        database.insert("s", (j % 6, j % 3, f"e{j}"))
    template = _make_template()
    strategy = (
        MaintenanceStrategy.AUX_INDEX
        if config.seed % 2
        else MaintenanceStrategy.DELTA_JOIN
    )
    manager = PMVManager(database, maintenance_strategy=strategy)
    manager.create_view(
        template,
        Discretization(template),
        tuples_per_entry=3,
        max_entries=8,
        aux_index_columns=("r.a", "s.e"),
        upper_bound_bytes=4096,
    )
    maintainer = None
    if config.cdc:
        from repro.cdc import ChangeOutbox, HeavyLightSplitter

        # The feed starts empty here — seed inserts above predate it,
        # matching a view registered against a running database.  The
        # splitter keeps part of the r.f key space eager so the sweep
        # crosses both the hot (write-path) and cold (drain) routes.
        maintainer = manager.enable_async_maintenance(
            outbox=ChangeOutbox(fault_check=injector.check),
            splitter=HeavyLightSplitter({"r.f": {0, 1}}),
        )
        manager.executor(template.name).freshness_bound = 6
        # Hook the drain-vs-commit interleaving site: every few commits
        # a probe thread runs the feed-end catch-up while the writer is
        # parked between WAL append and outbox append.
        database.scheduler = _DrainCommitProbe(database, maintainer)
    return database, manager, template, maintainer


class _DrainCommitProbe:
    """Exercises the drain-vs-commit window at the ``dml.outbox-append``
    seam (DESIGN.md §13).

    Installed as ``database.scheduler`` so the DML path calls
    :meth:`switch` inside the statement latch, after the WAL append but
    before the outbox append — the WAL LSN is ahead of the feed.  A
    probe thread then runs the drain's feed-end catch-up
    (``drain(max_records=0)`` skips the apply loop, which would block
    on the held latch) and the probe asserts no registered view's
    watermark reached the in-flight LSN: claiming it would be phantom
    freshness, the exact race the non-blocking-latch fix closes.
    Non-seam sites are ignored, so lock traffic is unaffected.
    """

    def __init__(self, database, maintainer, every: int = 5) -> None:
        self.database = database
        self.maintainer = maintainer
        self.every = every
        self.calls = 0
        self.probes = 0

    def switch(self, site: str) -> None:
        if site != "dml.outbox-append":
            return
        self.calls += 1
        if self.calls % self.every:
            return
        self.probes += 1
        in_flight = self.database.wal.last_lsn
        watermarks: dict[str, int] = {}

        def attempt() -> None:
            self.maintainer.drain(max_records=0)
            for name, m in self.maintainer._registered.items():
                watermarks[name] = m.view.applied_lsn

        probe = threading.Thread(target=attempt, daemon=True)
        probe.start()
        probe.join(timeout=10.0)
        if probe.is_alive():
            raise InvariantViolation(
                "drain-vs-commit probe wedged: the feed-end catch-up "
                "blocked on the statement latch held by the committing "
                "writer"
            )
        for name, applied in watermarks.items():
            if applied >= in_flight:
                raise InvariantViolation(
                    f"phantom freshness: view {name!r} watermark {applied} "
                    f"reached in-flight LSN {in_flight} before its feed "
                    f"record was appended"
                )

    # Scheduler protocol stubs — the DML seam only calls switch(), but
    # keep the interface total in case other seams are ever routed here.
    def block(self, site: str) -> None:  # pragma: no cover
        pass

    def resume(self) -> None:  # pragma: no cover
        pass

    def unblock(self, ident: int) -> None:  # pragma: no cover
        pass


def _shadow_contents(shadow: dict[str, dict[tuple, int]]) -> dict[str, list[tuple]]:
    out = {}
    for name, counts in shadow.items():
        values = []
        for item, count in counts.items():
            values.extend([item] * count)
        out[name] = sorted(values, key=repr)
    return out


def _apply_effect(shadow, effect) -> None:
    for action, relation, values in effect:
        counts = shadow[relation]
        if action == "add":
            counts[values] = counts.get(values, 0) + 1
        else:
            counts[values] = counts.get(values, 0) - 1
            if counts[values] <= 0:
                del counts[values]


def _check_bounded_stale(result, got, want) -> None:
    """The async-mode query oracle (truth ⊆ answer, stamp honest)."""
    want_counts: dict[tuple, int] = {}
    for item in want:
        want_counts[item] = want_counts.get(item, 0) + 1
    got_counts: dict[tuple, int] = {}
    for item in got:
        got_counts[item] = got_counts.get(item, 0) + 1
    for item, count in want_counts.items():
        if got_counts.get(item, 0) < count:
            raise InvariantViolation(
                f"async answer lost a current tuple: {item!r} x{count} in "
                f"truth, x{got_counts.get(item, 0)} served"
            )
    if result.staleness == 0 and got != want:
        raise InvariantViolation(
            "answer stamped staleness=0 but differs from full execution "
            "— the freshness stamp lies"
        )


def _pick_row(rng: random.Random, database: Database, relation: str):
    rows = list(database.catalog.relation(relation).scan())
    if not rows:
        return None
    return rows[rng.randrange(len(rows))]


class _Crash(Exception):
    """Internal control flow: carries the crash context upward."""

    def __init__(self, spec_text: str, expected, expected_plus):
        super().__init__(spec_text)
        self.spec_text = spec_text
        self.expected = expected
        self.expected_plus = expected_plus


def _run_workload(config, database, manager, template, shadow, snapshots,
                  maintainer=None):
    """Execute the seeded op mix; raise :class:`_Crash` on simulated
    death, return the acked-op count on completion."""
    rng = random.Random(config.seed * 7919 + 17)
    next_r_id = 1000
    acked = 0
    for op_no in range(config.ops):
        roll = rng.random()
        effect: list = []
        lsn_before = database.wal.last_lsn
        try:
            if maintainer is not None and op_no % 3 == 2:
                # Interleaved background drain: applies pending feed
                # deltas (hitting the ``outbox.drain`` fault site), no
                # base-data effect — a mid-drain crash must recover to
                # the same acked state as any other.
                maintainer.drain(max_records=8)
            if roll < 0.28:  # insert
                if rng.random() < 0.7:
                    values = (next_r_id, rng.randrange(6), rng.randrange(4), f"a{next_r_id}")
                    next_r_id += 1
                    effect = [("add", "r", values)]
                    database.insert("r", values)
                else:
                    values = (rng.randrange(6), rng.randrange(3), f"e{rng.randrange(99)}")
                    effect = [("add", "s", values)]
                    database.insert("s", values)
            elif roll < 0.43:  # delete
                relation = "r" if rng.random() < 0.6 else "s"
                victim = _pick_row(rng, database, relation)
                if victim is not None:
                    row_id, row = victim
                    effect = [("remove", relation, tuple(row.values))]
                    database.delete(relation, row_id)
            elif roll < 0.62:  # update
                relation = "r" if rng.random() < 0.6 else "s"
                victim = _pick_row(rng, database, relation)
                if victim is not None:
                    row_id, row = victim
                    if relation == "r":
                        column = rng.choice(["a", "c", "f", "id"])
                        value = (
                            f"renamed-{rng.randrange(999)}"
                            if column == "a"
                            else rng.randrange(9000 if column == "id" else 6)
                        )
                    else:
                        column = rng.choice(["e", "g"])
                        value = (
                            f"relab-{rng.randrange(999)}"
                            if column == "e"
                            else rng.randrange(3)
                        )
                    new_row = row.replace(**{column: value})
                    effect = [
                        ("remove", relation, tuple(row.values)),
                        ("add", relation, tuple(new_row.values)),
                    ]
                    database.update(relation, row_id, **{column: value})
            elif roll < 0.90:  # query (and live staleness check)
                query = template.bind(
                    [
                        EqualityDisjunction("r.f", [rng.randrange(4)]),
                        EqualityDisjunction("s.g", [rng.randrange(3)]),
                    ]
                )
                result = manager.execute(query)
                got = sorted((tuple(r.values) for r in result.all_rows()), key=repr)
                want = sorted(
                    (tuple(r.values) for r in database.run(query)), key=repr
                )
                if maintainer is None:
                    if got != want:
                        raise InvariantViolation(
                            f"query through PMV returned {len(got)} tuples, "
                            f"full execution {len(want)} — stale partial results"
                        )
                else:
                    # Bounded-stale semantics: the answer is the current
                    # truth plus possibly extras that were true at some
                    # LSN >= the view's watermark.  Losing a *current*
                    # tuple is never allowed, and a zero staleness
                    # stamp must mean an exact answer.
                    _check_bounded_stale(result, got, want)
            else:  # checkpoint: WAL marker + snapshot
                database.wal.checkpoint()
                snapshots.append(snapshot_to_json(take_snapshot(database)))
        except SimulatedCrash as crash:
            expected = _shadow_contents(shadow)
            plus = None
            if effect:
                shadow_plus = {name: dict(counts) for name, counts in shadow.items()}
                _apply_effect(shadow_plus, effect)
                plus = _shadow_contents(shadow_plus)
            raise _Crash(crash.spec.describe(), expected, plus) from None
        except DiskFullError:
            # Typed ENOSPC refusal (disk.full / wal.enospc): the
            # statement was refused *before* any heap or WAL mutation,
            # so it must have had zero durable effect, and the
            # instance degrades to read-only — queries keep serving.
            if database.wal.last_lsn != lsn_before:
                raise InvariantViolation(
                    "disk-full refusal left a durable effect: WAL "
                    f"advanced {lsn_before} -> {database.wal.last_lsn}"
                )
            probe = template.bind(
                [
                    EqualityDisjunction("r.f", [rng.randrange(4)]),
                    EqualityDisjunction("s.g", [rng.randrange(3)]),
                ]
            )
            result = manager.execute(probe)
            got = sorted((tuple(r.values) for r in result.all_rows()), key=repr)
            want = sorted(
                (tuple(r.values) for r in database.run(probe)), key=repr
            )
            if maintainer is None:
                if got != want:
                    raise InvariantViolation(
                        "read-only degradation broke reads: PMV answer "
                        "diverged from full execution during disk-full"
                    )
            else:
                _check_bounded_stale(result, got, want)
            continue
        except FaultInjectionError as exc:
            durable = database.wal.last_lsn > lsn_before
            if durable and effect:
                _apply_effect(shadow, effect)
            if exc.site.startswith("disk."):
                # An I/O error on the data volume condemns the
                # instance (fsync-failure semantics): stop and recover.
                expected = _shadow_contents(shadow)
                raise _Crash(
                    f"{exc.site}:{exc.occurrence}:error", expected, None
                ) from None
            # Recoverable injected failure: the statement aborted
            # cleanly; the workload carries on.
            continue
        if effect:
            _apply_effect(shadow, effect)
        acked += 1
    return acked


# ---------------------------------------------------------------------------
# Recovery checking
# ---------------------------------------------------------------------------


def _recovered_factory(config: TortureConfig):
    return lambda: Database(
        buffer_pool_pages=config.buffer_pool_pages, page_size=config.page_size
    )


def _check_recovery(config, wal_path, expected, expected_plus, snapshots) -> None:
    """The post-crash invariant battery."""
    log = WriteAheadLog.load(wal_path)
    if log.has_torn_tail:
        removed = log.repair()
        if removed <= 0:
            raise InvariantViolation("torn tail reported but repair removed 0 bytes")
        reread = WriteAheadLog.load(wal_path)
        if reread.has_torn_tail or len(reread) != len(log):
            raise InvariantViolation("repaired WAL still torn or lost records")
    recovered = recover(log, database_factory=_recovered_factory(config))
    verify_crash_recovery(recovered, expected, expected_plus)
    if snapshots:
        from_snapshot = recover_from_snapshot(
            snapshot_from_json(snapshots[-1]),
            log,
            buffer_pool_pages=config.buffer_pool_pages,
            page_size=config.page_size,
        )
        if contents_of(from_snapshot, _RELATIONS) != contents_of(
            recovered, _RELATIONS
        ):
            raise InvariantViolation(
                "snapshot-based recovery disagrees with full-log recovery"
            )
    _check_pmv_restart(config, recovered)


def _check_pmv_restart(config: TortureConfig, recovered: Database) -> None:
    """A PMV restarted empty on the recovered database must warm up
    and serve exactly what full execution serves.

    In CDC mode the restarted view runs async again: the pre-crash
    feed died with the process (views restart empty, so there is
    nothing to replay) and a *fresh* feed starts at zero staleness.
    New writes must then flow outbox → drain → convergence, after
    which the strict consistency check still holds.
    """
    template = _make_template()
    manager = PMVManager(recovered)
    manager.create_view(
        template,
        Discretization(template),
        tuples_per_entry=3,
        max_entries=8,
        aux_index_columns=("r.a", "s.e"),
    )
    maintainer = None
    if config.cdc:
        from repro.cdc import ChangeOutbox

        maintainer = manager.enable_async_maintenance(outbox=ChangeOutbox())
    rng = random.Random(config.seed + 1)
    for _ in range(3):
        query = template.bind(
            [
                EqualityDisjunction("r.f", [rng.randrange(4)]),
                EqualityDisjunction("s.g", [rng.randrange(3)]),
            ]
        )
        result = manager.execute(query)
        got = sorted((tuple(r.values) for r in result.all_rows()), key=repr)
        want = sorted((tuple(r.values) for r in recovered.run(query)), key=repr)
        if got != want:
            raise InvariantViolation(
                "restarted PMV disagrees with full execution on the "
                "recovered database"
            )
    if maintainer is not None:
        rows = list(recovered.catalog.relation("r").scan())
        if rows:
            row_id, _ = rows[0]
            recovered.delete("r", row_id)
        maintainer.drain_to_convergence()
        query = template.bind(
            [
                EqualityDisjunction("r.f", [rng.randrange(4)]),
                EqualityDisjunction("s.g", [rng.randrange(3)]),
            ]
        )
        result = manager.execute(query)
        got = sorted((tuple(r.values) for r in result.all_rows()), key=repr)
        want = sorted((tuple(r.values) for r in recovered.run(query)), key=repr)
        if got != want or (result.staleness or 0) != 0:
            raise InvariantViolation(
                "restarted async PMV did not converge after the post-"
                "recovery write was drained"
            )
    manager.verify_consistency()


def _check_completed(config, database, manager, wal_path, shadow,
                     maintainer=None) -> None:
    """Invariants after a run that finished (fault-free, or with only
    recoverable injected errors along the way)."""
    if maintainer is not None:
        # Drain the feed dry, then demand full convergence: watermarks
        # at the current LSN and the strict (phantom-sensitive)
        # consistency check — a lost or double-applied delta surfaces
        # here as a phantom tuple or a MaintenanceError.
        maintainer.drain_to_convergence()
        if len(database.outbox) != 0:
            raise InvariantViolation("feed not empty after convergence drain")
        view = manager.view("tq")
        if view.applied_lsn < database.current_lsn():
            raise InvariantViolation(
                f"watermark {view.applied_lsn} trails LSN "
                f"{database.current_lsn()} after a convergence drain"
            )
    live = contents_of(database, _RELATIONS)
    if live != _shadow_contents(shadow):
        raise InvariantViolation("live contents diverged from the op-level shadow")
    verify_database(database)
    manager.verify_consistency()
    database.wal.close()
    log = WriteAheadLog.load(wal_path)
    if log.has_torn_tail:
        raise InvariantViolation("WAL has a torn tail without any crash")
    recovered = recover(log, database_factory=_recovered_factory(config))
    verify_database(recovered)
    if contents_of(recovered, _RELATIONS) != live:
        raise InvariantViolation(
            "recovering the WAL of a live database does not reproduce it"
        )


# ---------------------------------------------------------------------------
# Points: enumerate, run one, sweep
# ---------------------------------------------------------------------------


def _run(config: TortureConfig, plan: FaultPlan | None) -> PointResult:
    spec_text = plan.describe() if plan and len(plan) else None
    with tempfile.TemporaryDirectory(prefix="torture-") as workdir:
        wal_path = os.path.join(workdir, "wal.jsonl")
        injector = FaultInjector(FaultPlan.none())
        database, manager, template, maintainer = _setup(config, injector, wal_path)
        # Arm the plan only now: occurrences count workload arrivals.
        injector.plan = plan if plan is not None else FaultPlan.none()
        injector.counts.clear()
        shadow: dict[str, dict[tuple, int]] = {name: {} for name in _RELATIONS}
        for name in _RELATIONS:
            for row in database.catalog.relation(name).scan_rows():
                values = tuple(row.values)
                shadow[name][values] = shadow[name].get(values, 0) + 1
        snapshots: list[str] = []
        stage = "workload"
        try:
            acked = _run_workload(
                config, database, manager, template, shadow, snapshots,
                maintainer=maintainer,
            )
            stage = "final-checks"
            _check_completed(config, database, manager, wal_path, shadow,
                             maintainer=maintainer)
            return PointResult(
                config.seed, spec_text, True, "completed", "done", acked,
            )
        except _Crash as crash:
            database.wal.close()
            stage = "recovery-checks"
            status = "condemned" if crash.spec_text.endswith(":error") else "crashed"
            try:
                _check_recovery(
                    config, wal_path, crash.expected, crash.expected_plus, snapshots
                )
            except ReproError as exc:
                return PointResult(
                    config.seed, spec_text, False, "divergence", stage,
                    -1, f"{type(exc).__name__}: {exc}",
                )
            return PointResult(config.seed, spec_text, True, status, "done", -1)
        except ReproError as exc:
            return PointResult(
                config.seed, spec_text, False, "divergence", stage,
                -1, f"{type(exc).__name__}: {exc}",
            )
        finally:
            injector.crashed = True  # silence any hooks during teardown
            database.wal.close()


def run_point(
    seed: int,
    spec: FaultSpec | None,
    ops: int = DEFAULT_OPS,
    cdc: bool = False,
) -> PointResult:
    """Run one seeded workload with (at most) one scheduled fault."""
    config = TortureConfig(seed=seed, ops=ops, cdc=cdc)
    plan = FaultPlan([spec]) if spec is not None else FaultPlan.none()
    return _run(config, plan)


def enumerate_points(
    seed: int, ops: int = DEFAULT_OPS, cdc: bool = False
) -> list[FaultSpec]:
    """All fault points one seeded workload reaches: run it fault-free,
    count arrivals per site, expand (site, occurrence) by the modes
    meaningful at each site."""
    config = TortureConfig(seed=seed, ops=ops, cdc=cdc)
    injector = FaultInjector(FaultPlan.none())
    with tempfile.TemporaryDirectory(prefix="torture-enum-") as workdir:
        wal_path = os.path.join(workdir, "wal.jsonl")
        database, manager, template, maintainer = _setup(config, injector, wal_path)
        injector.counts.clear()
        shadow = {name: {} for name in _RELATIONS}
        for name in _RELATIONS:
            for row in database.catalog.relation(name).scan_rows():
                values = tuple(row.values)
                shadow[name][values] = shadow[name].get(values, 0) + 1
        _run_workload(config, database, manager, template, shadow, [],
                      maintainer=maintainer)
        database.wal.close()
    points = []
    for site in sorted(injector.counts):
        for occurrence in range(1, injector.counts[site] + 1):
            for mode in modes_for_site(site):
                points.append(FaultSpec(site, occurrence, mode))
    return points


def sweep(
    seeds: list[int],
    ops: int = DEFAULT_OPS,
    max_points: int | None = None,
    stop_on_first: bool = False,
    verbose: bool = False,
    cdc: bool = False,
    sites: list[str] | None = None,
) -> SweepReport:
    """Crash at every enumerated fault point of every seed.

    ``sites`` optionally restricts the sweep to fault sites matching
    any of the given prefixes (e.g. ``["outbox."]`` for the bench's
    bounded CDC sweep).
    """
    report = SweepReport(seeds=list(seeds))
    started = time.perf_counter()
    for seed in seeds:
        points = enumerate_points(seed, ops=ops, cdc=cdc)
        if sites:
            points = [
                p for p in points
                if any(p.site.startswith(prefix) for prefix in sites)
            ]
        budget = max_points - report.points_run if max_points else None
        if budget is not None and budget <= 0:
            break
        if budget is not None and len(points) > budget:
            # Even stride so the sample still spans every site/phase.
            stride = len(points) / budget
            points = [points[int(i * stride)] for i in range(budget)]
        for spec in points:
            result = run_point(seed, spec, ops=ops, cdc=cdc)
            report.points_run += 1
            report.crashes += result.status == "crashed"
            report.condemned += result.status == "condemned"
            report.completed += result.status == "completed"
            if not result.ok:
                report.divergences.append(asdict(result))
                print(
                    f"DIVERGENCE at {result.replay}: {result.error}",
                    file=sys.stderr,
                )
                if stop_on_first:
                    report.elapsed_seconds = time.perf_counter() - started
                    return report
            elif verbose:
                print(f"ok {result.replay} [{result.status}]")
    report.elapsed_seconds = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.torture",
        description="Crash-at-every-fault-point recovery torture sweep.",
    )
    parser.add_argument("--seeds", type=int, default=2, help="number of workload seeds")
    parser.add_argument("--seed-base", type=int, default=0, help="first seed value")
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS, help="ops per workload")
    parser.add_argument(
        "--max-points", type=int, default=None, help="bound the total points run"
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None, help="write a JSON report here"
    )
    parser.add_argument(
        "--replay",
        metavar="SEED/SITE:OCC:MODE",
        default=None,
        help="re-run one printed divergence point and exit",
    )
    parser.add_argument(
        "--cdc",
        action="store_true",
        help="run the PMV under CDC-driven async maintenance (adds the "
        "outbox.append/outbox.drain fault sites and bounded-stale "
        "query checking)",
    )
    parser.add_argument(
        "--sites",
        metavar="PREFIX[,PREFIX...]",
        default=None,
        help="restrict the sweep to fault sites with these prefixes",
    )
    parser.add_argument("--stop-on-first", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.replay is not None:
        seed_text, _, spec_text = args.replay.partition("/")
        spec = None if spec_text in ("", "none") else FaultSpec.parse(spec_text)
        result = run_point(int(seed_text), spec, ops=args.ops, cdc=args.cdc)
        print(json.dumps(asdict(result), indent=2))
        return 0 if result.ok else 1

    seeds = [args.seed_base + i for i in range(args.seeds)]
    report = sweep(
        seeds,
        ops=args.ops,
        max_points=args.max_points,
        stop_on_first=args.stop_on_first,
        verbose=args.verbose,
        cdc=args.cdc,
        sites=args.sites.split(",") if args.sites else None,
    )
    summary = asdict(report)
    summary["ok"] = report.ok
    print(
        f"torture: {report.points_run} fault points over seeds {report.seeds} "
        f"({report.crashes} crashes, {report.condemned} condemned, "
        f"{report.completed} completed) in {report.elapsed_seconds:.1f}s — "
        + ("ALL INVARIANTS HELD" if report.ok else
           f"{len(report.divergences)} DIVERGENCES")
    )
    for divergence in report.divergences:
        print(
            f"  replay: python -m repro.bench.torture "
            + ("--cdc " if args.cdc else "")
            + f"--replay {divergence['seed']}/{divergence['spec']}"
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
