"""Concurrent multi-client stress driver with a serialization checker.

Runs N client threads (PMV-mediated queries) against M writer threads
(inserts/deletes/updates that trigger PMV maintenance) on one shared
database, then proves the concurrent run equivalent to a
single-threaded one:

- every committed DML statement and every query's Operation O3 appends
  to a shared **op log** from inside the statement latch, so the log
  *is* the run's serialization order (O3's completion is a query's
  serialization point — the S lock guarantees everything delivered in
  O2 is re-derived there);
- a fresh database is then built from the same seed data and the log
  is replayed single-threaded, re-running every query at its logged
  position; each concurrent result must match the reference run
  **row for row** (multiset equality over ``Ls'`` tuples);
- final base-relation contents of the live and replayed databases must
  agree, the PMV must pass its invariant + no-phantom battery, and no
  thread may die on an unhandled exception — a ``LockError`` escaping
  to a client is exactly the bug this layer exists to rule out.

Two modes:

- **free-running** (default): real OS interleaving, the throughput/
  correctness soak;
- **deterministic** (``--sched-seeds``): the same workload under
  :class:`repro.faults.InterleavingScheduler`, which forces seeded
  thread switches at lock-acquire and O2/O3 seams.  Each seed runs
  twice and must produce the identical decision trace — the replay
  handle ``sched/<seed>`` reproduces the interleaving exactly, torture-
  harness style::

      python -m repro.bench.stress --replay sched/3

  Run the CI sweep::

      python -m repro.bench.stress --sched-seeds 4 --report STRESS_report.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field

from repro.core import Discretization, MaintenanceStrategy, PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.errors import LockError
from repro.faults import InterleavingScheduler
from repro.faults.check import contents_of

__all__ = [
    "StressConfig",
    "StressResult",
    "run_stress",
    "sweep_interleavings",
    "main",
]

_RELATIONS = ("r", "s")
JOIN_TIMEOUT = 120.0


@dataclass(frozen=True)
class StressConfig:
    """Shape of one stress run."""

    seed: int = 0
    clients: int = 8
    writers: int = 2
    queries_per_client: int = 25
    ops_per_writer: int = 20
    deterministic: bool = False  # install the interleaving scheduler


@dataclass
class StressResult:
    """Outcome of one stress run (serialized into the report)."""

    config: StressConfig
    ok: bool = True
    queries_checked: int = 0
    changes_applied: int = 0
    mismatches: list[dict] = field(default_factory=list)
    thread_errors: list[dict] = field(default_factory=list)
    writer_lock_aborts: int = 0
    lock_stats: dict = field(default_factory=dict)
    pmv_bypassed_lock: int = 0
    maintenance_lock_retries: int = 0
    sched_decisions: int = 0
    sched_trace: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def handle(self) -> str:
        mode = "sched" if self.config.deterministic else "free"
        return f"{mode}/{self.config.seed}"


# ---------------------------------------------------------------------------
# Shared fixture: schema + seed data + template + PMV
# ---------------------------------------------------------------------------


def _make_template() -> QueryTemplate:
    return QueryTemplate(
        name="sq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def _build_database() -> Database:
    """Schema and deterministic seed data (identical for the live run
    and the single-threaded reference replay)."""
    database = Database(buffer_pool_pages=64, page_size=1024)
    database.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
            Column("note", TEXT),  # not in Ls'/Cjoin: irrelevant updates
        ],
    )
    database.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    database.create_index("r_f", "r", ["f"])
    database.create_index("r_c", "r", ["c"])
    database.create_index("s_d", "s", ["d"])
    database.create_index("s_g", "s", ["g"])
    for i in range(60):
        database.insert("r", (i, i % 6, i % 4, f"a{i}", "seed"))
    for j in range(24):
        database.insert("s", (j % 6, j % 3, f"e{j}"))
    return database


def _attach_pmv(database: Database, seed: int) -> tuple[PMVManager, QueryTemplate]:
    template = _make_template()
    strategy = (
        MaintenanceStrategy.AUX_INDEX if seed % 2 else MaintenanceStrategy.DELTA_JOIN
    )
    manager = PMVManager(database, maintenance_strategy=strategy)
    manager.create_view(
        template,
        Discretization(template),
        tuples_per_entry=3,
        max_entries=8,
        aux_index_columns=("r.a", "s.e"),
        upper_bound_bytes=4096,
    )
    return manager, template


def _bind_query(template: QueryTemplate, rng: random.Random):
    return template.bind(
        [
            EqualityDisjunction("r.f", [rng.randrange(4)]),
            EqualityDisjunction("s.g", [rng.randrange(3)]),
        ]
    )


def _rows_key(rows) -> list:
    return sorted((tuple(r.values) for r in rows), key=repr)


# ---------------------------------------------------------------------------
# Worker bodies
# ---------------------------------------------------------------------------


class _Shared:
    """State shared by all worker threads of one run.

    ``oplog`` is appended only from inside the statement latch (the
    change listener fires in ``Database._notify``; ``on_o3`` fires in
    the executor's latched O3 section), so its order is the run's
    serialization order without any extra locking.
    """

    def __init__(self) -> None:
        self.oplog: list[tuple] = []
        self.query_results: dict[str, list] = {}
        self.queries: dict[str, object] = {}
        self.errors: list[dict] = []
        self.writer_lock_aborts = 0

    def log_change(self, change, txn) -> None:
        self.oplog.append(
            (
                "change",
                change.kind.value,
                change.relation,
                tuple(change.old_row.values) if change.old_row is not None else None,
                tuple(change.new_row.values) if change.new_row is not None else None,
            )
        )

    def record_error(self, name: str, exc: BaseException) -> None:
        self.errors.append(
            {
                "thread": name,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )


def _client_body(
    shared: _Shared, manager: PMVManager, template, config: StressConfig, index: int
) -> None:
    """One client: a seeded stream of PMV-mediated queries.

    No exception is acceptable here — in particular no LockError: the
    executor must degrade to a bypass, never fail the query.
    """
    rng = random.Random(config.seed * 10_007 + 101 * index)
    name = f"c{index}"
    try:
        for k in range(config.queries_per_client):
            query = _bind_query(template, rng)
            qid = f"{name}.{k}"
            shared.queries[qid] = query

            def at_o3(_query, qid=qid):
                shared.oplog.append(("query", qid))

            result = manager.execute(query, on_o3=at_o3)
            shared.query_results[qid] = _rows_key(result.all_rows())
    except BaseException as exc:  # recorded, fails the run
        shared.record_error(name, exc)


def _writer_body(
    shared: _Shared, database: Database, config: StressConfig, index: int
) -> None:
    """One writer: seeded DML over its OWN partition of ``r``.

    Each writer inserts rows with ids from a private range and only
    deletes/updates rows it inserted, so writers never race each other
    for the same logical row — the contention under test is
    reader/maintainer locking, not lost-update semantics the engine
    does not claim to provide.
    """
    rng = random.Random(config.seed * 20_011 + 307 * index)
    name = f"w{index}"
    next_id = 100_000 * (index + 1)
    owned: dict[int, object] = {}  # id -> current RowId
    try:
        for _ in range(config.ops_per_writer):
            roll = rng.random()
            try:
                if roll < 0.45 or not owned:  # insert
                    values = (
                        next_id,
                        rng.randrange(6),
                        rng.randrange(4),
                        f"w{index}a{next_id}",
                        "fresh",
                    )
                    owned[next_id] = database.insert("r", values)
                    next_id += 1
                elif roll < 0.75:  # delete an owned row
                    victim = rng.choice(sorted(owned))
                    database.delete("r", owned.pop(victim))
                else:  # update an owned row
                    victim = rng.choice(sorted(owned))
                    if rng.random() < 0.7:
                        # Relevant update (r.a is in Ls'): needs the X lock.
                        changes = {"a": f"w{index}r{rng.randrange(999)}"}
                    else:
                        # Irrelevant update (r.note): maintenance-free.
                        changes = {"note": f"n{rng.randrange(999)}"}
                    _, _, new_id = database.update("r", owned[victim], **changes)
                    owned[victim] = new_id
            except Exception as exc:
                if isinstance(exc, LockError):
                    # The maintainer exhausted its waits+retries against
                    # a burst of readers: the statement aborted cleanly
                    # (no base change, nothing logged).  Count and move on.
                    shared.writer_lock_aborts += 1
                    continue
                raise
    except BaseException as exc:
        shared.record_error(name, exc)


# ---------------------------------------------------------------------------
# Reference replay + checks
# ---------------------------------------------------------------------------


def _replay_and_check(shared: _Shared, result: StressResult) -> Database:
    """Replay the op log single-threaded and compare every query.

    Returns the reference database, which after the full replay holds
    the op log's final logical state."""
    reference = _build_database()
    schema_names = {
        name: reference.catalog.relation(name).schema.names() for name in _RELATIONS
    }
    for entry in shared.oplog:
        if entry[0] == "change":
            _, kind, relation, old_values, new_values = entry
            if kind == "insert":
                reference.insert(relation, new_values)
            elif kind == "delete":
                row_key = old_values[0]
                deleted = reference.delete_where(
                    relation, lambda row: row["id"] == row_key
                )
                if len(deleted) != 1:
                    result.mismatches.append(
                        {
                            "kind": "replay-delete",
                            "detail": f"id {row_key}: {len(deleted)} rows deleted",
                        }
                    )
            else:  # update
                row_key = old_values[0]
                names = schema_names[relation]
                changes = {
                    name: new
                    for name, old, new in zip(names, old_values, new_values)
                    if old != new
                }
                target = None
                for row_id, row in reference.catalog.relation(relation).scan():
                    if row["id"] == row_key:
                        target = row_id
                        break
                if target is None:
                    result.mismatches.append(
                        {"kind": "replay-update", "detail": f"id {row_key} missing"}
                    )
                    continue
                reference.update(relation, target, **changes)
            result.changes_applied += 1
        else:  # ("query", qid)
            qid = entry[1]
            query = shared.queries[qid]
            want = _rows_key(reference.run(query))
            got = shared.query_results.get(qid)
            result.queries_checked += 1
            if got != want:
                result.mismatches.append(
                    {
                        "kind": "query-divergence",
                        "query": qid,
                        "got": len(got) if got is not None else None,
                        "want": len(want),
                    }
                )
    return reference


# ---------------------------------------------------------------------------
# One run
# ---------------------------------------------------------------------------


def run_stress(config: StressConfig) -> StressResult:
    """Run one concurrent workload and verify it against the reference."""
    started = time.perf_counter()
    result = StressResult(config=config)
    database = _build_database()
    manager, template = _attach_pmv(database, config.seed)
    view = manager.view(template.name)
    shared = _Shared()
    database.add_change_listener(shared.log_change)

    sched = InterleavingScheduler(config.seed) if config.deterministic else None
    if sched is not None:
        database.install_scheduler(sched)

    bodies = [
        (f"c{i}", _client_body, (shared, manager, template, config, i))
        for i in range(config.clients)
    ] + [
        (f"w{i}", _writer_body, (shared, database, config, i))
        for i in range(config.writers)
    ]
    if sched is not None:
        threads = [sched.spawn(name, body, *args) for name, body, args in bodies]
    else:
        threads = [
            threading.Thread(target=body, args=args, name=name, daemon=True)
            for name, body, args in bodies
        ]
    for thread in threads:
        thread.start()
    if sched is not None:
        sched.launch()
    deadline = time.monotonic() + JOIN_TIMEOUT
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    hung = [t.name for t in threads if t.is_alive()]
    if sched is not None:
        database.install_scheduler(None)
        result.sched_decisions = sched.decisions
        result.sched_trace = list(sched.trace)
    if hung:
        result.ok = False
        result.thread_errors.append(
            {"thread": ",".join(hung), "error": "hang: join timed out", "traceback": ""}
        )
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # Post-run invariants on the live database, then the replay check.
    database.remove_change_listener(shared.log_change)
    try:
        view.check_invariants()
        manager.verify_consistency()
    except Exception as exc:
        result.mismatches.append(
            {"kind": "pmv-invariant", "detail": f"{type(exc).__name__}: {exc}"}
        )
    reference = _replay_and_check(shared, result)
    # The replayed reference now holds the op log's final state: the
    # live database must agree with it, relation for relation.
    if contents_of(database, _RELATIONS) != contents_of(reference, _RELATIONS):
        result.mismatches.append(
            {"kind": "final-contents", "detail": "live DB != replayed op log"}
        )

    result.thread_errors.extend(shared.errors)
    result.writer_lock_aborts = shared.writer_lock_aborts
    result.lock_stats = database.lock_manager.stats()
    result.pmv_bypassed_lock = view.metrics.pmv_bypassed_lock
    result.maintenance_lock_retries = view.metrics.maintenance_lock_retries
    result.ok = not result.mismatches and not result.thread_errors
    result.elapsed_seconds = time.perf_counter() - started
    return result


# ---------------------------------------------------------------------------
# Deterministic interleaving sweep
# ---------------------------------------------------------------------------


def sweep_interleavings(
    seeds: list[int],
    clients: int = 3,
    writers: int = 2,
    queries_per_client: int = 6,
    ops_per_writer: int = 8,
) -> list[dict]:
    """Run each seed twice under the scheduler: both runs must pass the
    serialization check AND produce the identical decision trace —
    that identity is what makes ``sched/<seed>`` a replay handle."""
    outcomes = []
    for seed in seeds:
        config = StressConfig(
            seed=seed,
            clients=clients,
            writers=writers,
            queries_per_client=queries_per_client,
            ops_per_writer=ops_per_writer,
            deterministic=True,
        )
        first = run_stress(config)
        second = run_stress(config)
        deterministic = first.sched_trace == second.sched_trace
        outcomes.append(
            {
                "handle": first.handle,
                "ok": first.ok and second.ok and deterministic,
                "run1_ok": first.ok,
                "run2_ok": second.ok,
                "deterministic_replay": deterministic,
                "decisions": first.sched_decisions,
                "queries_checked": first.queries_checked,
                "mismatches": first.mismatches + second.mismatches,
                "thread_errors": first.thread_errors + second.thread_errors,
            }
        )
    return outcomes


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _result_dict(result: StressResult) -> dict:
    data = asdict(result)
    data["handle"] = result.handle
    # The full trace is replay material, not report material.
    data["sched_trace"] = data["sched_trace"][-20:]
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.stress", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--writers", type=int, default=2)
    parser.add_argument("--queries", type=int, default=25, help="queries per client")
    parser.add_argument("--ops", type=int, default=20, help="DML ops per writer")
    parser.add_argument(
        "--sched-seeds",
        type=int,
        default=0,
        metavar="N",
        help="instead of one free run, sweep seeds 0..N-1 deterministically "
        "(each run twice, traces must match)",
    )
    parser.add_argument(
        "--replay",
        metavar="HANDLE",
        help="replay one handle, e.g. sched/3 or free/0",
    )
    parser.add_argument("--report", metavar="PATH", help="write a JSON report")
    args = parser.parse_args(argv)

    report: dict
    if args.replay:
        mode, _, seed_text = args.replay.partition("/")
        config = StressConfig(
            seed=int(seed_text),
            clients=args.clients if mode == "free" else 3,
            writers=args.writers if mode == "free" else 2,
            queries_per_client=args.queries if mode == "free" else 6,
            ops_per_writer=args.ops if mode == "free" else 8,
            deterministic=(mode == "sched"),
        )
        result = run_stress(config)
        report = {"mode": f"replay-{mode}", "runs": [_result_dict(result)]}
        ok = result.ok
        print(
            f"[stress] replay {result.handle}: "
            f"{'OK' if ok else 'FAIL'} — {result.queries_checked} queries checked, "
            f"{result.sched_decisions} scheduler decisions"
        )
    elif args.sched_seeds > 0:
        outcomes = sweep_interleavings(list(range(args.sched_seeds)))
        ok = all(o["ok"] for o in outcomes)
        report = {"mode": "sched-sweep", "runs": outcomes}
        for outcome in outcomes:
            print(
                f"[stress] {outcome['handle']}: "
                f"{'OK' if outcome['ok'] else 'FAIL'} — "
                f"{outcome['decisions']} decisions, "
                f"deterministic={outcome['deterministic_replay']}"
            )
        if not ok:
            bad = [o["handle"] for o in outcomes if not o["ok"]]
            print(f"[stress] FAILING HANDLES: {', '.join(bad)} (replay with --replay)")
    else:
        config = StressConfig(
            seed=args.seed,
            clients=args.clients,
            writers=args.writers,
            queries_per_client=args.queries,
            ops_per_writer=args.ops,
        )
        result = run_stress(config)
        ok = result.ok
        report = {"mode": "free", "runs": [_result_dict(result)]}
        print(
            f"[stress] {result.handle}: {'OK' if ok else 'FAIL'} — "
            f"{result.queries_checked} queries checked, "
            f"{result.changes_applied} changes replayed, "
            f"bypasses={result.pmv_bypassed_lock}, "
            f"writer_aborts={result.writer_lock_aborts}, "
            f"lock_stats={result.lock_stats}"
        )
        if not ok:
            for mismatch in result.mismatches[:10]:
                print(f"[stress]   mismatch: {mismatch}")
            for error in result.thread_errors[:10]:
                print(f"[stress]   thread error: {error['thread']}: {error['error']}")

    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2, default=str)
        print(f"[stress] report written to {args.report}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
