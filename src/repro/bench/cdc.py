"""CDC bench: async maintenance write throughput + honest staleness.

Two identical worlds run the same deterministic Zipf-skewed,
write-heavy DML stream against a warmed PMV:

- the **eager** world maintains the view inside every writing
  statement (X lock, delta join, aux updates — the seed behaviour);
- the **async** world routes every relevant change through the
  transactional outbox and applies nothing on the write path.

The headline number is the write-phase speedup ``async_wps /
eager_wps``; the drain that converges the async view runs *after* the
timed phase and is reported separately (that deferral is the whole
point of CDC maintenance).  The bench FAILS unless the speedup clears
``MIN_SPEEDUP`` and the post-drain answers of both worlds agree
exactly.

Two honesty phases follow the throughput measurement:

- **stamp replay** — an interleaved write/drain/query phase on the
  async world records a base-table snapshot per LSN, then re-derives
  every answer: the current truth must be contained in it, and every
  tuple served must have been true at some LSN within the stamped
  staleness window (the stamp is a *true* upper bound, checked by
  replay, not trusted);
- **crash sweep** — a bounded torture sweep over the ``outbox.*``
  fault sites (crash before/after the feed append, error and crash
  mid-drain) reusing the CDC torture harness.

Run it::

    python -m repro.bench.cdc --report BENCH_cdc.json
    python -m repro.bench cdc
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import asdict, dataclass, field

from repro.bench.torture import sweep as torture_sweep
from repro.core import Discretization, MaintenanceStrategy, PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.workload import ZipfianDistribution

__all__ = ["CdcBenchConfig", "CdcReport", "run_cdc", "main"]

MIN_SPEEDUP = 2.0
"""Acceptance floor: async writes must be at least this much faster."""

N_F = 6
N_G = 4
N_C = 8


@dataclass(frozen=True)
class CdcBenchConfig:
    seed: int = 7
    rows_r: int = 320
    rows_s: int = 240
    """High join fanout (``rows_s / N_C`` s-matches per r row) makes
    eager delta maintenance expensive; the async write path never
    touches it."""
    writes: int = 500
    """Timed write ops per world."""
    alpha: float = 1.07
    """Zipf skew over the r.f key space (the paper's hot setting)."""
    replay_ops: int = 90
    """Ops in the stamp-replay honesty phase."""
    sweep_ops: int = 60
    sweep_max_points: int = 24


@dataclass
class CdcReport:
    """Serialized as BENCH_cdc.json — the CI acceptance artifact."""

    seed: int = 0
    eager_wps: float = 0.0
    async_wps: float = 0.0
    speedup: float = 0.0
    eager_seconds: float = 0.0
    async_seconds: float = 0.0
    drain_seconds: float = 0.0
    deltas_applied: int = 0
    eager_skips: int = 0
    converged_answers_equal: bool = False
    stamps_verified: int = 0
    stamp_failures: list[str] = field(default_factory=list)
    max_staleness_seen: int = 0
    bypassed_stale: int = 0
    sweep_points: int = 0
    sweep_ok: bool = False
    sweep_divergences: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.speedup >= MIN_SPEEDUP
            and self.converged_answers_equal
            and not self.stamp_failures
            and self.sweep_ok
        )


# ---------------------------------------------------------------------------
# World construction
# ---------------------------------------------------------------------------


def _make_template() -> QueryTemplate:
    return QueryTemplate(
        name="cq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


def _build_world(config: CdcBenchConfig, async_mode: bool):
    db = Database()
    db.create_relation(
        "r",
        [
            Column("id", INTEGER, nullable=False),
            Column("c", INTEGER, nullable=False),
            Column("f", INTEGER, nullable=False),
            Column("a", TEXT),
        ],
    )
    db.create_relation(
        "s",
        [
            Column("d", INTEGER, nullable=False),
            Column("g", INTEGER, nullable=False),
            Column("e", TEXT),
        ],
    )
    db.create_index("r_f", "r", ["f"])
    db.create_index("r_c", "r", ["c"])
    db.create_index("s_d", "s", ["d"])
    db.create_index("s_g", "s", ["g"])
    for i in range(config.rows_r):
        db.insert("r", (i, i % N_C, i % N_F, f"a{i}"))
    for j in range(config.rows_s):
        db.insert("s", (j % N_C, j % N_G, f"e{j}"))
    template = _make_template()
    manager = PMVManager(db, maintenance_strategy=MaintenanceStrategy.DELTA_JOIN)
    manager.create_view(
        template,
        Discretization(template),
        tuples_per_entry=4,
        max_entries=N_F * N_G,
        aux_index_columns=("r.a", "s.e"),
        upper_bound_bytes=1 << 16,
    )
    executor = manager.executor(template.name)
    # Warm every (f, g) cell so the timed writes all hit resident
    # entries — the worst case for eager maintenance, the intended
    # case for async.
    for f in range(N_F):
        for g in range(N_G):
            executor.execute(
                template.bind(
                    [
                        EqualityDisjunction("r.f", [f]),
                        EqualityDisjunction("s.g", [g]),
                    ]
                )
            )
    maintainer = None
    if async_mode:
        maintainer = manager.enable_async_maintenance()
    return db, manager, template, executor, maintainer


def _make_ops(config: CdcBenchConfig, count: int, base_id: int):
    """A deterministic (kind, x, y) op list, Zipf-skewed over r.f.

    ``x`` picks the victim row by rank among live ids (delete/update)
    or the join key (insert); ``y`` is the new Zipf-drawn f value.
    Both worlds replay the list through :func:`_apply_op`, which
    resolves victims by sorted id, so their heaps evolve identically.
    """
    zipf = ZipfianDistribution(N_F, config.alpha, seed=config.seed)
    fs = zipf.sample(count)
    rng = random.Random(config.seed)
    ops = []
    next_id = base_id
    for k in range(count):
        roll = rng.random()
        if roll < 0.2:
            ops.append(("insert", next_id, int(fs[k])))
            next_id += 1
        elif roll < 0.6:
            ops.append(("update", rng.randrange(1 << 20), int(fs[k])))
        else:
            ops.append(("delete", rng.randrange(1 << 20), 0))
    return ops


class _WriteDriver:
    """Applies the op list while tracking live row ids itself.

    Victim lookup through the heap would cost a scan per op — identical
    in both worlds, and large enough to drown the maintenance cost the
    bench is measuring.  The driver keeps an id-ordered list instead
    (inserts use strictly increasing ids, so append preserves order)
    and both worlds replay it identically.
    """

    def __init__(self, db):
        self.db = db
        live = sorted(db.catalog.relation("r").scan(), key=lambda p: p[1]["id"])
        self.ids = [row["id"] for _rid, row in live]
        self.row_ids = {row["id"]: rid for rid, row in live}

    def apply(self, op, x, y):
        if op == "insert":
            self.row_ids[x] = self.db.insert("r", (x, x % N_C, y, f"w{x}"))
            self.ids.append(x)
            return
        if not self.ids:
            return
        idx = x % len(self.ids)
        if op == "delete":
            victim = self.ids.pop(idx)
            self.db.delete("r", self.row_ids.pop(victim))
        else:
            self.db.update("r", self.row_ids[self.ids[idx]], f=y)


def _apply_op(db, op, x, y):
    """One-off form of :class:`_WriteDriver` for the untimed phases."""
    if op == "insert":
        db.insert("r", (x, x % N_C, y, f"w{x}"))
        return
    live = sorted(db.catalog.relation("r").scan(), key=lambda pair: pair[1]["id"])
    if not live:
        return
    row_id, _ = live[x % len(live)]
    if op == "delete":
        db.delete("r", row_id)
    else:
        db.update("r", row_id, f=y)


def _answer(executor, template, fs, gs):
    result = executor.execute(
        template.bind(
            [
                EqualityDisjunction("r.f", sorted(fs)),
                EqualityDisjunction("s.g", sorted(gs)),
            ]
        )
    )
    counts: dict[tuple, int] = {}
    for row in result.all_rows():
        item = tuple(row.values)
        counts[item] = counts.get(item, 0) + 1
    return result, counts


# ---------------------------------------------------------------------------
# Phase 1+2: throughput
# ---------------------------------------------------------------------------


def _timed_writes(db, ops) -> float:
    driver = _WriteDriver(db)
    started = time.perf_counter()
    for op, x, y in ops:
        driver.apply(op, x, y)
    return time.perf_counter() - started


def _measure_throughput(config: CdcBenchConfig, report: CdcReport, verbose: bool):
    ops = _make_ops(config, config.writes, base_id=1_000_000)

    e_db, e_manager, e_template, e_executor, _ = _build_world(config, async_mode=False)
    report.eager_seconds = _timed_writes(e_db, ops)
    report.eager_wps = config.writes / report.eager_seconds

    a_db, a_manager, a_template, a_executor, maintainer = _build_world(
        config, async_mode=True
    )
    report.async_seconds = _timed_writes(a_db, ops)
    report.async_wps = config.writes / report.async_seconds
    report.speedup = report.async_wps / report.eager_wps

    drain_started = time.perf_counter()
    maintainer.drain_to_convergence()
    report.drain_seconds = time.perf_counter() - drain_started
    stats = maintainer.stats()
    report.deltas_applied = stats["deltas_applied"]
    report.eager_skips = stats["eager_skips"]

    # Post-drain the worlds must agree exactly, cell by cell.
    equal = True
    for f in range(N_F):
        for g in range(N_G):
            a_result, a_counts = _answer(a_executor, a_template, {f}, {g})
            _, e_counts = _answer(e_executor, e_template, {f}, {g})
            if a_counts != e_counts or a_result.staleness != 0:
                equal = False
    report.converged_answers_equal = equal
    a_manager.verify_consistency()
    e_manager.verify_consistency()

    if verbose:
        print(
            f"  eager:  {report.eager_wps:8.0f} writes/s "
            f"({report.eager_seconds * 1e3:.0f} ms)"
        )
        print(
            f"  async:  {report.async_wps:8.0f} writes/s "
            f"({report.async_seconds * 1e3:.0f} ms) "
            f"+ {report.drain_seconds * 1e3:.0f} ms drain "
            f"({report.deltas_applied} deltas)"
        )
        print(
            f"  speedup: {report.speedup:.2f}x (floor {MIN_SPEEDUP}x)  "
            f"converged-equal: {report.converged_answers_equal}"
        )


# ---------------------------------------------------------------------------
# Phase 3: stamp replay
# ---------------------------------------------------------------------------


def _snapshot(db):
    return (
        tuple(tuple(r.values) for r in db.catalog.relation("r").scan_rows()),
        tuple(tuple(r.values) for r in db.catalog.relation("s").scan_rows()),
    )


def _truth_of(snap, fs, gs):
    r_rows, s_rows = snap
    counts: dict[tuple, int] = {}
    for _rid, c, f, a in r_rows:
        if f not in fs:
            continue
        for d, g, e in s_rows:
            if c == d and g in gs:
                item = (a, e, f, g)
                counts[item] = counts.get(item, 0) + 1
    return counts


def _stamp_replay(config: CdcBenchConfig, report: CdcReport, verbose: bool):
    """Interleave writes, partial drains, and queries; verify every
    stamp by replaying the recorded history."""
    db, manager, template, executor, maintainer = _build_world(config, async_mode=True)
    executor.freshness_bound = 25
    rng = random.Random(config.seed + 1)
    zipf = ZipfianDistribution(N_F, config.alpha, seed=config.seed + 1)
    history = [_snapshot(db)]  # history[lsn] = state as of that LSN
    next_id = 2_000_000
    for _ in range(config.replay_ops):
        roll = rng.random()
        if roll < 0.55:
            kind = rng.choice(("insert", "update", "delete"))
            if kind == "insert":
                _apply_op(db, "insert", next_id, zipf.sample_one())
                next_id += 1
            else:
                _apply_op(db, kind, rng.randrange(1 << 20), zipf.sample_one())
            history.append(_snapshot(db))
        elif roll < 0.75:
            maintainer.drain(max_records=rng.randrange(1, 6))
        else:
            fs = {zipf.sample_one()}
            gs = {rng.randrange(N_G)}
            result, got = _answer(executor, template, fs, gs)
            now = db.current_lsn()
            stamp = result.staleness
            if result.metrics.bypassed_stale:
                report.bypassed_stale += 1
            if stamp != now - result.applied_lsn:
                report.stamp_failures.append(
                    f"stamp {stamp} != lsn delta {now - result.applied_lsn}"
                )
                continue
            report.max_staleness_seen = max(report.max_staleness_seen, stamp)
            current = _truth_of(history[-1], fs, gs)
            for item, count in current.items():
                if got.get(item, 0) < count:
                    report.stamp_failures.append(
                        f"lost current tuple {item!r} at lsn {now}"
                    )
            window: dict[tuple, int] = {}
            for lsn in range(result.applied_lsn, now + 1):
                for item, count in _truth_of(history[lsn], fs, gs).items():
                    window[item] = max(window.get(item, 0), count)
            for item, count in got.items():
                if count > window.get(item, 0):
                    report.stamp_failures.append(
                        f"served {item!r} x{count} outside the stamped "
                        f"window (stamp {stamp}, lsn {now})"
                    )
            report.stamps_verified += 1
    maintainer.drain_to_convergence()
    manager.verify_consistency()
    if verbose:
        print(
            f"  stamps: {report.stamps_verified} verified by replay, "
            f"{len(report.stamp_failures)} failures, "
            f"max staleness {report.max_staleness_seen}, "
            f"{report.bypassed_stale} bypassed"
        )


# ---------------------------------------------------------------------------
# Phase 4: crash sweep
# ---------------------------------------------------------------------------


def _crash_sweep(config: CdcBenchConfig, report: CdcReport, verbose: bool):
    sweep_report = torture_sweep(
        [config.seed],
        ops=config.sweep_ops,
        max_points=config.sweep_max_points,
        cdc=True,
        sites=["outbox."],
        verbose=False,
    )
    report.sweep_points = sweep_report.points_run
    report.sweep_ok = sweep_report.ok
    report.sweep_divergences = sweep_report.divergences
    if verbose:
        print(
            f"  sweep:  {sweep_report.points_run} outbox.* crash points, "
            f"{'ALL HELD' if sweep_report.ok else 'DIVERGENCE'}"
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_cdc(
    config: CdcBenchConfig | None = None, verbose: bool = True
) -> CdcReport:
    config = config or CdcBenchConfig()
    report = CdcReport(seed=config.seed)
    if verbose:
        print(
            f"[cdc] {config.writes} Zipf(α={config.alpha}) writes, "
            f"{config.rows_r}x{config.rows_s} rows, seed {config.seed}"
        )
    _measure_throughput(config, report, verbose)
    _stamp_replay(config, report, verbose)
    _crash_sweep(config, report, verbose)
    if verbose:
        print(f"[cdc] {'PASS' if report.ok else 'FAIL'}")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.cdc",
        description="Async-maintenance throughput + staleness honesty bench.",
    )
    parser.add_argument("--seed", type=int, default=CdcBenchConfig.seed)
    parser.add_argument("--writes", type=int, default=CdcBenchConfig.writes)
    parser.add_argument(
        "--report", metavar="PATH", default=None, help="write a JSON report here"
    )
    args = parser.parse_args(argv)
    config = CdcBenchConfig(seed=args.seed, writes=args.writes)
    report = run_cdc(config)
    if args.report:
        payload = asdict(report)
        payload["ok"] = report.ok
        payload["min_speedup"] = MIN_SPEEDUP
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
