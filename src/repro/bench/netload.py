"""Many-client socket-path load with an injected mid-run failover.

The drill the network tier exists to survive, end to end and over a
real TCP socket:

1. build a semi-sync cluster (primary + two warm standbys) behind a
   :class:`~repro.net.server.NetServer`;
2. run many :class:`~repro.net.client.PMVClient` threads mixing
   template queries (primary and bounded-staleness replica reads) with
   idempotency-keyed DML, while the server randomly *drops connections
   after applying a write but before responding* — forcing the clients
   through the retry + dedup path;
3. mid-run, stop the primary's heartbeats, advance the (fake) failure
   detector clock, and fail over; clients ride through the blip on
   retryable errors;
4. verify from the **client-side op ledgers**: every acknowledged
   insert that was not later acknowledged-deleted is present in the
   surviving timeline exactly once (zero acked-write loss), no
   client-owned row appears twice (no duplicate DML application), and
   every acknowledged delete stayed deleted;
5. check the admitted-query latency distribution over the socket path
   against the same protected SLO ``repro.bench.overload`` enforces
   (``admitted_p99_slo``).

Run as a module::

    python -m repro.bench.netload --clients 8 --ops 40 --report BENCH_net.json
"""

from __future__ import annotations

import argparse
import json
import random
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.core import Discretization
from repro.core.manager import PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.engine.wal import WriteAheadLog
from repro.errors import OverloadError, RetryExhaustedError
from repro.net import ClusterFrontEnd, NetServer, PMVClient
from repro.net.client import RetryPolicy
from repro.qos.gate import ServingGate
from repro.replication import FailoverCoordinator, PrimaryNode, ReplicaNode

__all__ = ["NetloadConfig", "NetloadReport", "run_netload", "main"]

# Client-owned rows live far above the seeded id range so ledger replay
# can own them exclusively.
CLIENT_ID_BASE = 100_000
CLIENT_ID_STRIDE = 10_000


@dataclass(frozen=True)
class NetloadConfig:
    clients: int = 8
    ops_per_client: int = 40
    seed: int = 0
    drop_every: int = 7  # drop the response of every Nth applied write
    query_budget: float = 2.0
    staleness_bound: int = 4
    admitted_p99_slo: float = 1.0  # overload.OverloadConfig's protected SLO
    retry_attempts: int = 10
    retry_base_delay: float = 0.01


@dataclass
class NetloadReport:
    clients: int = 0
    ops: int = 0
    queries: int = 0
    replica_served: int = 0
    writes_acked: int = 0
    duplicates_acked: int = 0
    client_retries: int = 0
    dropped_responses: int = 0
    sheds: int = 0
    retry_exhausted: int = 0
    failovers: int = 0
    admitted_p50: float = 0.0
    admitted_p99: float = 0.0
    admitted_p99_slo: float = 0.0
    lost_acked_writes: list = field(default_factory=list)
    duplicate_rows: list = field(default_factory=list)
    resurrected_deletes: list = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            not self.lost_acked_writes
            and not self.duplicate_rows
            and not self.resurrected_deletes
            and self.failovers >= 1
            and self.admitted_p99 <= self.admitted_p99_slo
        )


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


def _make_template() -> QueryTemplate:
    return QueryTemplate(
        name="tq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


class _Cluster:
    """Primary + two standbys + coordinator on a fake clock, all behind
    one :class:`ClusterFrontEnd`."""

    def __init__(self, config: NetloadConfig):
        database = Database(wal=WriteAheadLog())
        database.create_relation(
            "r",
            [
                Column("id", INTEGER, nullable=False),
                Column("c", INTEGER, nullable=False),
                Column("f", INTEGER, nullable=False),
                Column("a", TEXT),
            ],
        )
        database.create_relation(
            "s",
            [
                Column("d", INTEGER, nullable=False),
                Column("g", INTEGER, nullable=False),
                Column("e", TEXT),
            ],
        )
        database.create_index("r_f", "r", ["f"])
        database.create_index("r_c", "r", ["c"])
        database.create_index("s_d", "s", ["d"])
        database.create_index("s_g", "s", ["g"])
        for i in range(48):
            database.insert("r", (i, i % 6, i % 4, f"a{i}"))
        for j in range(24):
            database.insert("s", (j % 6, j % 3, f"e{j}"))
        self.template = _make_template()
        database.register_template(self.template)
        manager = PMVManager(database)
        manager.create_view(
            self.template,
            Discretization(self.template),
            tuples_per_entry=3,
            max_entries=8,
            aux_index_columns=("r.a", "s.e"),
        )
        self.primary = PrimaryNode(database, manager=manager)
        self.replicas = [ReplicaNode(f"replica-{n}") for n in (1, 2)]
        for replica in self.replicas:
            self.primary.attach_replica(replica)
        self.primary.ship()  # DDL + seed rows reach the standbys
        for replica in self.replicas:
            replica.mirror_views(manager)
        self.clock = [0.0]
        self.gate = ServingGate(manager)
        self.coordinator = FailoverCoordinator(
            self.primary,
            self.replicas,
            gate=self.gate,
            heartbeat_interval=1.0,
            missed_heartbeats=3,
            clock=lambda: self.clock[0],
        )
        self.front_end = ClusterFrontEnd(
            self.gate,
            coordinator=self.coordinator,
            staleness_bound=config.staleness_bound,
        )

    def inject_failover(self) -> None:
        """Silence the primary past the heartbeat budget and tick."""
        self.clock[0] += 10.0  # 3 missed 1s heartbeats and change
        promoted = self.coordinator.tick()
        if promoted is None:
            raise RuntimeError("failover injection did not promote a standby")


# ---------------------------------------------------------------------------
# Client workload
# ---------------------------------------------------------------------------


class _ClientLedger:
    """One client's view of the world: what the server acknowledged."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.acked_inserts: dict[int, int] = {}  # row id -> acked count
        self.acked_deletes: set[int] = set()
        self.queries = 0
        self.replica_served = 0
        self.duplicates = 0
        self.sheds = 0
        self.retry_exhausted = 0
        self.latencies: list[float] = []
        self.retries = 0


def _run_client(
    cluster: _Cluster,
    config: NetloadConfig,
    host: str,
    port: int,
    ledger: _ClientLedger,
    progress: list[int],
    progress_mutex: threading.Lock,
) -> None:
    rng = random.Random(config.seed * 1009 + ledger.index)
    client = PMVClient(
        host,
        port,
        f"client-{ledger.index}",
        retry=RetryPolicy(
            attempts=config.retry_attempts, base_delay=config.retry_base_delay
        ),
    )
    base = CLIENT_ID_BASE + ledger.index * CLIENT_ID_STRIDE
    next_id = base
    inserted: list[int] = []
    try:
        for _ in range(config.ops_per_client):
            roll = rng.random()
            try:
                if roll < 0.45:  # template query
                    query = cluster.template.bind(
                        [
                            EqualityDisjunction("r.f", [rng.randrange(4)]),
                            EqualityDisjunction("s.g", [rng.randrange(3)]),
                        ]
                    )
                    prefer_replica = rng.random() < 0.4
                    started = time.perf_counter()
                    answer = client.query(
                        query,
                        budget=config.query_budget,
                        staleness_bound=config.staleness_bound,
                        prefer_replica=prefer_replica,
                    )
                    ledger.latencies.append(time.perf_counter() - started)
                    ledger.queries += 1
                    # replica_lag is the routed-read marker: the primary
                    # path never sets it (a promoted standby keeps its
                    # replica-N *name*, so the name proves nothing).
                    if answer.replica_lag is not None:
                        ledger.replica_served += 1
                        if answer.served_by is None or answer.replica_lag < 0:
                            raise RuntimeError(
                                "replica answer arrived without a staleness stamp"
                            )
                elif roll < 0.85 or not inserted:  # keyed insert
                    row_id = next_id
                    next_id += 1
                    ack = client.insert(
                        "r",
                        [row_id, rng.randrange(6), rng.randrange(4), f"net{row_id}"],
                    )
                    ledger.acked_inserts[row_id] = (
                        ledger.acked_inserts.get(row_id, 0) + 1
                    )
                    inserted.append(row_id)
                    if ack.duplicate:
                        ledger.duplicates += 1
                else:  # keyed delete of one of our own rows
                    row_id = inserted.pop(rng.randrange(len(inserted)))
                    ack = client.delete_eq("r", "id", row_id)
                    ledger.acked_deletes.add(row_id)
                    if ack.duplicate:
                        ledger.duplicates += 1
            except OverloadError:
                ledger.sheds += 1
            except RetryExhaustedError:
                ledger.retry_exhausted += 1
            with progress_mutex:
                progress[0] += 1
    finally:
        ledger.retries = client.retries
        client.close()


# ---------------------------------------------------------------------------
# Verification: ledger replay against the surviving timeline
# ---------------------------------------------------------------------------


def _verify(cluster: _Cluster, ledgers: list[_ClientLedger], report: NetloadReport) -> None:
    database = cluster.coordinator.primary.database
    counts: dict[int, int] = {}
    for row in database.catalog.relation("r").scan_rows():
        row_id = row["id"]
        if row_id >= CLIENT_ID_BASE:
            counts[row_id] = counts.get(row_id, 0) + 1
    for row_id, count in sorted(counts.items()):
        if count > 1:
            report.duplicate_rows.append(
                {"id": row_id, "count": count}
            )
    for ledger in ledgers:
        for row_id in sorted(ledger.acked_inserts):
            if row_id in ledger.acked_deletes:
                if counts.get(row_id, 0) != 0:
                    report.resurrected_deletes.append(
                        {"client": ledger.index, "id": row_id}
                    )
            elif counts.get(row_id, 0) == 0:
                report.lost_acked_writes.append(
                    {"client": ledger.index, "id": row_id}
                )


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


# ---------------------------------------------------------------------------
# The drill
# ---------------------------------------------------------------------------


def run_netload(
    config: NetloadConfig | None = None, verbose: bool = False
) -> NetloadReport:
    config = config or NetloadConfig()
    started = time.perf_counter()
    cluster = _Cluster(config)

    # Deterministic drop injection: every Nth applied DML loses its
    # response, forcing the client through retry + server-side dedup.
    drop_state = {"writes": 0, "dropped": 0}
    drop_mutex = threading.Lock()

    def drop_before_respond(op: str, request: dict) -> bool:
        if op not in ("insert", "delete_eq"):
            return False
        with drop_mutex:
            drop_state["writes"] += 1
            if drop_state["writes"] % config.drop_every == 0:
                drop_state["dropped"] += 1
                return True
        return False

    server = NetServer(cluster.front_end, drop_before_respond=drop_before_respond)
    host, port = server.start()
    if verbose:
        print(f"[netload] serving at {host}:{port}")

    ledgers = [_ClientLedger(index) for index in range(config.clients)]
    progress = [0]
    progress_mutex = threading.Lock()
    threads = [
        threading.Thread(
            target=_run_client,
            args=(cluster, config, host, port, ledger, progress, progress_mutex),
            name=f"netload-client-{ledger.index}",
            daemon=True,
        )
        for ledger in ledgers
    ]
    total_ops = config.clients * config.ops_per_client
    for thread in threads:
        thread.start()

    # Let the fleet get halfway, then kill the primary mid-traffic.
    halfway = total_ops // 2
    while True:
        with progress_mutex:
            done = progress[0]
        if done >= halfway:
            break
        if not any(thread.is_alive() for thread in threads):
            break
        time.sleep(0.005)
    cluster.inject_failover()
    if verbose:
        print(
            f"[netload] failover injected at op {done}/{total_ops}; "
            f"epoch now {cluster.coordinator.primary.epoch}"
        )

    for thread in threads:
        thread.join(timeout=120.0)
    wedged = [thread.name for thread in threads if thread.is_alive()]
    server.stop()
    if wedged:
        raise RuntimeError(f"client threads wedged: {wedged}")

    report = NetloadReport(
        clients=config.clients,
        ops=total_ops,
        admitted_p99_slo=config.admitted_p99_slo,
        failovers=cluster.coordinator.failovers,
        dropped_responses=drop_state["dropped"],
    )
    latencies: list[float] = []
    for ledger in ledgers:
        report.queries += ledger.queries
        report.replica_served += ledger.replica_served
        report.writes_acked += len(ledger.acked_inserts) + len(ledger.acked_deletes)
        report.duplicates_acked += ledger.duplicates
        report.client_retries += ledger.retries
        report.sheds += ledger.sheds
        report.retry_exhausted += ledger.retry_exhausted
        latencies.extend(ledger.latencies)
    report.admitted_p50 = _percentile(latencies, 0.50)
    report.admitted_p99 = _percentile(latencies, 0.99)
    _verify(cluster, ledgers, report)
    report.elapsed_seconds = time.perf_counter() - started

    if verbose:
        print(
            f"[netload] {report.queries} queries "
            f"({report.replica_served} replica-served), "
            f"{report.writes_acked} acked writes, "
            f"{report.dropped_responses} dropped responses, "
            f"{report.duplicates_acked} dedup-acked retries, "
            f"{report.client_retries} client retries, "
            f"{report.sheds} sheds, {report.retry_exhausted} gave up"
        )
        print(
            f"[netload] admitted p50 {report.admitted_p50 * 1000:.1f}ms "
            f"p99 {report.admitted_p99 * 1000:.1f}ms "
            f"(SLO {report.admitted_p99_slo:.3f}s)"
        )
        verdict = "ALL INVARIANTS HELD" if report.ok else "INVARIANT VIOLATIONS"
        print(
            f"[netload] {verdict}: lost={len(report.lost_acked_writes)} "
            f"dup={len(report.duplicate_rows)} "
            f"resurrected={len(report.resurrected_deletes)} "
            f"in {report.elapsed_seconds:.1f}s"
        )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.netload",
        description="Socket-path load drill with an injected failover.",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--ops", type=int, default=40, help="ops per client")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--drop-every", type=int, default=7,
        help="drop the response of every Nth applied write",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the JSON report here (e.g. BENCH_net.json)",
    )
    args = parser.parse_args(argv)
    config = NetloadConfig(
        clients=args.clients,
        ops_per_client=args.ops,
        seed=args.seed,
        drop_every=args.drop_every,
    )
    report = run_netload(config, verbose=True)
    if args.report is not None:
        payload = asdict(report)
        payload["ok"] = report.ok
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"[netload] report written to {args.report}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
