"""``repro.bench`` — experiment drivers and reporting for every table
and figure in the paper's evaluation (Section 4)."""

from repro.bench.figures import (
    ExperimentDatabase,
    OverheadMeasurement,
    build_experiment_database,
    engine_downscale,
    engine_runs,
    measure_overhead,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_table1,
    sim_scale,
)
from repro.bench.columnar import (
    ColumnarSweepConfig,
    ColumnarSweepResult,
    run_columnar_sweep,
)
from repro.bench.hotpath import HotpathConfig, HotpathResult, run_hotpath_benchmark
from repro.bench.reporting import Series, format_series, format_table, scale_note

__all__ = [
    "ColumnarSweepConfig",
    "ColumnarSweepResult",
    "ExperimentDatabase",
    "HotpathConfig",
    "HotpathResult",
    "OverheadMeasurement",
    "Series",
    "build_experiment_database",
    "engine_downscale",
    "engine_runs",
    "format_series",
    "format_table",
    "measure_overhead",
    "run_columnar_sweep",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_hotpath_benchmark",
    "run_table1",
    "scale_note",
    "sim_scale",
]
