"""Failover drill: kill the primary mid-workload, promote, verify.

The drill runs a seeded primary+2-replica topology (a third replica is
bootstrapped mid-run from a checksummed checkpoint snapshot) through a
mixed write/query workload with WAL shipping pumped every few ops, then
crashes the primary at a scheduled fault point — reusing the torture
harness's crash windows (``wal.append`` crash-before / torn /
crash-after, ``maintenance.prepare``, ``maintenance.apply``) — and
drives the :class:`~repro.replication.FailoverCoordinator` through
detection, epoch fencing, promotion, and serving-gate rewiring.

After every crash the drill asserts the PR's acceptance battery:

- **zero acked-write loss** — a write is acknowledged only once some
  replica applied it (semi-sync); replaying the driver's own copy of
  the acked op log into a fresh database must reproduce the promoted
  node's contents exactly (op-log replay agreement);
- **warm PMVs survive** — the promoted node's PMV hit rate over a
  probe window must be at least ``hit_factor`` × the pre-crash hit
  rate on the primary (the standby cache was maintained, not cold);
- **honest staleness** — every answer a lagging replica served during
  the run was flagged ``complete=False, degraded_reason="replica_lag"``
  and is re-verified as a multiset subset of the true answer at that
  replica's applied watermark (by incremental op-log replay);
- **fencing** — the deposed primary refuses writes
  (:class:`~repro.errors.WALFencedError`) and its ships are rejected
  by the promoted epoch;
- the new primary keeps serving: post-failover writes replicate to the
  surviving replicas and contents converge.

Every point is replayable::

    python -m repro.bench.failover --replay SEED/site:occurrence:mode

Run the CI sweep::

    python -m repro.bench.failover --seeds 2 --report FAILOVER_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field

from repro.core import Discretization, MaintenanceStrategy, PMVManager
from repro.engine import (
    Column,
    Database,
    EqualityDisjunction,
    INTEGER,
    JoinEquality,
    QueryTemplate,
    SelectionSlot,
    SlotForm,
    TEXT,
)
from repro.engine.snapshot import snapshot_to_json, take_snapshot
from repro.engine.wal import replay_record
from repro.errors import ReplicaLagError, ReproError, WALFencedError
from repro.faults import FaultInjector, FaultPlan, FaultSpec, SimulatedCrash
from repro.faults.check import InvariantViolation, contents_of
from repro.faults.inject import build_faulty_database
from repro.faults.plan import FaultMode
from repro.qos import ServingGate
from repro.replication import (
    FailoverCoordinator,
    PrimaryNode,
    ReplicaNode,
    ShippedRecord,
)

__all__ = [
    "FailoverConfig",
    "DrillResult",
    "DrillReport",
    "crash_sites_for",
    "run_drill",
    "sweep",
    "main",
]

DEFAULT_OPS = 120
DEFAULT_PAGE_SIZE = 256
DEFAULT_POOL_PAGES = 8
PUMP_EVERY = 3
"""Ops between shipping pumps — the window in which replicas lag."""
PROBE_WINDOW = 30
"""Queries in the pre-crash / post-promotion hit-rate probe windows."""

_RELATIONS = ("r", "s")


@dataclass(frozen=True)
class FailoverConfig:
    seed: int = 0
    ops: int = DEFAULT_OPS
    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pool_pages: int = DEFAULT_POOL_PAGES
    staleness_bound: int = 2 * PUMP_EVERY
    hit_factor: float = 0.5
    heartbeat_interval: float = 1.0
    missed_heartbeats: int = 3


@dataclass
class DrillResult:
    """Outcome of one crash point (or the fault-free enumeration run)."""

    seed: int
    spec: str | None
    ok: bool
    status: str  # failed-over | completed | divergence
    acked_records: int = 0
    promoted: str | None = None
    pre_hit_rate: float = 0.0
    post_hit_rate: float = 0.0
    replica_answers: int = 0
    lagged_answers: int = 0
    stale_epoch_rejects: int = 0
    error: str | None = None

    @property
    def replay(self) -> str:
        return f"{self.seed}/{self.spec or 'none'}"


@dataclass
class DrillReport:
    points_run: int = 0
    failed_over: int = 0
    completed: int = 0
    divergences: list[dict] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


def _make_template() -> QueryTemplate:
    return QueryTemplate(
        name="tq",
        relations=("r", "s"),
        select_list=("r.a", "s.e"),
        joins=(JoinEquality("r", "c", "s", "d"),),
        slots=(
            SelectionSlot("r", "r.f", SlotForm.EQUALITY),
            SelectionSlot("s", "s.g", SlotForm.EQUALITY),
        ),
    )


class _Cluster:
    """One drill's topology plus the driver-side ledgers."""

    def __init__(self, config: FailoverConfig, injector: FaultInjector, wal_path: str):
        self.config = config
        database = build_faulty_database(
            injector,
            wal_path,
            buffer_pool_pages=config.buffer_pool_pages,
            page_size=config.page_size,
        )
        database.create_relation(
            "r",
            [
                Column("id", INTEGER, nullable=False),
                Column("c", INTEGER, nullable=False),
                Column("f", INTEGER, nullable=False),
                Column("a", TEXT),
            ],
        )
        database.create_relation(
            "s",
            [
                Column("d", INTEGER, nullable=False),
                Column("g", INTEGER, nullable=False),
                Column("e", TEXT),
            ],
        )
        database.create_index("r_f", "r", ["f"])
        database.create_index("r_c", "r", ["c"])
        database.create_index("s_d", "s", ["d"])
        database.create_index("s_g", "s", ["g"])
        for i in range(24):
            database.insert("r", (i, i % 6, i % 4, f"a{i}"))
        for j in range(12):
            database.insert("s", (j % 6, j % 3, f"e{j}"))
        self.template = _make_template()
        strategy = (
            MaintenanceStrategy.AUX_INDEX
            if config.seed % 2
            else MaintenanceStrategy.DELTA_JOIN
        )
        manager = PMVManager(database, maintenance_strategy=strategy)
        manager.create_view(
            self.template,
            Discretization(self.template),
            tuples_per_entry=3,
            max_entries=8,
            aux_index_columns=("r.a", "s.e"),
            upper_bound_bytes=4096,
        )
        self.primary = PrimaryNode(database, manager=manager)
        self.replicas = [
            ReplicaNode(
                f"replica-{n}",
                buffer_pool_pages=config.buffer_pool_pages,
                page_size=config.page_size,
            )
            for n in (1, 2)
        ]
        for replica in self.replicas:
            self.primary.attach_replica(replica)
        self.primary.ship()  # DDL + seed rows reach the standbys
        for replica in self.replicas:
            replica.mirror_views(manager)
        self.clock = [0.0]
        self.gate = ServingGate(manager)
        self.coordinator = FailoverCoordinator(
            self.primary,
            self.replicas,
            gate=self.gate,
            heartbeat_interval=config.heartbeat_interval,
            missed_heartbeats=config.missed_heartbeats,
            clock=lambda: self.clock[0],
        )
        # Driver-side ledgers: the acked op log (our own copies of every
        # acknowledged WAL record) and the replica answers to re-verify.
        self.op_log: list = []
        self._synced_lsn = 0
        self.replica_answers: list[tuple] = []  # (query, rows, watermark, lagged)
        self.pre_hits: list[int] = []
        self.refused_reads = 0

    def pump(self) -> None:
        """Ship outstanding records and extend the acked op log."""
        self.primary.ship()
        acked = self.primary.acked_lsn
        for record in self.primary.database.wal.records(after_lsn=self._synced_lsn):
            if record.lsn > acked:
                break
            self.op_log.append(record)
            self._synced_lsn = record.lsn

    def bind_query(self, rng: random.Random):
        f = rng.randrange(2) if rng.random() < 0.75 else 2 + rng.randrange(2)
        return self.template.bind(
            [
                EqualityDisjunction("r.f", [f]),
                EqualityDisjunction("s.g", [rng.randrange(3)]),
            ]
        )

    def serve_replica(self, rng: random.Random, query) -> None:
        """Mirror a read to one standby (warms its PMV) and ledger it."""
        replica = self.replicas[rng.randrange(len(self.replicas))]
        replica.note_watermark(self.primary.database.wal.last_lsn)
        lag = replica.lag
        try:
            result = replica.serve(query, staleness_bound=self.config.staleness_bound)
        except ReplicaLagError:
            # Beyond the bound the read is refused, not served stale —
            # the router would retry on the primary.
            self.refused_reads += 1
            return
        rows = sorted((tuple(r.values) for r in result.all_rows()), key=repr)
        if lag > 0:
            if result.complete or result.degraded_reason != "replica_lag":
                raise InvariantViolation(
                    f"{replica.name} served {lag} records behind without "
                    f"flagging the answer (complete={result.complete}, "
                    f"reason={result.degraded_reason!r})"
                )
        self.replica_answers.append((query, rows, replica.applied_lsn, lag > 0))


# ---------------------------------------------------------------------------
# The drill
# ---------------------------------------------------------------------------


def _run_workload(cluster: _Cluster, rng: random.Random) -> None:
    """The seeded op mix; raises SimulatedCrash when the plan fires."""
    config = cluster.config
    database = cluster.primary.database
    next_r_id = 1000
    for op in range(config.ops):
        cluster.clock[0] += config.heartbeat_interval * 0.2
        cluster.primary.heartbeat(cluster.coordinator)
        roll = rng.random()
        if roll < 0.30:  # insert
            if rng.random() < 0.7:
                database.insert(
                    "r", (next_r_id, rng.randrange(6), rng.randrange(4), f"a{next_r_id}")
                )
                next_r_id += 1
            else:
                database.insert(
                    "s", (rng.randrange(6), rng.randrange(3), f"e{rng.randrange(99)}")
                )
        elif roll < 0.42:  # delete
            relation = "r" if rng.random() < 0.6 else "s"
            rows = list(database.catalog.relation(relation).scan())
            if rows:
                row_id, _ = rows[rng.randrange(len(rows))]
                database.delete(relation, row_id)
        elif roll < 0.55:  # update
            relation = "r" if rng.random() < 0.6 else "s"
            rows = list(database.catalog.relation(relation).scan())
            if rows:
                row_id, row = rows[rng.randrange(len(rows))]
                if relation == "r":
                    database.update(relation, row_id, f=rng.randrange(4))
                else:
                    database.update(relation, row_id, e=f"relab-{rng.randrange(99)}")
        elif roll < 0.92:  # gate query on the primary + mirrored standby read
            query = cluster.bind_query(rng)
            result = cluster.gate.execute(query)
            got = sorted((tuple(r.values) for r in result.all_rows()), key=repr)
            want = sorted((tuple(r.values) for r in database.run(query)), key=repr)
            if got != want:
                raise InvariantViolation("primary gate answer diverged from truth")
            cluster.pre_hits.append(1 if result.partial_rows else 0)
            cluster.serve_replica(rng, cluster.bind_query(rng))
        else:  # checkpoint; halfway through, bootstrap a standby from it
            database.wal.checkpoint()
            snapshot_text = snapshot_to_json(take_snapshot(database))
            if op >= config.ops // 2 and len(cluster.replicas) < 3:
                late = ReplicaNode.from_snapshot(
                    snapshot_text,
                    name="replica-3",
                    buffer_pool_pages=config.buffer_pool_pages,
                    page_size=config.page_size,
                )
                cluster.primary.attach_replica(late)
                cluster.replicas.append(late)
                cluster.coordinator.replicas.append(late)
                cluster.pump()
                late.mirror_views(cluster.primary.manager)
        if (op + 1) % PUMP_EVERY == 0:
            cluster.pump()


def _hit_rate(hits: list[int]) -> float:
    window = hits[-PROBE_WINDOW:]
    return sum(window) / len(window) if window else 0.0


def _verify_replica_answers(cluster: _Cluster) -> int:
    """Re-check every ledgered standby answer by op-log replay.

    The ledger is replayed watermark by watermark (ascending) into one
    scratch database; at each stop the recorded rows must be a multiset
    subset of the true answer at that state — and lag-flagged answers
    were already required to carry ``complete=False``.
    """
    config = cluster.config
    scratch = Database(
        buffer_pool_pages=config.buffer_pool_pages, page_size=config.page_size
    )
    position = 0
    lagged = 0
    for query, rows, watermark, was_lagged in sorted(
        cluster.replica_answers, key=lambda item: item[2]
    ):
        while position < len(cluster.op_log) and cluster.op_log[position].lsn <= watermark:
            replay_record(scratch, cluster.op_log[position])
            position += 1
        truth = sorted((tuple(r.values) for r in scratch.run(query)), key=repr)
        remaining = list(truth)
        for row in rows:
            if row not in remaining:
                raise InvariantViolation(
                    f"standby answer at watermark {watermark} is not a "
                    f"multiset subset of the state it claims: extra {row!r}"
                )
            remaining.remove(row)
        lagged += was_lagged
    return lagged


def run_drill(
    seed: int, spec: FaultSpec | None, config: FailoverConfig | None = None
) -> DrillResult:
    """One topology, one scheduled primary crash, full verification."""
    config = config or FailoverConfig(seed=seed)
    spec_text = spec.describe() if spec is not None else None
    with tempfile.TemporaryDirectory(prefix="failover-") as workdir:
        wal_path = os.path.join(workdir, "wal.jsonl")
        injector = FaultInjector(FaultPlan.none())
        try:
            cluster = _Cluster(config, injector, wal_path)
            injector.plan = (
                FaultPlan([spec]) if spec is not None else FaultPlan.none()
            )
            injector.counts.clear()
            rng = random.Random(seed * 6271 + 11)
            try:
                _run_workload(cluster, rng)
            except SimulatedCrash:
                return _after_crash(cluster, rng, spec_text)
            # The plan never fired (or no fault was scheduled): final
            # convergence checks still must hold.
            cluster.pump()
            cluster.pump()
            primary_contents = contents_of(cluster.primary.database, _RELATIONS)
            for replica in cluster.replicas:
                if contents_of(replica.database, _RELATIONS) != primary_contents:
                    raise InvariantViolation(
                        f"{replica.name} did not converge to the primary"
                    )
            lagged = _verify_replica_answers(cluster)
            return DrillResult(
                seed,
                spec_text,
                True,
                "completed",
                acked_records=len(cluster.op_log),
                pre_hit_rate=_hit_rate(cluster.pre_hits),
                replica_answers=len(cluster.replica_answers),
                lagged_answers=lagged,
            )
        except ReproError as exc:
            return DrillResult(
                seed, spec_text, False, "divergence",
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            injector.crashed = True  # silence hooks during teardown


def _after_crash(cluster: _Cluster, rng: random.Random, spec_text: str | None) -> DrillResult:
    """Primary died: detect, fail over, and run the acceptance battery."""
    config = cluster.config
    seed = config.seed
    # Heartbeats stop; advance past the miss budget and tick.
    cluster.clock[0] += config.heartbeat_interval * (config.missed_heartbeats + 1)
    if not cluster.coordinator.primary_suspected():
        return DrillResult(
            seed, spec_text, False, "divergence",
            error="coordinator did not suspect a silent primary",
        )
    old_primary = cluster.primary
    new_primary = cluster.coordinator.tick()
    if new_primary is None:
        return DrillResult(
            seed, spec_text, False, "divergence", error="tick() did not fail over"
        )
    try:
        # 1. Zero acked-write loss / op-log replay agreement: the acked
        # ledger replayed into a fresh database IS the promoted state.
        replayed = Database(
            buffer_pool_pages=config.buffer_pool_pages, page_size=config.page_size
        )
        for record in cluster.op_log:
            replay_record(replayed, record)
        if contents_of(replayed, _RELATIONS) != contents_of(
            new_primary.database, _RELATIONS
        ):
            raise InvariantViolation(
                f"acked op-log replay ({len(cluster.op_log)} records) "
                f"disagrees with the promoted node {new_primary.name} "
                f"(applied LSN {new_primary.database.wal.last_lsn})"
            )
        # 2. Fencing: the deposed primary must refuse writes, and its
        # zombie ships must be rejected by the promoted epoch.
        try:
            old_primary.database.insert("r", (999999, 0, 0, "zombie"))
            raise InvariantViolation("deposed primary accepted a write")
        except WALFencedError:
            pass
        stale_rejects = 0
        zombie_record = None
        for record in old_primary.database.wal.records(
            after_lsn=old_primary.database.wal.last_lsn - 1
        ):
            zombie_record = record
        if zombie_record is not None and old_primary.links:
            link = old_primary.links[0]
            before = link.stale_epoch_rejects
            link.send(
                ShippedRecord(
                    epoch=old_primary.epoch,
                    watermark=old_primary.database.wal.last_lsn,
                    line=zombie_record.to_json(),
                ).to_wire()
            )
            stale_rejects = link.stale_epoch_rejects - before
            if stale_rejects <= 0:
                raise InvariantViolation(
                    "promoted epoch accepted a record shipped by the "
                    "deposed primary"
                )
        # 3. Warm-standby PMVs: probe the rebound gate; the promoted
        # fleet must hit at a rate >= hit_factor x the pre-crash rate —
        # and serve correct answers while doing it.
        if cluster.gate.manager is not new_primary.manager:
            raise InvariantViolation("serving gate was not rewired to the survivor")
        for managed in new_primary.manager.managed():
            if (
                managed.view.upper_bound_bytes
                != managed.view.configured_upper_bound_bytes
            ):
                raise InvariantViolation(
                    f"promoted view {managed.view.name} serves with a "
                    f"non-configured UB {managed.view.upper_bound_bytes}"
                )
        post_hits = []
        for _ in range(PROBE_WINDOW):
            query = cluster.bind_query(rng)
            result = cluster.gate.execute(query)
            got = sorted((tuple(r.values) for r in result.all_rows()), key=repr)
            want = sorted(
                (tuple(r.values) for r in new_primary.database.run(query)), key=repr
            )
            if got != want:
                raise InvariantViolation("promoted gate answer diverged from truth")
            post_hits.append(1 if result.partial_rows else 0)
        pre_rate = _hit_rate(cluster.pre_hits)
        post_rate = _hit_rate(post_hits)
        if post_rate < config.hit_factor * pre_rate:
            raise InvariantViolation(
                f"promoted PMV went cold: hit rate {post_rate:.2f} < "
                f"{config.hit_factor} x pre-crash {pre_rate:.2f}"
            )
        # 4. Every standby answer served during lag was honest.
        lagged = _verify_replica_answers(cluster)
        # 5. The new era serves writes and replicates them.
        for i in range(6):
            new_primary.database.insert(
                "r", (5000 + i, i % 6, i % 4, f"era2-{i}")
            )
        new_primary.ship()
        new_primary.ship()
        promoted_contents = contents_of(new_primary.database, _RELATIONS)
        for link in new_primary.links:
            if contents_of(link.replica.database, _RELATIONS) != promoted_contents:
                raise InvariantViolation(
                    f"{link.replica.name} did not converge to the new primary"
                )
        return DrillResult(
            seed,
            spec_text,
            True,
            "failed-over",
            acked_records=len(cluster.op_log),
            promoted=new_primary.name,
            pre_hit_rate=pre_rate,
            post_hit_rate=post_rate,
            replica_answers=len(cluster.replica_answers),
            lagged_answers=lagged,
            stale_epoch_rejects=stale_rejects,
        )
    except ReproError as exc:
        return DrillResult(
            seed, spec_text, False, "divergence",
            error=f"{type(exc).__name__}: {exc}",
        )


# ---------------------------------------------------------------------------
# Crash-site selection and the sweep
# ---------------------------------------------------------------------------

_CRASH_SITES = (
    ("wal.append", FaultMode.CRASH_BEFORE),
    ("wal.append", FaultMode.TORN),
    ("wal.append", FaultMode.CRASH_AFTER),
    ("maintenance.prepare", FaultMode.CRASH_BEFORE),
    ("maintenance.apply", FaultMode.CRASH_BEFORE),
)


def crash_sites_for(seed: int, config: FailoverConfig | None = None) -> list[FaultSpec]:
    """Pick crash specs for ``seed``: enumerate the workload's fault-site
    arrivals fault-free, then schedule a mid-workload crash at every
    distinct site the run reaches (>= 3 in practice)."""
    config = config or FailoverConfig(seed=seed)
    with tempfile.TemporaryDirectory(prefix="failover-enum-") as workdir:
        wal_path = os.path.join(workdir, "wal.jsonl")
        injector = FaultInjector(FaultPlan.none())
        cluster = _Cluster(config, injector, wal_path)
        injector.counts.clear()
        _run_workload(cluster, random.Random(seed * 6271 + 11))
    specs = []
    for site, mode in _CRASH_SITES:
        arrivals = injector.counts.get(site, 0)
        if arrivals == 0:
            continue
        # Mid-range occurrence: deep enough that PMVs are warm and
        # replicas have applied history, early enough that ops remain.
        specs.append(FaultSpec(site, max(1, arrivals // 2), mode))
    return specs


def sweep(
    seeds: list[int],
    config_base: FailoverConfig | None = None,
    verbose: bool = False,
) -> DrillReport:
    report = DrillReport(seeds=list(seeds))
    started = time.perf_counter()
    for seed in seeds:
        config = FailoverConfig(
            seed=seed,
            **{
                k: v
                for k, v in (asdict(config_base) if config_base else {}).items()
                if k != "seed"
            },
        )
        specs = crash_sites_for(seed, config)
        if len({s.site for s in specs}) < 3:
            report.divergences.append(
                {
                    "seed": seed,
                    "spec": None,
                    "error": f"workload reached only {len(specs)} crash sites",
                }
            )
            continue
        for spec in specs:
            result = run_drill(seed, spec, config)
            report.points_run += 1
            report.failed_over += result.status == "failed-over"
            report.completed += result.status == "completed"
            if not result.ok:
                report.divergences.append(asdict(result))
                print(f"DIVERGENCE at {result.replay}: {result.error}", file=sys.stderr)
            elif verbose:
                print(
                    f"ok {result.replay} [{result.status}] "
                    f"hit {result.pre_hit_rate:.2f}->{result.post_hit_rate:.2f} "
                    f"acked={result.acked_records} lagged={result.lagged_answers}"
                )
    report.elapsed_seconds = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.failover",
        description="Kill-the-primary failover drill over scheduled crash sites.",
    )
    parser.add_argument("--seeds", type=int, default=2, help="number of workload seeds")
    parser.add_argument("--seed-base", type=int, default=0, help="first seed value")
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS, help="ops per workload")
    parser.add_argument(
        "--hit-factor",
        type=float,
        default=0.5,
        help="required post/pre PMV hit-rate ratio on the promoted node",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None, help="write a JSON report here"
    )
    parser.add_argument(
        "--replay",
        metavar="SEED/SITE:OCC:MODE",
        default=None,
        help="re-run one printed divergence point and exit",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.replay is not None:
        seed_text, _, spec_text = args.replay.partition("/")
        spec = None if spec_text in ("", "none") else FaultSpec.parse(spec_text)
        config = FailoverConfig(
            seed=int(seed_text), ops=args.ops, hit_factor=args.hit_factor
        )
        result = run_drill(int(seed_text), spec, config)
        print(json.dumps(asdict(result), indent=2))
        return 0 if result.ok else 1

    seeds = [args.seed_base + i for i in range(args.seeds)]
    base = FailoverConfig(ops=args.ops, hit_factor=args.hit_factor)
    report = sweep(seeds, config_base=base, verbose=args.verbose)
    summary = asdict(report)
    summary["ok"] = report.ok
    print(
        f"failover: {report.points_run} crash points over seeds {report.seeds} "
        f"({report.failed_over} failed over, {report.completed} completed) "
        f"in {report.elapsed_seconds:.1f}s — "
        + ("ALL DRILLS PASSED" if report.ok else f"{len(report.divergences)} DIVERGENCES")
    )
    for divergence in report.divergences:
        print(
            f"  replay: python -m repro.bench.failover --replay "
            f"{divergence['seed']}/{divergence['spec']}"
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
